//! Set-associative, write-back, write-allocate cache model.
//!
//! The cache stores real data bytes, tags and state bits, so an injected
//! bit flip corrupts exactly the SRAM cell a neutron strike would: data
//! flips surface when the word is next read (or written back), tag flips
//! re-home a line to a different physical address, and state flips drop or
//! resurrect lines.

use crate::config::CacheConfig;
use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Result of a cache probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Probe {
    /// Line present; payload is the line index.
    Hit(u32),
    /// Line absent.
    Miss,
}

/// Where within a cache line an injected bit landed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrayKind {
    /// The data array.
    Data,
    /// The tag array.
    Tag,
    /// Valid/dirty state bits.
    State,
}

impl ArrayKind {
    /// Stable lowercase name (used in trace records).
    pub fn name(self) -> &'static str {
        match self {
            ArrayKind::Data => "data",
            ArrayKind::Tag => "tag",
            ArrayKind::State => "state",
        }
    }

    /// Parse an array kind from its [`name`](ArrayKind::name) (used when
    /// decoding journal records).
    pub fn from_name(s: &str) -> Option<ArrayKind> {
        [ArrayKind::Data, ArrayKind::Tag, ArrayKind::State]
            .into_iter()
            .find(|k| k.name() == s)
    }
}

/// Outcome of a fault injection into a cache array.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlipInfo {
    /// Which array the bit belonged to.
    pub array: ArrayKind,
    /// Whether the affected line held valid data at flip time (an invalid
    /// line's data/tag bits are dead and the fault is architecturally
    /// masked).
    pub was_valid: bool,
}

/// Fault-provenance observations on the watched line since the last
/// [`Cache::take_watch_report`] (see the `provenance` module): what happened
/// to the cache line holding injected corruption.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct WatchReport {
    /// The watched line was hit by a probe (its bytes were consumed or
    /// partially overwritten — either way the corruption was activated).
    pub touched: bool,
    /// The watched line was evicted with a write-back: the corruption moved
    /// to the next level. The watch is cleared; the caller re-arms it at
    /// the destination.
    pub evicted_writeback: bool,
    /// The watched line was evicted or overwritten without a write-back:
    /// the corrupted copy is gone from this cache.
    pub evicted_dropped: bool,
    /// Line base address the write-back targeted (set with
    /// `evicted_writeback`), so the caller can re-arm at the next level.
    pub writeback_addr: Option<u32>,
}

impl WatchReport {
    /// Any observation recorded?
    pub fn any(&self) -> bool {
        self.touched || self.evicted_writeback || self.evicted_dropped
    }
}

/// One set-associative cache.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: u32,
    ways: u32,
    line_bytes: u32,
    off_bits: u32,
    set_bits: u32,
    /// Per line: physical address of the line base (tag + set, line-aligned).
    addr: Vec<u32>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    /// Per line: LRU rank within its set (0 = most recent).
    rank: Vec<u8>,
    /// Flat data array: `lines × line_bytes`.
    data: Vec<u8>,
    /// When false (L1I), evictions never write back even if a corrupted
    /// dirty bit says otherwise — the hardware has no write-back port.
    writeback: bool,
    /// Fault-provenance watch: line index holding injected corruption.
    watch: Option<u32>,
    /// Observations on the watched line since the last drain.
    report: WatchReport,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    pub fn new(cfg: CacheConfig, writeback: bool) -> Cache {
        assert!(cfg.validate(), "invalid cache geometry: {cfg:?}");
        let lines = cfg.lines();
        let mut rank = vec![0u8; lines as usize];
        // Ranks must form a permutation within each set (line index is
        // `set * ways + way`, so the way index seeds it).
        for (i, r) in rank.iter_mut().enumerate() {
            *r = (i as u32 % cfg.ways) as u8;
        }
        Cache {
            sets: cfg.sets(),
            ways: cfg.ways,
            line_bytes: cfg.line_bytes,
            off_bits: cfg.line_bytes.trailing_zeros(),
            set_bits: cfg.sets().trailing_zeros(),
            addr: vec![0; lines as usize],
            valid: vec![false; lines as usize],
            dirty: vec![false; lines as usize],
            rank,
            data: vec![0; (lines * cfg.line_bytes) as usize],
            writeback,
            watch: None,
            report: WatchReport::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.sets * self.ways
    }

    fn set_of(&self, paddr: u32) -> u32 {
        (paddr >> self.off_bits) & (self.sets - 1)
    }

    fn line_index(&self, set: u32, way: u32) -> u32 {
        set * self.ways + way
    }

    fn touch(&mut self, set: u32, way: u32) {
        let idx = self.line_index(set, way) as usize;
        let old = self.rank[idx];
        for w in 0..self.ways {
            let i = self.line_index(set, w) as usize;
            if self.rank[i] < old {
                self.rank[i] += 1;
            }
        }
        self.rank[idx] = 0;
    }

    /// Probes for `paddr`, updating LRU on a hit.
    pub fn probe(&mut self, paddr: u32) -> Probe {
        let base = paddr & !(self.line_bytes - 1);
        let set = self.set_of(paddr);
        for way in 0..self.ways {
            let idx = self.line_index(set, way);
            if self.valid[idx as usize] && self.addr[idx as usize] == base {
                self.touch(set, way);
                if self.watch == Some(idx) {
                    self.report.touched = true;
                }
                return Probe::Hit(idx);
            }
        }
        Probe::Miss
    }

    /// Bit-exact repeat-hit shortcut: serves `paddr` from line `idx` (a
    /// line some earlier [`Cache::probe`] hit for the same base) without
    /// the set scan, provided the line is still valid, still holds
    /// `paddr`'s base, and is already its set's most-recent way. With
    /// `rank == 0`, [`Cache::touch`] is a no-op — the one case where
    /// skipping it changes nothing — and the watch report is updated
    /// exactly as a scan hit would. Any intervening fill, eviction,
    /// flush or injected flip breaks one of the three conditions and the
    /// caller falls back to the reference [`Cache::probe`].
    ///
    /// Duplicate tags (two ways of a set holding the same base, reachable
    /// only through tag flips — fills only happen after a whole-set miss)
    /// cannot desynchronize this from `probe`'s first-match scan order:
    /// callers latch `idx` from a `probe`/[`Cache::find_line`] result
    /// (both first-match) and drop every latch on `flip_bit`.
    pub fn hit_mru(&mut self, idx: u32, paddr: u32) -> bool {
        let i = idx as usize;
        let base = paddr & !(self.line_bytes - 1);
        if !self.valid[i] || self.addr[i] != base || self.rank[i] != 0 {
            return false;
        }
        if self.watch == Some(idx) {
            self.report.touched = true;
        }
        true
    }

    /// Selects (and logically evicts) the LRU victim line for `paddr`.
    ///
    /// Returns the line index to fill and, if the victim was valid and dirty
    /// (and this cache has a write-back port), its base address and data to
    /// push to the next level.
    pub fn evict_for(&mut self, paddr: u32) -> (u32, Option<(u32, Vec<u8>)>) {
        let set = self.set_of(paddr);
        let mut victim_way = 0;
        let mut worst = 0;
        for way in 0..self.ways {
            let idx = self.line_index(set, way) as usize;
            if !self.valid[idx] {
                victim_way = way;
                break;
            }
            if self.rank[idx] >= worst {
                worst = self.rank[idx];
                victim_way = way;
            }
        }
        let idx = self.line_index(set, victim_way);
        let i = idx as usize;
        let wb = if self.valid[i] && self.dirty[i] && self.writeback {
            let lb = self.line_bytes as usize;
            Some((self.addr[i], self.data[i * lb..(i + 1) * lb].to_vec()))
        } else {
            None
        };
        if self.watch == Some(idx) {
            if let Some((addr, _)) = wb {
                self.report.evicted_writeback = true;
                self.report.writeback_addr = Some(addr);
            } else {
                self.report.evicted_dropped = true;
            }
            self.watch = None;
        }
        self.valid[i] = false;
        self.dirty[i] = false;
        (idx, wb)
    }

    /// Installs a line.
    pub fn fill(&mut self, idx: u32, paddr: u32, line: &[u8], dirty: bool) {
        debug_assert_eq!(line.len(), self.line_bytes as usize);
        if self.watch == Some(idx) {
            // A fill over the watched line without a prior eviction (direct
            // refill) overwrites the corrupted copy.
            self.report.evicted_dropped = true;
            self.watch = None;
        }
        let i = idx as usize;
        let base = paddr & !(self.line_bytes - 1);
        self.addr[i] = base;
        self.valid[i] = true;
        self.dirty[i] = dirty;
        let lb = self.line_bytes as usize;
        self.data[i * lb..(i + 1) * lb].copy_from_slice(line);
        let set = self.set_of(paddr);
        let way = idx - set * self.ways;
        self.touch(set, way);
    }

    /// Reads up to 4 bytes from a resident line.
    pub fn read(&self, idx: u32, paddr: u32, bytes: u32) -> u32 {
        let off = (paddr & (self.line_bytes - 1)) as usize;
        let base = idx as usize * self.line_bytes as usize + off;
        // Little-endian assembly either way; the sized arms just do it in
        // one bounds check instead of one per byte (this is the hottest
        // load in the simulator — every fetch and every data hit).
        match bytes {
            4 => u32::from_le_bytes(self.data[base..base + 4].try_into().unwrap()),
            2 => u16::from_le_bytes(self.data[base..base + 2].try_into().unwrap()) as u32,
            1 => self.data[base] as u32,
            _ => {
                let mut v = 0u32;
                for b in 0..bytes as usize {
                    v |= (self.data[base + b] as u32) << (8 * b);
                }
                v
            }
        }
    }

    /// Writes up to 4 bytes into a resident line, marking it dirty.
    pub fn write(&mut self, idx: u32, paddr: u32, bytes: u32, value: u32) {
        let off = (paddr & (self.line_bytes - 1)) as usize;
        let base = idx as usize * self.line_bytes as usize + off;
        match bytes {
            4 => self.data[base..base + 4].copy_from_slice(&value.to_le_bytes()),
            2 => self.data[base..base + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            1 => self.data[base] = value as u8,
            _ => {
                for b in 0..bytes as usize {
                    self.data[base + b] = (value >> (8 * b)) as u8;
                }
            }
        }
        self.dirty[idx as usize] = true;
    }

    /// Copies a whole resident line out.
    pub fn read_full_line(&self, idx: u32, buf: &mut [u8]) {
        let lb = self.line_bytes as usize;
        let i = idx as usize;
        buf.copy_from_slice(&self.data[i * lb..(i + 1) * lb]);
    }

    /// Overwrites a whole resident line (write-back from an upper level),
    /// marking it dirty.
    pub fn write_full_line(&mut self, idx: u32, buf: &[u8]) {
        let lb = self.line_bytes as usize;
        let i = idx as usize;
        self.data[i * lb..(i + 1) * lb].copy_from_slice(buf);
        self.dirty[i] = true;
    }

    /// Drains every valid dirty line through `sink(addr, data)` and
    /// invalidates the whole cache.
    pub fn clean_invalidate_all(&mut self, mut sink: impl FnMut(u32, &[u8])) {
        let lb = self.line_bytes as usize;
        for i in 0..self.lines() as usize {
            if self.valid[i] && self.dirty[i] && self.writeback {
                sink(self.addr[i], &self.data[i * lb..(i + 1) * lb]);
                if self.watch == Some(i as u32) {
                    self.report.evicted_writeback = true;
                    self.report.writeback_addr = Some(self.addr[i]);
                    self.watch = None;
                }
            }
            self.valid[i] = false;
            self.dirty[i] = false;
        }
        if self.watch.take().is_some() {
            self.report.evicted_dropped = true;
        }
    }

    // ----- fault-injection surface ------------------------------------------

    /// Tag bits per line that a particle can disturb: the address bits above
    /// the set index and line offset.
    pub fn tag_bits(&self) -> u32 {
        32 - self.set_bits - self.off_bits
    }

    /// SRAM bits per line: data + tag + valid + dirty.
    pub fn bits_per_line(&self) -> u64 {
        8 * self.line_bytes as u64 + self.tag_bits() as u64 + 2
    }

    /// Total SRAM bits in this cache.
    pub fn total_bits(&self) -> u64 {
        self.lines() as u64 * self.bits_per_line()
    }

    /// Flips one SRAM bit, addressed uniformly over the whole array.
    ///
    /// Bit index layout per line: `[0, 8·line)` data, then tag bits (LSB
    /// first, i.e. bit 0 of the tag region flips physical address bit
    /// `set_bits + off_bits`), then valid, then dirty.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= total_bits()`.
    pub fn flip_bit(&mut self, bit: u64) -> FlipInfo {
        assert!(bit < self.total_bits(), "cache bit index out of range");
        let per = self.bits_per_line();
        let line = (bit / per) as usize;
        let within = bit % per;
        let data_bits = 8 * self.line_bytes as u64;
        let was_valid = self.valid[line];
        if within < data_bits {
            let byte = line * self.line_bytes as usize + (within / 8) as usize;
            self.data[byte] ^= 1 << (within % 8);
            FlipInfo {
                array: ArrayKind::Data,
                was_valid,
            }
        } else if within < data_bits + self.tag_bits() as u64 {
            let tagbit = (within - data_bits) as u32;
            self.addr[line] ^= 1 << (self.set_bits + self.off_bits + tagbit);
            FlipInfo {
                array: ArrayKind::Tag,
                was_valid,
            }
        } else if within == data_bits + self.tag_bits() as u64 {
            self.valid[line] = !self.valid[line];
            FlipInfo {
                array: ArrayKind::State,
                was_valid,
            }
        } else {
            self.dirty[line] = !self.dirty[line];
            FlipInfo {
                array: ArrayKind::State,
                was_valid,
            }
        }
    }

    /// Non-mutating probe + read, for debug observers: returns the value if
    /// the line is resident, without touching LRU state.
    pub fn peek(&self, paddr: u32, bytes: u32) -> Option<u32> {
        let base = paddr & !(self.line_bytes - 1);
        let set = self.set_of(paddr);
        for way in 0..self.ways {
            let idx = self.line_index(set, way) as usize;
            if self.valid[idx] && self.addr[idx] == base {
                return Some(self.read(idx as u32, paddr, bytes));
            }
        }
        None
    }

    /// Number of currently valid lines (used by the beam model's
    /// kernel-residency estimator).
    pub fn valid_lines(&self) -> u32 {
        self.valid.iter().filter(|v| **v).count() as u32
    }

    /// Iterates over the base addresses of all valid lines.
    pub fn valid_line_addrs(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.lines() as usize)
            .filter(|&i| self.valid[i])
            .map(move |i| self.addr[i])
    }

    // ----- fault-provenance watch -------------------------------------------

    /// Arm the provenance watch on `line` (the line holding an injected
    /// flip). Replaces any previous watch.
    pub fn set_watch(&mut self, line: u32) {
        debug_assert!(line < self.lines());
        self.watch = Some(line);
    }

    /// Disarm the watch and clear pending observations.
    pub fn clear_watch(&mut self) {
        self.watch = None;
        self.report = WatchReport::default();
    }

    /// Line currently watched, if any.
    pub fn watched_line(&self) -> Option<u32> {
        self.watch
    }

    /// Drain observations accumulated since the last call.
    pub fn take_watch_report(&mut self) -> WatchReport {
        std::mem::take(&mut self.report)
    }

    /// Peek (without draining) whether the watched line was touched.
    pub fn watch_touched(&self) -> bool {
        self.report.touched
    }

    /// Base address of a line if it is valid (provenance re-arm helper).
    pub fn line_addr(&self, idx: u32) -> Option<u32> {
        if self.valid[idx as usize] {
            Some(self.addr[idx as usize])
        } else {
            None
        }
    }

    /// Find the resident line for `paddr` without touching LRU or watch
    /// state.
    pub fn find_line(&self, paddr: u32) -> Option<u32> {
        let base = paddr & !(self.line_bytes - 1);
        let set = self.set_of(paddr);
        (0..self.ways)
            .map(|w| self.line_index(set, w))
            .find(|&idx| self.valid[idx as usize] && self.addr[idx as usize] == base)
    }

    /// Which line a given flat SRAM bit index belongs to (provenance arm
    /// helper; same layout as [`Cache::flip_bit`]).
    pub fn line_of_bit(&self, bit: u64) -> u32 {
        assert!(bit < self.total_bits(), "cache bit index out of range");
        (bit / self.bits_per_line()) as u32
    }
}

impl Snapshot for Cache {
    /// Captures geometry plus the full SRAM image: address/valid/dirty/rank
    /// arrays and the data array. The provenance watch is deliberately
    /// *not* captured — checkpoints are taken during fault-free golden runs
    /// (a restored machine re-arms its own watch at injection time) — so
    /// restore always yields a disarmed watch.
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"CACH");
        w.u32(self.sets);
        w.u32(self.ways);
        w.u32(self.line_bytes);
        w.bool(self.writeback);
        self.addr.save(w);
        self.valid.save(w);
        self.dirty.save(w);
        self.rank.save(w);
        w.bytes(&self.data);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Cache, SnapError> {
        r.tag(*b"CACH")?;
        let sets = r.u32()?;
        let ways = r.u32()?;
        let line_bytes = r.u32()?;
        let cfg = CacheConfig {
            size_bytes: sets
                .checked_mul(ways)
                .and_then(|l| l.checked_mul(line_bytes))
                .ok_or(SnapError::Malformed("cache geometry overflows"))?,
            ways,
            line_bytes,
        };
        if !cfg.validate() {
            return Err(SnapError::Malformed("invalid cache geometry"));
        }
        let writeback = r.bool()?;
        let mut c = Cache::new(cfg, writeback);
        let lines = c.lines() as usize;
        let addr: Vec<u32> = Vec::load(r)?;
        let valid: Vec<bool> = Vec::load(r)?;
        let dirty: Vec<bool> = Vec::load(r)?;
        let rank: Vec<u8> = Vec::load(r)?;
        let data = r.bytes()?;
        if addr.len() != lines
            || valid.len() != lines
            || dirty.len() != lines
            || rank.len() != lines
            || data.len() != lines * line_bytes as usize
        {
            return Err(SnapError::Malformed("cache array length mismatch"));
        }
        c.addr = addr;
        c.valid = valid;
        c.dirty = dirty;
        c.rank = rank;
        c.data.copy_from_slice(data);
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 16-byte lines = 128 bytes.
        Cache::new(
            CacheConfig {
                size_bytes: 128,
                ways: 2,
                line_bytes: 16,
            },
            true,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.probe(0x100), Probe::Miss);
        let (idx, wb) = c.evict_for(0x100);
        assert!(wb.is_none());
        c.fill(idx, 0x100, &[7u8; 16], false);
        assert_eq!(c.probe(0x104), Probe::Hit(idx));
        assert_eq!(c.read(idx, 0x104, 4), 0x0707_0707);
    }

    #[test]
    fn lru_replacement_evicts_oldest() {
        let mut c = small();
        // Three lines mapping to set 0 (addresses differing above set+offset).
        for (n, a) in [0x000u32, 0x040, 0x080].iter().enumerate() {
            if let Probe::Miss = c.probe(*a) {
                let (idx, _) = c.evict_for(*a);
                c.fill(idx, *a, &[n as u8; 16], false);
            }
        }
        // 0x000 was oldest and must be gone; 0x040 and 0x080 resident.
        assert_eq!(c.probe(0x000), Probe::Miss);
        assert!(matches!(c.probe(0x040), Probe::Hit(_)));
        assert!(matches!(c.probe(0x080), Probe::Hit(_)));
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut c = small();
        let (idx, _) = c.evict_for(0x0);
        c.fill(idx, 0x0, &[0u8; 16], false);
        c.write(idx, 0x0, 4, 0xDEAD_BEEF);
        // Fill the set and force eviction of line 0.
        for a in [0x040u32, 0x080] {
            let (idx, wb) = c.evict_for(a);
            if let Some((addr, data)) = wb {
                assert_eq!(addr, 0x0);
                assert_eq!(&data[0..4], &0xDEAD_BEEFu32.to_le_bytes());
                return;
            }
            c.fill(idx, a, &[0u8; 16], false);
        }
        panic!("dirty line was never written back");
    }

    #[test]
    fn no_writeback_port_drops_dirty_lines() {
        let mut c = Cache::new(
            CacheConfig {
                size_bytes: 128,
                ways: 2,
                line_bytes: 16,
            },
            false,
        );
        let (idx, _) = c.evict_for(0x0);
        c.fill(idx, 0x0, &[0u8; 16], false);
        c.write(idx, 0x0, 4, 1);
        let mut wrote = false;
        c.clean_invalidate_all(|_, _| wrote = true);
        assert!(!wrote);
    }

    #[test]
    fn flip_data_bit_corrupts_exactly_one_bit() {
        let mut c = small();
        let (idx, _) = c.evict_for(0x0);
        c.fill(idx, 0x0, &[0u8; 16], false);
        let info = c.flip_bit(13); // line 0, data byte 1, bit 5
        assert_eq!(info.array, ArrayKind::Data);
        assert!(info.was_valid);
        assert_eq!(c.read(idx, 0x1, 1), 1 << 5);
    }

    #[test]
    fn flip_tag_bit_rehomes_line() {
        let mut c = small();
        let (idx, _) = c.evict_for(0x0);
        c.fill(idx, 0x0, &[1u8; 16], false);
        // First tag bit is phys address bit 6 (4 offset + 2 set bits).
        let data_bits = 8 * 16;
        let info = c.flip_bit(data_bits);
        assert_eq!(info.array, ArrayKind::Tag);
        assert_eq!(c.probe(0x0), Probe::Miss);
        assert!(matches!(c.probe(0x40), Probe::Hit(_)));
    }

    #[test]
    fn flip_valid_bit_drops_line() {
        let mut c = small();
        let (idx, _) = c.evict_for(0x0);
        c.fill(idx, 0x0, &[1u8; 16], false);
        let per = c.bits_per_line();
        let info = c.flip_bit(per - 2); // valid bit of line 0
        assert_eq!(info.array, ArrayKind::State);
        assert_eq!(c.probe(0x0), Probe::Miss);
    }

    #[test]
    fn bit_accounting_matches_paper_sizes() {
        // Paper L1: 32 KB of data; our array additionally models tag+state.
        let c = Cache::new(
            CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            true,
        );
        assert_eq!(c.lines(), 1024);
        let data_bits = 32 * 1024 * 8u64;
        assert!(c.total_bits() > data_bits);
        assert_eq!(c.total_bits(), 1024 * (256 + (32 - 8 - 5) as u64 + 2));
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_dirt() {
        let mut c = small();
        // Fill both ways of set 0, then dirty + LRU-promote 0x000.
        for a in [0x000u32, 0x040] {
            let (idx, _) = c.evict_for(a);
            c.fill(idx, a, &[a as u8; 16], false);
        }
        match c.probe(0x000) {
            Probe::Hit(idx) => c.write(idx, 0x0, 4, 0xFEED_FACE),
            Probe::Miss => panic!("line 0x000 must be resident"),
        }
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let buf = w.into_bytes();
        let mut t = Cache::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(t.valid_lines(), c.valid_lines());
        assert_eq!(t.peek(0x000, 4), Some(0xFEED_FACE));
        // LRU order survives: filling set 0 again must evict 0x040 (the
        // stale way), not the just-promoted 0x000.
        let (_, wb) = t.evict_for(0x080);
        assert!(wb.is_none(), "clean victim expected");
        assert!(t.peek(0x000, 1).is_some());
        assert!(t.peek(0x040, 1).is_none());
    }

    #[test]
    fn snapshot_rejects_corrupt_geometry() {
        let c = small();
        let mut w = SnapWriter::new();
        c.save(&mut w);
        let mut buf = w.into_bytes();
        buf[4] = 0xFF; // sets := garbage (low LE byte after the tag)
        assert!(Cache::load(&mut SnapReader::new(&buf)).is_err());
    }
}

//! Page-table format and the hardware walker.
//!
//! AR32 uses a two-level table, modeled on ARM's short-descriptor format:
//!
//! * **L1 table**: 4096 word entries at the physical address in `TTBR`
//!   (16 KB, 16 KB-aligned). Entry *i* covers virtual addresses
//!   `[i << 20, (i+1) << 20)`. A valid entry points to an L2 table.
//! * **L2 table**: 256 word entries (1 KB, 1 KB-aligned), each mapping one
//!   4 KB page.
//!
//! Walks are performed in hardware on a TLB miss and read the tables
//! through the L2 cache — table memory is cached state and therefore
//! (indirectly) part of the fault-injection surface, as on the real SoC.

/// Page size in bytes.
pub const PAGE_BYTES: u32 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;

/// L1 table entries.
pub const L1_ENTRIES: u32 = 4096;
/// L2 table entries.
pub const L2_ENTRIES: u32 = 256;

/// Page-table entry flag: entry is valid.
pub const PTE_VALID: u32 = 1 << 0;
/// Page-table entry flag: writable.
pub const PTE_WRITE: u32 = 1 << 1;
/// Page-table entry flag: accessible from user mode.
pub const PTE_USER: u32 = 1 << 2;
/// Page-table entry flag: executable.
pub const PTE_EXEC: u32 = 1 << 3;

/// Builds an L1 entry pointing at an L2 table at `l2_base` (1 KB aligned).
pub fn l1_entry(l2_base: u32) -> u32 {
    debug_assert_eq!(l2_base & 0x3FF, 0, "L2 table must be 1KB aligned");
    l2_base | PTE_VALID
}

/// Builds a leaf PTE mapping `ppn` with the given permission flags.
pub fn pte(ppn: u32, flags: u32) -> u32 {
    (ppn << PAGE_SHIFT) | (flags & 0xF) | PTE_VALID
}

/// Splits a virtual address into (L1 index, L2 index, page offset).
pub fn split_vaddr(vaddr: u32) -> (u32, u32, u32) {
    (vaddr >> 20, (vaddr >> 12) & 0xFF, vaddr & 0xFFF)
}

/// A decoded leaf PTE.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PteView {
    /// Physical page number.
    pub ppn: u32,
    /// Writable.
    pub write: bool,
    /// User-accessible.
    pub user: bool,
    /// Executable.
    pub exec: bool,
}

/// Decodes a leaf PTE; `None` if invalid.
pub fn decode_pte(raw: u32) -> Option<PteView> {
    if raw & PTE_VALID == 0 {
        return None;
    }
    Some(PteView {
        ppn: raw >> PAGE_SHIFT,
        write: raw & PTE_WRITE != 0,
        user: raw & PTE_USER != 0,
        exec: raw & PTE_EXEC != 0,
    })
}

/// Physical addresses of the two table reads a walk for `vaddr` performs,
/// given the first read's result. Returned stepwise so the memory system
/// can charge cache latency per access.
pub fn l1_entry_addr(ttbr: u32, vaddr: u32) -> u32 {
    (ttbr & !0x3FFF) + (vaddr >> 20) * 4
}

/// Address of the L2 entry for `vaddr` within the table named by `l1e`.
pub fn l2_entry_addr(l1e: u32, vaddr: u32) -> u32 {
    (l1e & !0x3FF) + ((vaddr >> 12) & 0xFF) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_split() {
        let (l1, l2, off) = split_vaddr(0xC123_4ABC);
        assert_eq!(l1, 0xC12);
        assert_eq!(l2, 0x34);
        assert_eq!(off, 0xABC);
    }

    #[test]
    fn pte_roundtrip() {
        let raw = pte(0x12345, PTE_WRITE | PTE_USER);
        let v = decode_pte(raw).unwrap();
        assert_eq!(v.ppn, 0x12345);
        assert!(v.write && v.user && !v.exec);
        assert_eq!(decode_pte(0), None);
    }

    #[test]
    fn walk_addresses() {
        let ttbr = 0x0010_0000;
        let vaddr = 0x0040_3014;
        assert_eq!(l1_entry_addr(ttbr, vaddr), 0x0010_0000 + 4 * 4);
        let l1e = l1_entry(0x0020_0400);
        assert_eq!(l2_entry_addr(l1e, vaddr), 0x0020_0400 + 3 * 4);
    }
}

//! Translation lookaside buffers.
//!
//! Each TLB is fully associative with true-LRU replacement. Entries are
//! stored as packed 64-bit words so that fault injection addresses the same
//! bit layout the SRAM macro would hold. The packing separates the paper's
//! two regions of interest (§V-B): the *virtual tag* (VPN) whose corruption
//! mostly causes harmless re-walks, and the *physical target* (PPN and
//! permission bits) whose corruption redirects every access to the page.

/// Bit layout of a packed TLB entry.
///
/// ```text
/// [19:0]  PPN      physical page number        (data region)
/// [39:20] VPN      virtual page number         (tag region)
/// [40]    valid
/// [41]    writable
/// [42]    user-accessible
/// [43]    executable
/// ```
/// Bits `[63:44]` are unimplemented cells and absorb flips harmlessly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEntry(pub u64);

impl TlbEntry {
    const VALID: u64 = 1 << 40;
    const WRITE: u64 = 1 << 41;
    const USER: u64 = 1 << 42;
    const EXEC: u64 = 1 << 43;

    /// Builds a valid entry.
    pub fn new(vpn: u32, ppn: u32, write: bool, user: bool, exec: bool) -> TlbEntry {
        let mut v = (ppn as u64 & 0xF_FFFF) | ((vpn as u64 & 0xF_FFFF) << 20) | Self::VALID;
        if write {
            v |= Self::WRITE;
        }
        if user {
            v |= Self::USER;
        }
        if exec {
            v |= Self::EXEC;
        }
        TlbEntry(v)
    }

    /// Invalid (empty) entry.
    pub fn invalid() -> TlbEntry {
        TlbEntry(0)
    }

    /// Physical page number.
    pub fn ppn(self) -> u32 {
        (self.0 & 0xF_FFFF) as u32
    }

    /// Virtual page number (the tag).
    pub fn vpn(self) -> u32 {
        ((self.0 >> 20) & 0xF_FFFF) as u32
    }

    /// Valid bit.
    pub fn valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    /// Write permission.
    pub fn writable(self) -> bool {
        self.0 & Self::WRITE != 0
    }

    /// User-mode access permission.
    pub fn user(self) -> bool {
        self.0 & Self::USER != 0
    }

    /// Execute permission.
    pub fn executable(self) -> bool {
        self.0 & Self::EXEC != 0
    }

    /// True if `bit` (0-63) lies in the virtual-tag region.
    pub fn bit_is_tag(bit: u32) -> bool {
        (20..40).contains(&bit)
    }
}

use crate::cache::WatchReport;
use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// A fully associative TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<TlbEntry>,
    /// LRU stamps; larger = more recently used.
    stamp: Vec<u64>,
    clock: u64,
    /// Statistics: lookups and misses.
    pub lookups: u64,
    /// Miss count.
    pub misses: u64,
    /// Fault-provenance watch: entry index holding injected corruption.
    watch: Option<usize>,
    /// Observations on the watched entry since the last drain
    /// (`evicted_writeback` is never set — TLBs have no write-back path).
    report: WatchReport,
}

impl Tlb {
    /// Builds an empty TLB with `entries` slots.
    pub fn new(entries: u32) -> Tlb {
        Tlb {
            entries: vec![TlbEntry::invalid(); entries as usize],
            stamp: vec![0; entries as usize],
            clock: 0,
            lookups: 0,
            misses: 0,
            watch: None,
            report: WatchReport::default(),
        }
    }

    /// Looks up `vpn`, updating LRU and statistics.
    pub fn lookup(&mut self, vpn: u32) -> Option<TlbEntry> {
        self.lookup_slot(vpn).map(|(_, e)| e)
    }

    /// Like [`Tlb::lookup`], but also reports which slot hit — the handle
    /// residency profiling keys its intervals on.
    pub fn lookup_slot(&mut self, vpn: u32) -> Option<(usize, TlbEntry)> {
        self.lookups += 1;
        self.clock += 1;
        for (i, e) in self.entries.iter().enumerate() {
            if e.valid() && e.vpn() == vpn {
                self.stamp[i] = self.clock;
                if self.watch == Some(i) {
                    self.report.touched = true;
                }
                return Some((i, self.entries[i]));
            }
        }
        self.misses += 1;
        None
    }

    /// Revalidates a translation-latch hint: if `slot` still holds a valid
    /// entry for `vpn`, performs *exactly* the bookkeeping a successful
    /// [`Tlb::lookup_slot`] scan would have performed (lookup count, LRU
    /// clock + stamp, provenance-watch touch) and returns the entry. If the
    /// hint is stale — flushed, evicted, or corrupted by an injected flip —
    /// nothing is mutated and the caller must fall back to the full scan,
    /// which then counts the lookup the reference way. This is the fast
    /// path's only TLB entry point, and it is equivalence-preserving by
    /// construction: a hit is indistinguishable from a scan hit on the
    /// same slot, and a miss leaves no trace.
    pub fn hit_latched(&mut self, slot: usize, vpn: u32) -> Option<TlbEntry> {
        let e = *self.entries.get(slot)?;
        if !e.valid() || e.vpn() != vpn {
            return None;
        }
        self.lookups += 1;
        self.clock += 1;
        self.stamp[slot] = self.clock;
        if self.watch == Some(slot) {
            self.report.touched = true;
        }
        Some(e)
    }

    /// Inserts an entry, evicting the LRU slot.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.insert_slot(entry);
    }

    /// Like [`Tlb::insert`], but reports which slot the entry landed in.
    pub fn insert_slot(&mut self, entry: TlbEntry) -> usize {
        self.clock += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.valid() {
                victim = i;
                break;
            }
            if self.stamp[i] < oldest {
                oldest = self.stamp[i];
                victim = i;
            }
        }
        if self.watch == Some(victim) {
            self.report.evicted_dropped = true;
            self.watch = None;
        }
        self.entries[victim] = entry;
        self.stamp[victim] = self.clock;
        victim
    }

    /// Invalidates all entries (TLB flush).
    pub fn flush(&mut self) {
        if self.watch.take().is_some() {
            self.report.evicted_dropped = true;
        }
        for e in &mut self.entries {
            *e = TlbEntry::invalid();
        }
    }

    /// SRAM bits: 64 per entry.
    pub fn total_bits(&self) -> u64 {
        self.entries.len() as u64 * 64
    }

    /// Flips one bit; returns whether it fell in the tag (VPN) region and
    /// whether the entry was valid.
    pub fn flip_bit(&mut self, bit: u64) -> (bool, bool) {
        assert!(bit < self.total_bits(), "TLB bit index out of range");
        let idx = (bit / 64) as usize;
        let within = (bit % 64) as u32;
        let was_valid = self.entries[idx].valid();
        self.entries[idx].0 ^= 1 << within;
        (TlbEntry::bit_is_tag(within), was_valid)
    }

    /// Number of valid entries.
    pub fn valid_entries(&self) -> u32 {
        self.entries.iter().filter(|e| e.valid()).count() as u32
    }

    /// Raw packed words of the valid entries, in slot order. A pure
    /// observer (no LRU or watch side effects), used by deep state
    /// fingerprinting.
    pub fn valid_entry_words(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().filter(|e| e.valid()).map(|e| e.0)
    }

    // ----- fault-provenance watch -------------------------------------------

    /// Which entry a flat SRAM bit index belongs to (same layout as
    /// [`Tlb::flip_bit`]).
    pub fn entry_of_bit(&self, bit: u64) -> usize {
        assert!(bit < self.total_bits(), "TLB bit index out of range");
        (bit / 64) as usize
    }

    /// Arm the provenance watch on `entry`. Replaces any previous watch.
    pub fn set_watch(&mut self, entry: usize) {
        debug_assert!(entry < self.entries.len());
        self.watch = Some(entry);
    }

    /// Disarm the watch and clear pending observations.
    pub fn clear_watch(&mut self) {
        self.watch = None;
        self.report = WatchReport::default();
    }

    /// Drain observations accumulated since the last call.
    pub fn take_watch_report(&mut self) -> WatchReport {
        std::mem::take(&mut self.report)
    }
}

impl Snapshot for TlbEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<TlbEntry, SnapError> {
        Ok(TlbEntry(r.u64()?))
    }
}

impl Snapshot for Tlb {
    /// Captures entries, LRU stamps, the LRU clock, and the hit/miss
    /// statistics (the statistics feed the §IV-D counter comparison, so a
    /// restored run must keep counting from the checkpointed values). The
    /// provenance watch is not captured; restore yields a disarmed watch.
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"TLB ");
        self.entries.save(w);
        self.stamp.save(w);
        w.u64(self.clock);
        w.u64(self.lookups);
        w.u64(self.misses);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Tlb, SnapError> {
        r.tag(*b"TLB ")?;
        let entries: Vec<TlbEntry> = Vec::load(r)?;
        let stamp: Vec<u64> = Vec::load(r)?;
        if entries.is_empty() || entries.len() != stamp.len() {
            return Err(SnapError::Malformed("TLB entry/stamp length mismatch"));
        }
        Ok(Tlb {
            entries,
            stamp,
            clock: r.u64()?,
            lookups: r.u64()?,
            misses: r.u64()?,
            watch: None,
            report: WatchReport::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_pack_unpack() {
        let e = TlbEntry::new(0x12345, 0xABCDE, true, false, true);
        assert_eq!(e.vpn(), 0x12345);
        assert_eq!(e.ppn(), 0xABCDE);
        assert!(e.valid() && e.writable() && e.executable());
        assert!(!e.user());
    }

    #[test]
    fn lookup_hit_and_miss_counting() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(7).is_none());
        t.insert(TlbEntry::new(7, 0x100, true, true, false));
        assert_eq!(t.lookup(7).unwrap().ppn(), 0x100);
        assert_eq!(t.lookups, 2);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.insert(TlbEntry::new(1, 1, true, true, false));
        t.insert(TlbEntry::new(2, 2, true, true, false));
        t.lookup(1); // make vpn=1 recent
        t.insert(TlbEntry::new(3, 3, true, true, false)); // evicts vpn=2
        assert!(t.lookup(1).is_some());
        assert!(t.lookup(2).is_none());
        assert!(t.lookup(3).is_some());
    }

    #[test]
    fn tag_flip_causes_miss_data_flip_misroutes() {
        let mut t = Tlb::new(1);
        t.insert(TlbEntry::new(0x5, 0x100, true, true, false));
        // Flip VPN bit 0 (global bit 20): the old VPN no longer matches.
        let (is_tag, valid) = t.flip_bit(20);
        assert!(is_tag && valid);
        assert!(t.lookup(0x5).is_none());
        // Reinsert and flip PPN bit 0: translation silently changes.
        let mut t = Tlb::new(1);
        t.insert(TlbEntry::new(0x5, 0x100, true, true, false));
        let (is_tag, _) = t.flip_bit(0);
        assert!(!is_tag);
        assert_eq!(t.lookup(0x5).unwrap().ppn(), 0x101);
    }

    #[test]
    fn paper_tlb_size_is_512_bytes() {
        let t = Tlb::new(64);
        assert_eq!(t.total_bits(), 4096); // 512 bytes, as quoted in §V-B
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_stats() {
        let mut t = Tlb::new(2);
        t.insert(TlbEntry::new(1, 0x10, true, true, false));
        t.insert(TlbEntry::new(2, 0x20, true, false, true));
        t.lookup(1); // vpn=1 is now the most recent
        t.lookup(9); // one miss
        let mut w = SnapWriter::new();
        t.save(&mut w);
        let buf = w.into_bytes();
        let mut back = Tlb::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.lookups, t.lookups);
        assert_eq!(back.misses, t.misses);
        assert_eq!(back.valid_entries(), 2);
        // LRU state survives: the next insert must evict vpn=2, not vpn=1.
        back.insert(TlbEntry::new(3, 0x30, true, true, false));
        assert!(back.lookup(1).is_some());
        assert!(back.lookup(2).is_none());
    }
}

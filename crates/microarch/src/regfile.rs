//! Architectural register files and the program status register.

use crate::cache::WatchReport;
use sea_isa::{FReg, Reg};
use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};
use std::cell::Cell;

/// Privilege mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Unprivileged (applications).
    User,
    /// Supervisor (kernel, exception handlers).
    Svc,
}

/// The current program status register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cpsr {
    /// Negative flag.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag.
    pub c: bool,
    /// Overflow flag.
    pub v: bool,
    /// IRQs masked.
    pub irq_off: bool,
    /// Privilege mode.
    pub mode: Mode,
}

impl Cpsr {
    /// Reset state: supervisor mode, IRQs masked, flags clear.
    pub fn reset() -> Cpsr {
        Cpsr {
            n: false,
            z: false,
            c: false,
            v: false,
            irq_off: true,
            mode: Mode::Svc,
        }
    }

    /// Packs into the architectural bit layout (N=31, Z=30, C=29, V=28,
    /// I=7, mode in bits 4..0: `0x10` user / `0x13` svc).
    pub fn to_bits(self) -> u32 {
        (u32::from(self.n) << 31)
            | (u32::from(self.z) << 30)
            | (u32::from(self.c) << 29)
            | (u32::from(self.v) << 28)
            | (u32::from(self.irq_off) << 7)
            | match self.mode {
                Mode::User => 0x10,
                Mode::Svc => 0x13,
            }
    }

    /// Unpacks from bits; any unrecognized mode value degrades to user mode
    /// (a corrupted SPSR cannot escalate privilege).
    pub fn from_bits(bits: u32) -> Cpsr {
        Cpsr {
            n: bits & (1 << 31) != 0,
            z: bits & (1 << 30) != 0,
            c: bits & (1 << 29) != 0,
            v: bits & (1 << 28) != 0,
            irq_off: bits & (1 << 7) != 0,
            mode: if bits & 0x1F == 0x13 {
                Mode::Svc
            } else {
                Mode::User
            },
        }
    }
}

/// Integer + floating-point register files.
///
/// The stack pointer is banked per mode (`sp_usr`/`sp_svc`), as on ARM;
/// all other integer registers are shared. `pc` (`r15`) is held by the CPU,
/// not the file — AR32 forbids it as a data-processing operand.
#[derive(Clone, Debug)]
pub struct RegFile {
    /// Flat storage in [`RegFile::flip_bit`] layout: r0–r12, `sp_usr`,
    /// `sp_svc`, `lr`. Keeping the integer file contiguous lets the warp
    /// tier's pre-lowered µops address operands as one array index.
    words: [u32; 16],
    fp: [u32; 32],
    /// Fault-provenance watch: flat word index (layout of [`RegFile::flip_bit`])
    /// holding injected corruption. `Cell` so read paths can stay `&self`.
    watch: Cell<Option<u8>>,
    watch_touched: Cell<bool>,
    watch_dropped: Cell<bool>,
}

/// SRAM bits in the integer + FP register files: 16 × 32 + 32 × 32.
pub const REGFILE_BITS: u64 = (13 + 3) as u64 * 32 + 32 * 32;

impl RegFile {
    /// All registers zeroed.
    pub fn new() -> RegFile {
        RegFile {
            words: [0; 16],
            fp: [0; 32],
            watch: Cell::new(None),
            watch_touched: Cell::new(false),
            watch_dropped: Cell::new(false),
        }
    }

    /// Flat word index (layout of [`RegFile::flip_bit`]) of an integer
    /// register in the given mode. Used by residency profiling to map
    /// operand reads/writes onto register-file slots.
    ///
    /// # Panics
    ///
    /// Panics on `pc` — it lives in the CPU, not the register file.
    pub fn word_index(reg: Reg, mode: Mode) -> usize {
        match reg {
            Reg::Pc => panic!("pc is not a register-file operand"),
            Reg::Sp => match mode {
                Mode::User => 13,
                Mode::Svc => 14,
            },
            Reg::Lr => 15,
            r => r.index(),
        }
    }

    fn note_read(&self, word: usize) {
        if self.watch.get() == Some(word as u8) {
            self.watch_touched.set(true);
        }
    }

    fn note_overwrite(&self, word: usize) {
        if self.watch.get() == Some(word as u8) {
            self.watch.set(None);
            self.watch_dropped.set(true);
        }
    }

    /// Reads an integer register in the given mode.
    ///
    /// # Panics
    ///
    /// Panics on `pc` — the CPU must intercept it first.
    pub fn get(&self, reg: Reg, mode: Mode) -> u32 {
        let word = Self::word_index(reg, mode);
        self.note_read(word);
        self.words[word]
    }

    /// Writes an integer register in the given mode.
    ///
    /// # Panics
    ///
    /// Panics on `pc`.
    pub fn set(&mut self, reg: Reg, mode: Mode, value: u32) {
        let word = Self::word_index(reg, mode);
        self.note_overwrite(word);
        self.words[word] = value;
    }

    /// Reads an integer-register word by flat index ([`RegFile::word_index`]
    /// layout: r0–r12, `sp_usr`, `sp_svc`, `lr`). The warp tier resolves
    /// banked operands to these indices once, when it lowers a block.
    #[inline]
    pub fn word(&self, idx: usize) -> u32 {
        debug_assert!(idx < 16);
        let i = idx & 15;
        self.note_read(i);
        self.words[i]
    }

    /// Writes an integer-register word by flat index.
    #[inline]
    pub fn set_word(&mut self, idx: usize, value: u32) {
        debug_assert!(idx < 16);
        let i = idx & 15;
        self.note_overwrite(i);
        self.words[i] = value;
    }

    /// Reads the user-mode stack pointer regardless of current mode
    /// (`MRS rd, SpUsr`).
    pub fn sp_usr(&self) -> u32 {
        self.note_read(13);
        self.words[13]
    }

    /// Writes the user-mode stack pointer (`MSR SpUsr, rn`).
    pub fn set_sp_usr(&mut self, value: u32) {
        self.note_overwrite(13);
        self.words[13] = value;
    }

    /// Reads an FP register.
    pub fn fget(&self, reg: FReg) -> f32 {
        self.note_read(16 + reg.index());
        f32::from_bits(self.fp[reg.index()])
    }

    /// Reads an FP register's raw bits.
    pub fn fget_bits(&self, reg: FReg) -> u32 {
        self.note_read(16 + reg.index());
        self.fp[reg.index()]
    }

    /// Writes an FP register.
    pub fn fset(&mut self, reg: FReg, value: f32) {
        self.note_overwrite(16 + reg.index());
        self.fp[reg.index()] = value.to_bits();
    }

    /// Writes an FP register's raw bits.
    pub fn fset_bits(&mut self, reg: FReg, bits: u32) {
        self.note_overwrite(16 + reg.index());
        self.fp[reg.index()] = bits;
    }

    /// Total SRAM bits modeled in the file.
    pub fn total_bits(&self) -> u64 {
        REGFILE_BITS
    }

    /// Every architectural word in [`RegFile::flip_bit`] layout order
    /// (r0–r12, sp_usr, sp_svc, lr, s0–s31). Unlike [`RegFile::get`], this
    /// does not touch the provenance watch — it exists for state
    /// fingerprinting, which must be a pure observer.
    pub fn words(&self) -> [u32; 48] {
        let mut out = [0u32; 48];
        out[..16].copy_from_slice(&self.words);
        out[16..].copy_from_slice(&self.fp);
        out
    }

    /// Flips one bit. Layout: r0–r12, sp_usr, sp_svc, lr, then s0–s31,
    /// 32 bits each, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= total_bits()`.
    pub fn flip_bit(&mut self, bit: u64) {
        assert!(bit < REGFILE_BITS, "register-file bit index out of range");
        let word = (bit / 32) as usize;
        let mask = 1u32 << (bit % 32);
        match word {
            0..=15 => self.words[word] ^= mask,
            _ => self.fp[word - 16] ^= mask,
        }
    }

    // ----- fault-provenance watch -------------------------------------------

    /// Which flat word a register-file bit index belongs to (same layout as
    /// [`RegFile::flip_bit`]).
    pub fn word_of_bit(bit: u64) -> usize {
        assert!(bit < REGFILE_BITS, "register-file bit index out of range");
        (bit / 32) as usize
    }

    /// Human-readable name of a flat word index (`r0`..`r12`, `sp_usr`,
    /// `sp_svc`, `lr`, `s0`..`s31`).
    pub fn word_name(word: usize) -> String {
        match word {
            0..=12 => format!("r{word}"),
            13 => "sp_usr".to_string(),
            14 => "sp_svc".to_string(),
            15 => "lr".to_string(),
            _ => format!("s{}", word - 16),
        }
    }

    /// Arm the provenance watch on flat `word`. Replaces any previous watch.
    pub fn set_watch(&mut self, word: usize) {
        debug_assert!(word < (REGFILE_BITS / 32) as usize);
        self.watch.set(Some(word as u8));
    }

    /// Disarm the watch and clear pending observations.
    pub fn clear_watch(&mut self) {
        self.watch.set(None);
        self.watch_touched.set(false);
        self.watch_dropped.set(false);
    }

    /// Drain observations accumulated since the last call
    /// (`evicted_writeback` is never set — registers have no write-back).
    pub fn take_watch_report(&mut self) -> WatchReport {
        let rep = WatchReport {
            touched: self.watch_touched.take(),
            evicted_writeback: false,
            evicted_dropped: self.watch_dropped.take(),
            writeback_addr: None,
        };
        if rep.evicted_dropped {
            self.watch.set(None);
        }
        rep
    }
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile::new()
    }
}

impl Snapshot for Cpsr {
    /// Serialized via the architectural bit layout, so the snapshot format
    /// and the SPSR save/restore path agree on one encoding.
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.to_bits());
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Cpsr, SnapError> {
        Ok(Cpsr::from_bits(r.u32()?))
    }
}

impl Snapshot for RegFile {
    /// Captures every architectural word: r0–r12, both banked stack
    /// pointers, lr, and the 32 FP registers. The provenance watch cells
    /// are not captured; restore yields a disarmed watch.
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"REGF");
        // Words stream in flip_bit order (r0–r12, sp_usr, sp_svc, lr), the
        // same byte layout the field-per-bank representation produced.
        for v in self.words {
            w.u32(v);
        }
        for v in self.fp {
            w.u32(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<RegFile, SnapError> {
        r.tag(*b"REGF")?;
        let mut rf = RegFile::new();
        for v in rf.words.iter_mut() {
            *v = r.u32()?;
        }
        for v in rf.fp.iter_mut() {
            *v = r.u32()?;
        }
        Ok(rf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpsr_roundtrip() {
        let c = Cpsr {
            n: true,
            z: false,
            c: true,
            v: false,
            irq_off: true,
            mode: Mode::Svc,
        };
        assert_eq!(Cpsr::from_bits(c.to_bits()), c);
        let u = Cpsr {
            mode: Mode::User,
            irq_off: false,
            ..c
        };
        assert_eq!(Cpsr::from_bits(u.to_bits()), u);
    }

    #[test]
    fn corrupted_mode_bits_degrade_to_user() {
        let bits = 0x0000_001F; // nonsense mode
        assert_eq!(Cpsr::from_bits(bits).mode, Mode::User);
    }

    #[test]
    fn sp_is_banked_per_mode() {
        let mut rf = RegFile::new();
        rf.set(Reg::Sp, Mode::User, 0x1000);
        rf.set(Reg::Sp, Mode::Svc, 0x2000);
        assert_eq!(rf.get(Reg::Sp, Mode::User), 0x1000);
        assert_eq!(rf.get(Reg::Sp, Mode::Svc), 0x2000);
        assert_eq!(rf.sp_usr(), 0x1000);
    }

    #[test]
    fn flip_bit_layout() {
        let mut rf = RegFile::new();
        rf.flip_bit(0);
        assert_eq!(rf.get(Reg::R0, Mode::User), 1);
        rf.flip_bit(13 * 32 + 4); // sp_usr bit 4
        assert_eq!(rf.sp_usr(), 16);
        rf.flip_bit(16 * 32 + 31); // s0 sign bit
        assert_eq!(rf.fget_bits(FReg::new(0)), 1 << 31);
        assert_eq!(REGFILE_BITS, 1536);
    }

    #[test]
    #[should_panic]
    fn pc_access_panics() {
        RegFile::new().get(Reg::Pc, Mode::User);
    }

    #[test]
    fn snapshot_round_trip_covers_every_word() {
        let mut rf = RegFile::new();
        // Give every flat word a distinct value via the flip_bit layout.
        for word in 0..(REGFILE_BITS / 32) {
            rf.flip_bit(word * 32 + (word % 32));
        }
        let mut w = SnapWriter::new();
        rf.save(&mut w);
        let buf = w.into_bytes();
        let back = RegFile::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.words, rf.words);
        assert_eq!(back.fp, rf.fp);
    }
}

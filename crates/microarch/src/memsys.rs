//! The cache hierarchy: L1I + L1D over a unified L2 over DRAM.

use sea_isa::MemSize;
use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::cache::{Cache, Probe};
use crate::config::{ExecMode, MachineConfig};
use crate::counters::Counters;
use crate::mem::PhysMemory;
use crate::profiler::MemProfiler;

/// The memory system below the core.
#[derive(Clone, Debug)]
pub struct MemSystem {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// DRAM.
    pub phys: PhysMemory,
    mode: ExecMode,
    lat_l1: u32,
    lat_l2: u32,
    lat_mem: u32,
    line: u32,
    /// Cache-line residency trackers; `None` (the fast path) unless a
    /// profiled run attached them. Never snapshotted.
    pub(crate) prof: Option<Box<MemProfiler>>,
}

/// DRAM line write with a bus-error guard: a write-back whose (possibly
/// fault-corrupted) tag points outside DRAM is dropped, as a real bus
/// would respond with an ignored slave error rather than crash the world.
fn dram_write_line(phys: &mut PhysMemory, addr: u32, data: &[u8]) {
    if (addr as u64) + data.len() as u64 <= phys.size() as u64 {
        phys.write_line(addr, data);
    }
}

/// DRAM line read with the same guard; out-of-range reads return zeros
/// (open bus).
fn dram_read_line(phys: &PhysMemory, addr: u32, buf: &mut [u8]) {
    if (addr as u64) + buf.len() as u64 <= phys.size() as u64 {
        phys.read_line(addr, buf);
    } else {
        buf.fill(0);
    }
}

impl MemSystem {
    /// Builds the hierarchy from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> MemSystem {
        MemSystem {
            l1i: Cache::new(cfg.l1i, false),
            l1d: Cache::new(cfg.l1d, true),
            l2: Cache::new(cfg.l2, true),
            phys: PhysMemory::new(cfg.mem_bytes),
            mode: cfg.mode,
            lat_l1: cfg.lat.l1_hit,
            lat_l2: cfg.lat.l2_hit,
            lat_mem: cfg.lat.mem,
            line: cfg.l1d.line_bytes,
            prof: None,
        }
    }

    // ----- L2 level (also used by the page-table walker) ------------------

    /// Reads a full line at `paddr` out of L2, filling from DRAM on miss.
    /// Returns latency.
    fn l2_read_line(&mut self, paddr: u32, buf: &mut [u8], ctr: &mut Counters) -> u32 {
        ctr.l2_access += 1;
        match self.l2.probe(paddr) {
            Probe::Hit(idx) => {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l2.touch(idx as usize, ctr.cycles);
                }
                self.l2.read_full_line(idx, buf);
                self.lat_l2
            }
            Probe::Miss => {
                ctr.l2_miss += 1;
                let (idx, wb) = self.l2.evict_for(paddr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l2.fill(idx as usize, ctr.cycles, wb.is_some());
                }
                if let Some((addr, data)) = wb {
                    dram_write_line(&mut self.phys, addr, &data);
                }
                let base = paddr & !(self.line - 1);
                dram_read_line(&self.phys, base, buf);
                self.l2.fill(idx, paddr, buf, false);
                self.lat_l2 + self.lat_mem
            }
        }
    }

    /// Writes a full line into L2 (an L1 write-back). Full-line writes
    /// allocate without fetching DRAM. Returns latency.
    fn l2_write_line(&mut self, paddr: u32, data: &[u8], ctr: &mut Counters) -> u32 {
        ctr.l2_access += 1;
        match self.l2.probe(paddr) {
            Probe::Hit(idx) => {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l2.touch(idx as usize, ctr.cycles);
                }
                self.l2.write_full_line(idx, data);
                self.lat_l2
            }
            Probe::Miss => {
                ctr.l2_miss += 1;
                let (idx, wb) = self.l2.evict_for(paddr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l2.fill(idx as usize, ctr.cycles, wb.is_some());
                }
                if let Some((addr, old)) = wb {
                    dram_write_line(&mut self.phys, addr, &old);
                }
                self.l2.fill(idx, paddr, data, true);
                self.lat_l2
            }
        }
    }

    /// A word read used by the hardware page-table walker: looks in L2
    /// (where table lines live after first touch), then DRAM.
    pub fn walk_read(&mut self, paddr: u32, ctr: &mut Counters) -> (u32, u32) {
        if self.mode == ExecMode::Atomic {
            return (self.phys.read(paddr, MemSize::Word), 1);
        }
        let mut buf = vec![0u8; self.line as usize];
        let lat = self.l2_read_line(paddr, &mut buf, ctr);
        let off = (paddr & (self.line - 1)) as usize;
        (
            u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()),
            lat,
        )
    }

    // ----- data path -------------------------------------------------------

    /// Data-side read of `size` at `paddr`. Returns `(value, latency)`.
    pub fn read_data(&mut self, paddr: u32, size: MemSize, ctr: &mut Counters) -> (u32, u32) {
        if self.mode == ExecMode::Atomic {
            return (self.phys.read(paddr, size), 1);
        }
        ctr.l1d_access += 1;
        match self.l1d.probe(paddr) {
            Probe::Hit(idx) => {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1d.touch(idx as usize, ctr.cycles);
                }
                (self.l1d.read(idx, paddr, size.bytes()), self.lat_l1)
            }
            Probe::Miss => {
                ctr.l1d_miss += 1;
                let mut extra = 0;
                let (idx, wb) = self.l1d.evict_for(paddr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1d.fill(idx as usize, ctr.cycles, wb.is_some());
                }
                if let Some((addr, data)) = wb {
                    extra += self.l2_write_line(addr, &data, ctr);
                }
                let mut buf = vec![0u8; self.line as usize];
                let lat = self.l2_read_line(paddr, &mut buf, ctr);
                self.l1d.fill(idx, paddr, &buf, false);
                let v = self.l1d.read(idx, paddr, size.bytes());
                (v, self.lat_l1 + lat + extra)
            }
        }
    }

    /// Data-side write (write-back, write-allocate). Returns latency.
    pub fn write_data(&mut self, paddr: u32, size: MemSize, value: u32, ctr: &mut Counters) -> u32 {
        if self.mode == ExecMode::Atomic {
            self.phys.write(paddr, size, value);
            return 1;
        }
        ctr.l1d_access += 1;
        match self.l1d.probe(paddr) {
            Probe::Hit(idx) => {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1d.touch(idx as usize, ctr.cycles);
                }
                self.l1d.write(idx, paddr, size.bytes(), value);
                self.lat_l1
            }
            Probe::Miss => {
                ctr.l1d_miss += 1;
                let mut extra = 0;
                let (idx, wb) = self.l1d.evict_for(paddr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1d.fill(idx as usize, ctr.cycles, wb.is_some());
                }
                if let Some((addr, data)) = wb {
                    extra += self.l2_write_line(addr, &data, ctr);
                }
                let mut buf = vec![0u8; self.line as usize];
                let lat = self.l2_read_line(paddr, &mut buf, ctr);
                self.l1d.fill(idx, paddr, &buf, false);
                self.l1d.write(idx, paddr, size.bytes(), value);
                self.lat_l1 + lat + extra
            }
        }
    }

    // ----- instruction path --------------------------------------------------

    /// Instruction fetch of one word. Returns `(word, latency)`.
    pub fn fetch(&mut self, paddr: u32, ctr: &mut Counters) -> (u32, u32) {
        if self.mode == ExecMode::Atomic {
            return (self.phys.read(paddr, MemSize::Word), 1);
        }
        ctr.l1i_access += 1;
        match self.l1i.probe(paddr) {
            Probe::Hit(idx) => {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1i.touch(idx as usize, ctr.cycles);
                }
                (self.l1i.read(idx, paddr, 4), self.lat_l1)
            }
            Probe::Miss => {
                ctr.l1i_miss += 1;
                let (idx, _) = self.l1i.evict_for(paddr);
                if let Some(p) = self.prof.as_deref_mut() {
                    p.l1i.fill(idx as usize, ctr.cycles, false);
                }
                let mut buf = vec![0u8; self.line as usize];
                let lat = self.l2_read_line(paddr, &mut buf, ctr);
                self.l1i.fill(idx, paddr, &buf, false);
                (self.l1i.read(idx, paddr, 4), self.lat_l1 + lat)
            }
        }
    }

    // ----- repeat-hit shortcuts (the execution fast path) -----------------

    /// [`MemSystem::fetch`] served through a latched L1I line (see
    /// [`Cache::hit_mru`]): bit-identical to the reference hit path, or
    /// `None` when anything about the line changed (caller re-fetches the
    /// reference way). `idx` must come from a prior
    /// [`Cache::find_line`]/probe of the same line base.
    pub fn fetch_mru(&mut self, idx: u32, paddr: u32, ctr: &mut Counters) -> Option<(u32, u32)> {
        if !self.l1i.hit_mru(idx, paddr) {
            return None;
        }
        ctr.l1i_access += 1;
        if let Some(p) = self.prof.as_deref_mut() {
            p.l1i.touch(idx as usize, ctr.cycles);
        }
        Some((self.l1i.read(idx, paddr, 4), self.lat_l1))
    }

    /// [`MemSystem::read_data`] served through a latched L1D line;
    /// contract as for [`MemSystem::fetch_mru`].
    pub fn read_data_mru(
        &mut self,
        idx: u32,
        paddr: u32,
        size: MemSize,
        ctr: &mut Counters,
    ) -> Option<(u32, u32)> {
        if !self.l1d.hit_mru(idx, paddr) {
            return None;
        }
        ctr.l1d_access += 1;
        if let Some(p) = self.prof.as_deref_mut() {
            p.l1d.touch(idx as usize, ctr.cycles);
        }
        Some((self.l1d.read(idx, paddr, size.bytes()), self.lat_l1))
    }

    /// [`MemSystem::write_data`] served through a latched L1D line;
    /// contract as for [`MemSystem::fetch_mru`].
    pub fn write_data_mru(
        &mut self,
        idx: u32,
        paddr: u32,
        size: MemSize,
        value: u32,
        ctr: &mut Counters,
    ) -> Option<u32> {
        if !self.l1d.hit_mru(idx, paddr) {
            return None;
        }
        ctr.l1d_access += 1;
        if let Some(p) = self.prof.as_deref_mut() {
            p.l1d.touch(idx as usize, ctr.cycles);
        }
        self.l1d.write(idx, paddr, size.bytes(), value);
        Some(self.lat_l1)
    }

    /// Whether the hierarchy is modeled at all (the latches are useless —
    /// and never filled — under [`ExecMode::Atomic`]).
    pub fn is_detailed(&self) -> bool {
        self.mode == ExecMode::Detailed
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Switches execution modes in place. Callers that drop from
    /// [`ExecMode::Detailed`] to [`ExecMode::Atomic`] must drain the
    /// hierarchy first ([`MemSystem::clean_invalidate_all`]): atomic
    /// accesses go straight to DRAM, so any dirty line left behind would
    /// shear reads from writes.
    pub(crate) fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    // ----- maintenance ----------------------------------------------------------

    /// Cleans (writes back) and invalidates every cache level, top down.
    pub fn clean_invalidate_all(&mut self) {
        if let Some(p) = self.prof.as_deref_mut() {
            p.l1i.flush_all();
            p.l1d.flush_all();
            p.l2.flush_all();
        }
        let mut l1_spill: Vec<(u32, Vec<u8>)> = Vec::new();
        self.l1d
            .clean_invalidate_all(|addr, data| l1_spill.push((addr, data.to_vec())));
        let mut scratch = Counters::default();
        for (addr, data) in l1_spill {
            self.l2_write_line(addr, &data, &mut scratch);
        }
        self.l1i.clean_invalidate_all(|_, _| {});
        let phys = &mut self.phys;
        self.l2
            .clean_invalidate_all(|addr, data| dram_write_line(phys, addr, data));
    }

    /// Debug read that sees committed state top-down (L1D, then L2, then
    /// DRAM) without perturbing LRU — used by the board harness and tests
    /// to observe memory as a coherent outside agent.
    pub fn peek(&self, paddr: u32, size: MemSize) -> u32 {
        self.l1d
            .peek(paddr, size.bytes())
            .or_else(|| self.l2.peek(paddr, size.bytes()))
            .unwrap_or_else(|| self.phys.read(paddr, size))
    }
}

impl Snapshot for MemSystem {
    fn save(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.prof.is_none(),
            "profiler must be detached before snapshotting"
        );
        w.tag(*b"MSYS");
        self.l1i.save(w);
        self.l1d.save(w);
        self.l2.save(w);
        self.phys.save(w);
        w.u8(match self.mode {
            ExecMode::Atomic => 0,
            ExecMode::Detailed => 1,
        });
        w.u32(self.lat_l1);
        w.u32(self.lat_l2);
        w.u32(self.lat_mem);
        w.u32(self.line);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<MemSystem, SnapError> {
        r.tag(*b"MSYS")?;
        Ok(MemSystem {
            l1i: Cache::load(r)?,
            l1d: Cache::load(r)?,
            l2: Cache::load(r)?,
            phys: PhysMemory::load(r)?,
            mode: match r.u8()? {
                0 => ExecMode::Atomic,
                1 => ExecMode::Detailed,
                _ => return Err(SnapError::Malformed("unknown exec mode")),
            },
            lat_l1: r.u32()?,
            lat_l2: r.u32()?,
            lat_mem: r.u32()?,
            line: r.u32()?,
            prof: None,
        })
    }
}

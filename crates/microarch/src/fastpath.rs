//! The fault-transparent execution fast path.
//!
//! Three memoization structures sit in front of the slow per-step work:
//!
//! * a **predecoded µop cache** — a direct-mapped software cache keyed by
//!   `(paddr, raw_word)` holding the decoded [`Insn`]. The fetch itself
//!   still runs through the modeled L1I/L2 hierarchy (counters, LRU and
//!   provenance watches update exactly as on the slow path); only the pure
//!   `sea_isa::decode` call is skipped on a hit. Because the key includes
//!   the *actually fetched* word, any injected flip that reaches the fetch
//!   stream — an L1I/L2/DRAM bit, or a self-modifying store — changes
//!   `raw_word` and misses by construction, so the cache can never serve a
//!   decode the slow path would not have produced.
//!
//! * a **per-access-class translation latch** — the last `(vpn, slot)`
//!   pair per access class (fetch / read / write). On a same-page streak
//!   the latch short-circuits the fully-associative TLB scan; the hit is
//!   revalidated against the live TLB entry and replays exactly the
//!   bookkeeping a scan hit would have performed (see
//!   [`Tlb::hit_latched`](crate::tlb::Tlb::hit_latched)). The latches are
//!   cleared on TLB flushes, mode changes, exception entry/return and any
//!   injected flip, so a corrupted TLB is always re-scanned the reference
//!   way.
//!
//! * **L1 line latches** — the last hit L1I line and a few recent L1D
//!   lines. A repeat access to a latched line skips the L1 set scan, but
//!   only when the line is still valid, still holds the access's tag, and
//!   is already its set's MRU way — the one state in which the scan's LRU
//!   update is a no-op (see [`Cache::hit_mru`](crate::Cache::hit_mru)).
//!   The check runs against the live cache arrays, so fills, evictions,
//!   flushes and injected flips all invalidate by construction.
//!
//! None of these structures is architectural state: all are dropped from
//! snapshots and rebuilt cold after restore, and a conservative flush is
//! always equivalence-preserving (it merely costs the memoization).

use sea_isa::Insn;

/// Configuration of the execution fast path, passed to
/// [`System::fastpath_enable`](crate::System::fastpath_enable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FastPathConfig {
    /// Number of direct-mapped µop-cache entries (must be a power of two).
    pub uop_entries: u32,
}

impl Default for FastPathConfig {
    fn default() -> FastPathConfig {
        FastPathConfig { uop_entries: 2048 }
    }
}

impl FastPathConfig {
    /// True when the configuration is usable.
    pub fn validate(&self) -> bool {
        self.uop_entries.is_power_of_two()
    }
}

/// Effectiveness counters of the fast path, for benches and tests. These
/// are observability only — they never feed back into simulated state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FastPathStats {
    /// Fetched words whose decode was served from the µop cache.
    pub uop_hits: u64,
    /// Fetched words that had to run the full decoder.
    pub uop_misses: u64,
    /// Translations served by a per-access-class page latch.
    pub latch_hits: u64,
    /// L1 accesses served by a most-recently-used line latch (the L1 set
    /// scan skipped).
    pub line_hits: u64,
}

/// One µop-cache line: the physical word address, the raw word that was
/// fetched from it, and the decode of that word.
#[derive(Clone, Copy, Debug)]
struct UopLine {
    paddr: u32,
    word: u32,
    insn: Insn,
}

/// Runtime state of the fast path. Held as `Option<Box<FastPath>>` on
/// [`System`](crate::System), like the probe and profiler slots: never
/// snapshotted, absent by default.
#[derive(Clone, Debug)]
pub(crate) struct FastPath {
    lines: Vec<Option<UopLine>>,
    mask: u32,
    /// Last `(vpn, slot)` per access class, indexed by `Access as usize`
    /// (fetch / read / write).
    latches: [Option<(u32, usize)>; 3],
    /// Last L1I hit: `(line base, line index)`. Revalidated against the
    /// live cache arrays by [`crate::Cache::hit_mru`], so a stale latch
    /// costs a fallback scan and never an incorrect serve.
    pub(crate) fetch_line: Option<(u32, u32)>,
    /// Recent L1D hits (reads and writes share the one cache), direct-
    /// mapped by line-base bits: loops that alternate between a couple of
    /// hot lines (input + lookup table, array + stack) keep all of them
    /// latched instead of thrashing one slot.
    data_lines: [Option<(u32, u32)>; 4],
    pub(crate) uop_hits: u64,
    pub(crate) uop_misses: u64,
    pub(crate) latch_hits: u64,
    pub(crate) line_hits: u64,
}

impl FastPath {
    pub(crate) fn new(cfg: &FastPathConfig) -> FastPath {
        assert!(cfg.validate(), "invalid fast-path configuration");
        FastPath {
            lines: vec![None; cfg.uop_entries as usize],
            mask: cfg.uop_entries - 1,
            latches: [None; 3],
            fetch_line: None,
            data_lines: [None; 4],
            uop_hits: 0,
            uop_misses: 0,
            latch_hits: 0,
            line_hits: 0,
        }
    }

    fn slot(&self, paddr: u32) -> usize {
        ((paddr >> 2) & self.mask) as usize
    }

    /// Looks up the decode of `word` as fetched from `paddr`. Both halves
    /// of the key must match: a flipped or overwritten word misses.
    pub(crate) fn uop_lookup(&mut self, paddr: u32, word: u32) -> Option<Insn> {
        let slot = self.slot(paddr);
        // Borrow the line rather than copying it: only the decoded insn
        // leaves, and only on a hit.
        if let Some(l) = &self.lines[slot] {
            if l.paddr == paddr && l.word == word {
                let insn = l.insn;
                self.uop_hits += 1;
                return Some(insn);
            }
        }
        self.uop_misses += 1;
        None
    }

    /// Caches a successful decode. Failed decodes are never cached: the
    /// slow path re-raises `Undefined` from the decoder itself.
    pub(crate) fn uop_insert(&mut self, paddr: u32, word: u32, insn: Insn) {
        let slot = self.slot(paddr);
        self.lines[slot] = Some(UopLine { paddr, word, insn });
    }

    /// Drops the µop line covering the word at `paddr`, if cached —
    /// self-modifying-code hygiene for D-side stores into predecoded
    /// lines. (The `(paddr, word)` key already guarantees correctness;
    /// this keeps the slot from wasting its tag on a dead encoding.)
    pub(crate) fn uop_flush_word(&mut self, paddr: u32) {
        let paddr = paddr & !3;
        let slot = self.slot(paddr);
        if matches!(self.lines[slot], Some(l) if l.paddr == paddr) {
            self.lines[slot] = None;
        }
    }

    pub(crate) fn latch_get(&self, idx: usize) -> Option<(u32, usize)> {
        self.latches[idx]
    }

    /// Direct-mapped slot for an L1D line base. `>> 5` works for any line
    /// size ≥ 32 bytes (smaller lines just alias more, costing fallback
    /// scans, never correctness).
    fn data_slot(base: u32) -> usize {
        ((base >> 5) & 3) as usize
    }

    /// The latched L1D line index for `base`, if any.
    pub(crate) fn data_line_get(&self, base: u32) -> Option<u32> {
        match self.data_lines[Self::data_slot(base)] {
            Some((b, idx)) if b == base => Some(idx),
            _ => None,
        }
    }

    pub(crate) fn data_line_set(&mut self, base: u32, idx: u32) {
        self.data_lines[Self::data_slot(base)] = Some((base, idx));
    }

    pub(crate) fn latch_set(&mut self, idx: usize, vpn: u32, slot: usize) {
        self.latches[idx] = Some((vpn, slot));
    }

    /// Forgets all translation latches. Called wherever the slow path
    /// would change what a TLB scan can return: TLB flushes, CPSR/mode
    /// changes, exception entry and return, and injected flips.
    pub(crate) fn clear_latches(&mut self) {
        self.latches = [None; 3];
    }

    /// Full invalidation: latches and every µop line. Used after a fault
    /// injection touches any SRAM array — conservative, and free at
    /// one-flip-per-run campaign rates.
    pub(crate) fn invalidate_all(&mut self) {
        self.clear_latches();
        self.fetch_line = None;
        self.data_lines = [None; 4];
        for l in &mut self.lines {
            *l = None;
        }
    }

    pub(crate) fn stats(&self) -> FastPathStats {
        FastPathStats {
            uop_hits: self.uop_hits,
            uop_misses: self.uop_misses,
            latch_hits: self.latch_hits,
            line_hits: self.line_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_isa::decode;

    fn nop_word() -> u32 {
        sea_isa::encode(&Insn::Nop {
            cond: sea_isa::Cond::Al,
        })
    }

    #[test]
    fn uop_key_includes_the_fetched_word() {
        let mut f = FastPath::new(&FastPathConfig { uop_entries: 16 });
        let nop = decode(nop_word()).unwrap();
        f.uop_insert(0x100, nop_word(), nop);
        assert!(f.uop_lookup(0x100, nop_word()).is_some());
        // Same address, different word (as after an L1I flip): miss.
        assert!(f.uop_lookup(0x100, nop_word() ^ 1).is_none());
        // Different address aliasing the same slot: miss.
        assert!(f.uop_lookup(0x100 + 16 * 4, nop_word()).is_none());
    }

    #[test]
    fn word_flush_drops_only_the_matching_line() {
        let mut f = FastPath::new(&FastPathConfig { uop_entries: 16 });
        let nop = decode(nop_word()).unwrap();
        f.uop_insert(0x100, nop_word(), nop);
        // A flush of an aliasing address leaves the line alone...
        f.uop_flush_word(0x100 + 16 * 4);
        assert!(f.uop_lookup(0x100, nop_word()).is_some());
        // ...a flush of any byte within the cached word drops it.
        f.uop_flush_word(0x102);
        assert!(f.uop_lookup(0x100, nop_word()).is_none());
    }

    #[test]
    fn invalidate_all_clears_lines_and_latches() {
        let mut f = FastPath::new(&FastPathConfig::default());
        let nop = decode(nop_word()).unwrap();
        f.uop_insert(0x40, nop_word(), nop);
        f.latch_set(0, 7, 3);
        f.invalidate_all();
        assert!(f.latch_get(0).is_none());
        assert!(f.uop_lookup(0x40, nop_word()).is_none());
    }

    #[test]
    fn config_validation() {
        assert!(FastPathConfig::default().validate());
        assert!(!FastPathConfig { uop_entries: 0 }.validate());
        assert!(!FastPathConfig { uop_entries: 48 }.validate());
    }
}

//! Performance counters.
//!
//! Exactly the seven counters §IV-D of the paper compares between the Zynq
//! board and gem5, plus retired-instruction and L2 counts used internally.

/// Hardware performance counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Counters {
    /// CPU cycles.
    pub cycles: u64,
    /// Retired instructions (condition-failed instructions count as
    /// retired, as on ARM).
    pub instructions: u64,
    /// Executed branch instructions.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_access: u64,
    /// L1 data-cache misses.
    pub l1d_miss: u64,
    /// L1 instruction-cache accesses.
    pub l1i_access: u64,
    /// L1 instruction-cache misses.
    pub l1i_miss: u64,
    /// L2 accesses.
    pub l2_access: u64,
    /// L2 misses.
    pub l2_miss: u64,
    /// Data-TLB misses.
    pub dtlb_miss: u64,
    /// Instruction-TLB misses.
    pub itlb_miss: u64,
}

impl Counters {
    /// The seven (name, value) pairs of paper §IV-D, in its order.
    pub fn paper_seven(&self) -> [(&'static str, u64); 7] {
        [
            ("cpu_cycles", self.cycles),
            ("branch_misses", self.branch_misses),
            ("l1d_access", self.l1d_access),
            ("l1d_miss", self.l1d_miss),
            ("dtlb_miss", self.dtlb_miss),
            ("l1i_miss", self.l1i_miss),
            ("itlb_miss", self.itlb_miss),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seven_has_seven_distinct_names() {
        let c = Counters::default();
        let names: std::collections::BTreeSet<_> =
            c.paper_seven().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 7);
    }
}

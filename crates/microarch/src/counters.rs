//! Performance counters.
//!
//! Exactly the seven counters §IV-D of the paper compares between the Zynq
//! board and gem5, plus retired-instruction and L2 counts used internally.

/// Hardware performance counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Counters {
    /// CPU cycles.
    pub cycles: u64,
    /// Retired instructions (condition-failed instructions count as
    /// retired, as on ARM).
    pub instructions: u64,
    /// Executed branch instructions.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_access: u64,
    /// L1 data-cache misses.
    pub l1d_miss: u64,
    /// L1 instruction-cache accesses.
    pub l1i_access: u64,
    /// L1 instruction-cache misses.
    pub l1i_miss: u64,
    /// L2 accesses.
    pub l2_access: u64,
    /// L2 misses.
    pub l2_miss: u64,
    /// Data-TLB misses.
    pub dtlb_miss: u64,
    /// Instruction-TLB misses.
    pub itlb_miss: u64,
}

impl Counters {
    /// The seven (name, value) pairs of paper §IV-D, in its order.
    pub fn paper_seven(&self) -> [(&'static str, u64); 7] {
        [
            ("cpu_cycles", self.cycles),
            ("branch_misses", self.branch_misses),
            ("l1d_access", self.l1d_access),
            ("l1d_miss", self.l1d_miss),
            ("dtlb_miss", self.dtlb_miss),
            ("l1i_miss", self.l1i_miss),
            ("itlb_miss", self.itlb_miss),
        ]
    }

    /// Counts accumulated since `earlier` (each field saturating at zero,
    /// so a reset in between degrades gracefully instead of wrapping).
    pub fn delta(&self, earlier: &Counters) -> Counters {
        Counters {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            branches: self.branches.saturating_sub(earlier.branches),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            l1d_access: self.l1d_access.saturating_sub(earlier.l1d_access),
            l1d_miss: self.l1d_miss.saturating_sub(earlier.l1d_miss),
            l1i_access: self.l1i_access.saturating_sub(earlier.l1i_access),
            l1i_miss: self.l1i_miss.saturating_sub(earlier.l1i_miss),
            l2_access: self.l2_access.saturating_sub(earlier.l2_access),
            l2_miss: self.l2_miss.saturating_sub(earlier.l2_miss),
            dtlb_miss: self.dtlb_miss.saturating_sub(earlier.dtlb_miss),
            itlb_miss: self.itlb_miss.saturating_sub(earlier.itlb_miss),
        }
    }
}

impl sea_snapshot::Snapshot for Counters {
    fn save(&self, w: &mut sea_snapshot::SnapWriter) {
        w.tag(*b"CNTR");
        for v in [
            self.cycles,
            self.instructions,
            self.branches,
            self.branch_misses,
            self.l1d_access,
            self.l1d_miss,
            self.l1i_access,
            self.l1i_miss,
            self.l2_access,
            self.l2_miss,
            self.dtlb_miss,
            self.itlb_miss,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut sea_snapshot::SnapReader<'_>) -> Result<Counters, sea_snapshot::SnapError> {
        r.tag(*b"CNTR")?;
        Ok(Counters {
            cycles: r.u64()?,
            instructions: r.u64()?,
            branches: r.u64()?,
            branch_misses: r.u64()?,
            l1d_access: r.u64()?,
            l1d_miss: r.u64()?,
            l1i_access: r.u64()?,
            l1i_miss: r.u64()?,
            l2_access: r.u64()?,
            l2_miss: r.u64()?,
            dtlb_miss: r.u64()?,
            itlb_miss: r.u64()?,
        })
    }
}

impl std::fmt::Display for Counters {
    /// Renders the §IV-D seven-counter block, one aligned `name value` row
    /// per line, in the paper's order.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let seven = self.paper_seven();
        let width = seven.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in seven {
            writeln!(f, "{name:<width$}  {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_seven_has_seven_distinct_names() {
        let c = Counters::default();
        let names: std::collections::BTreeSet<_> =
            c.paper_seven().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn delta_subtracts_fieldwise_and_saturates() {
        let early = Counters {
            cycles: 100,
            l1d_access: 40,
            itlb_miss: 9,
            ..Default::default()
        };
        let late = Counters {
            cycles: 250,
            l1d_access: 41,
            itlb_miss: 5, // counter reset in between
            l2_miss: 3,
            ..Default::default()
        };
        let d = late.delta(&early);
        assert_eq!(d.cycles, 150);
        assert_eq!(d.l1d_access, 1);
        assert_eq!(d.l2_miss, 3);
        assert_eq!(
            d.itlb_miss, 0,
            "reset between samples must saturate, not wrap"
        );
    }

    #[test]
    fn display_renders_the_seven_paper_counters() {
        let c = Counters {
            cycles: 12345,
            branch_misses: 67,
            ..Default::default()
        };
        let text = c.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7, "one row per §IV-D counter:\n{text}");
        assert!(lines[0].starts_with("cpu_cycles"));
        assert!(lines[0].ends_with("12345"));
        assert!(lines[1].starts_with("branch_misses"));
        // Names are padded to a common column.
        let value_col: std::collections::BTreeSet<usize> = lines
            .iter()
            .map(|l| l.rfind("  ").expect("two-space separator"))
            .collect();
        assert_eq!(value_col.len(), 1, "values must be column-aligned:\n{text}");
    }
}

//! Residency/liveness profilers attached to a running [`System`].
//!
//! The profilers compose `sea-profile` primitives with this crate's
//! structure geometry: one [`StructureResidency`] per injectable SRAM
//! array (the six [`Component`]s), fed by hooks on the simulator's
//! fill/lookup paths, plus the per-PC cycle sampler. They are *transient*
//! observers — never part of snapshots (save asserts they are detached,
//! load leaves them detached), so profiling can't perturb checkpoint
//! bytes or campaign determinism.
//!
//! [`System`]: crate::System
//! [`Component`]: crate::Component

use crate::cache::Cache;
use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::regfile::REGFILE_BITS;
use sea_profile::{PcSampler, SampleCounters, StructureReport, StructureResidency};
use std::cell::RefCell;

/// Sampling period for the per-PC profiler: every step, because a step
/// already costs a full decode/execute and the sampler is only attached
/// to golden runs, where exactness beats speed.
const PC_SAMPLE_PERIOD: u32 = 1;

/// TLB entry payload bits that are ACE while the entry is live: PPN
/// `[19:0]` plus the permission/valid bits `[43:40]` — corrupting any of
/// them misroutes or faults accesses through the entry.
const TLB_BITS_ACE: u64 = 24;
/// TLB virtual-tag bits (VPN `[39:20]`), ACE over the whole residency: a
/// tag flip mis-homes the entry for as long as it is valid.
const TLB_BITS_AUX: u64 = 20;
/// TLB unimplemented filler cells `[63:44]`, never ACE but injected into.
const TLB_BITS_DEAD: u64 = 20;

/// Mirror the machine counters into the dependency-free sample struct.
pub(crate) fn sample_counters(c: &Counters) -> SampleCounters {
    SampleCounters {
        cycles: c.cycles,
        instructions: c.instructions,
        l1d_miss: c.l1d_miss,
        l1i_miss: c.l1i_miss,
        l2_miss: c.l2_miss,
        dtlb_miss: c.dtlb_miss,
        itlb_miss: c.itlb_miss,
        branch_misses: c.branch_misses,
    }
}

fn cache_residency(name: &'static str, cache: &Cache) -> StructureResidency {
    // Payload = the data bytes (ACE fill→last-use, or to eviction on
    // write-back); aux = tag + valid + dirty (a flip in any mis-homes or
    // spuriously dirties the line for its whole residency).
    StructureResidency::new(
        name,
        cache.lines() as usize,
        8 * cache.line_bytes() as u64,
        cache.tag_bits() as u64 + 2,
        0,
    )
}

/// Residency trackers owned by the CPU side of the system: register file,
/// both TLBs, and the per-PC cycle sampler.
#[derive(Clone, Debug)]
pub struct SysProfiler {
    /// Per-PC cycle attribution.
    pub(crate) pc: PcSampler,
    /// Register-file word residency. `RefCell` because operand reads go
    /// through `&self` accessors; the simulator is single-threaded per
    /// `System`, so the dynamic borrow never contends.
    pub(crate) regs: RefCell<StructureResidency>,
    /// Instruction-TLB entry residency.
    pub(crate) itlb: StructureResidency,
    /// Data-TLB entry residency.
    pub(crate) dtlb: StructureResidency,
}

impl SysProfiler {
    /// Trackers sized for `config`'s machine.
    pub fn new(config: &MachineConfig) -> SysProfiler {
        SysProfiler {
            pc: PcSampler::new(PC_SAMPLE_PERIOD),
            // 48 words of 32 bits each (r0–r12, banked SPs, lr, s0–s31).
            // FP reads/writes are not hooked, so the 32 FP words simply
            // accumulate no ACE time — a conservative under-estimate for
            // FP-heavy workloads, exact for the integer suite.
            regs: RefCell::new(StructureResidency::new(
                "RF",
                (REGFILE_BITS / 32) as usize,
                32,
                0,
                0,
            )),
            itlb: StructureResidency::new(
                "ITLB",
                config.itlb_entries as usize,
                TLB_BITS_ACE,
                TLB_BITS_AUX,
                TLB_BITS_DEAD,
            ),
            dtlb: StructureResidency::new(
                "DTLB",
                config.dtlb_entries as usize,
                TLB_BITS_ACE,
                TLB_BITS_AUX,
                TLB_BITS_DEAD,
            ),
        }
    }
}

/// Residency trackers owned by the memory hierarchy: the three caches.
#[derive(Clone, Debug)]
pub struct MemProfiler {
    /// L1 instruction-cache line residency.
    pub(crate) l1i: StructureResidency,
    /// L1 data-cache line residency.
    pub(crate) l1d: StructureResidency,
    /// Unified L2 line residency.
    pub(crate) l2: StructureResidency,
}

impl MemProfiler {
    /// Trackers matching the three caches' geometry.
    pub fn new(l1i: &Cache, l1d: &Cache, l2: &Cache) -> MemProfiler {
        MemProfiler {
            l1i: cache_residency("L1I$", l1i),
            l1d: cache_residency("L1D$", l1d),
            l2: cache_residency("L2$", l2),
        }
    }

    /// Finalize all three trackers at `end_cycle`, in the paper's
    /// component order.
    pub(crate) fn finalize(self, end_cycle: u64) -> [StructureReport; 3] {
        [
            self.l1i.finalize(end_cycle),
            self.l1d.finalize(end_cycle),
            self.l2.finalize(end_cycle),
        ]
    }
}

//! The functional execution tier ("warp"): basic-block-fused µop traces.
//!
//! Campaigns spend almost all of their simulated cycles on the fault-free
//! prefix, where cycle-level fidelity buys nothing (the determinism
//! contract guarantees the prefix cannot differ from the golden run).
//! The warp tier executes that prefix with **architectural state only**:
//!
//! * straight-line runs of instructions are fetched, decoded once and
//!   fused into a **basic-block trace** — a direct-mapped software cache
//!   of `Arc<[Insn]>` blocks keyed by virtual start address, built on the
//!   same predecode machinery as the PR 5 µop cache. Re-entering a hot
//!   block skips fetch *and* decode for every instruction in it;
//!
//! * memory runs in [`ExecMode::Atomic`](crate::ExecMode::Atomic): no
//!   cache-set scans, no LRU updates, no miss modeling — each access is a
//!   flat load/store against DRAM. Entering the tier drains the detailed
//!   hierarchy (clean + invalidate) so atomic accesses always see
//!   committed state, and the detailed tier restarts cold afterwards;
//!
//! * timing is **approximate**: cycles still advance monotonically (so
//!   device time and IRQ polling keep working) but carry per-instruction
//!   unit costs instead of modeled hierarchy latencies.
//!
//! Blocks cache decoded words, so they follow the same hygiene rules as a
//! never-evicting TLB-of-traces:
//!
//! * **SMC** — a store into a physical page holding any cached block
//!   drops every block on that page (the engine keeps a page filter so
//!   the common non-SMC store is one hash probe);
//! * **translation or mode changes** — TTBR writes, TLB flush ops,
//!   CPSR writes, exception entry/return — flush the whole trace cache;
//! * **fault injection** — an injected flip flushes it too (a corrupted
//!   code byte must re-decode).
//!
//! Every invalidation bumps a generation counter that the in-flight block
//! execution loop re-checks after each µop, so a block can never keep
//! running past a store or mode change that killed it.
//!
//! The warp tier is *not* bit-exact against detailed stepping — cycle
//! counts, cache/TLB residency and IRQ arrival points all differ. It is
//! architecturally exact while interrupts are quiescent, which is what
//! the standalone-tier tests pin down; campaigns that need bit-exact
//! journals use the warp *cursor* in sea-injection, which amortizes
//! detailed prefix stepping instead.

use crate::regfile::{Mode, RegFile};
use crate::tlb::TlbEntry;
use sea_isa::{Cond, DpOp, Insn, MemOffset, MemSize, Operand2, Reg, Shift};
use std::collections::HashSet;
use std::sync::Arc;

/// Entries in the warp translation cache (direct-mapped by vpn). Power of
/// two; sized to cover a workload's full working set so steady-state
/// accesses never fall back to the reference TLB scan.
const TCACHE_ENTRIES: usize = 256;

/// Configuration of the warp tier, passed to
/// [`System::warp_enable`](crate::System::warp_enable).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpConfig {
    /// Number of direct-mapped block-cache entries (must be a power of
    /// two).
    pub block_entries: u32,
    /// Maximum instructions fused into one block (must be non-zero).
    /// Blocks also end at control flow, system instructions, undecodable
    /// words and page boundaries.
    pub max_block_len: u32,
}

impl Default for WarpConfig {
    fn default() -> WarpConfig {
        WarpConfig {
            block_entries: 1024,
            max_block_len: 32,
        }
    }
}

impl WarpConfig {
    /// True when the configuration is usable.
    pub fn validate(&self) -> bool {
        self.block_entries.is_power_of_two() && self.max_block_len > 0
    }
}

/// Effectiveness counters of the warp tier, for benches, `/metrics` and
/// tests. Observability only — never fed back into simulated state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WarpStats {
    /// Block executions served from the trace cache.
    pub block_hits: u64,
    /// Block executions that had to fetch + decode + fuse first.
    pub block_misses: u64,
    /// Instructions retired inside the warp tier.
    pub insns: u64,
    /// Page-granular invalidations caused by stores into cached code.
    pub smc_invalidations: u64,
    /// Whole-cache flushes (mode/translation changes, fault injection).
    pub flushes: u64,
}

/// Marks an absent pre-resolved register operand in a [`Uop`].
pub(crate) const NO_REG: u8 = 0xFF;

/// [`Uop::Ldr`]/[`Uop::Str`] flag: the offset is the immediate field
/// (otherwise `words[rm] << shl`).
pub(crate) const MEM_IMM: u8 = 1;
/// Flag: subtract the offset from the base instead of adding it.
pub(crate) const MEM_SUB: u8 = 2;
/// Flag: pre-index (the offset applies before the access).
pub(crate) const MEM_PRE: u8 = 4;
/// Flag: write the indexed address back to the base register.
pub(crate) const MEM_WB: u8 = 8;

/// One pre-lowered µop: the decode of one instruction with its operands
/// resolved at block-build time. Register fields are flat word indices
/// into the integer register file ([`RegFile::word_index`] layout), so
/// banked operands (`sp`) are resolved against the mode the block was
/// lowered under — sound because every mode change flushes the trace
/// cache. Lowering also proves which side effects a µop *cannot* have:
/// an `Alu*` µop with pre-validated (non-pc) operands can neither fault
/// nor redirect control flow, so the execution loop runs it with no
/// per-µop exception, wfi or invalidation checks at all. Anything the
/// lowered forms don't cover — conditional µops, pc operands, system
/// and FP instructions — keeps its decode and executes through the
/// shared issue stage ([`Uop::Slow`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Uop {
    /// Dp with immediate op2 (shifter carry = C in). `rn == NO_REG`
    /// means the op ignores rn (`mov`/`mvn`) and `a = 0`.
    AluRI {
        op: DpOp,
        s: bool,
        rd: u8,
        rn: u8,
        imm: u32,
    },
    /// Dp with an unshifted register op2 (shifter carry = C in).
    AluRR {
        op: DpOp,
        s: bool,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    /// Dp with a shifted register op2 (shifter carry computed exactly as
    /// the reference operand path does).
    AluRRS {
        op: DpOp,
        s: bool,
        rd: u8,
        rn: u8,
        rm: u8,
        shift: Shift,
        amount: u8,
    },
    /// `MOVW`/`MOVT` with a pre-resolved destination.
    MovW { top: bool, rd: u8, imm: u16 },
    /// Single load; see the `MEM_*` flags for addressing.
    Ldr {
        size: MemSize,
        rd: u8,
        rn: u8,
        flags: u8,
        rm: u8,
        shl: u8,
        off: u32,
    },
    /// Single store.
    Str {
        size: MemSize,
        rd: u8,
        rn: u8,
        flags: u8,
        rm: u8,
        shl: u8,
        off: u32,
    },
    /// Direct branch with a precomputed target (always block-final).
    B { cond: Cond, link: bool, target: u32 },
    /// Everything else: executes through the shared issue stage.
    Slow(Insn),
}

/// Lowers one decoded instruction into a [`Uop`], given the privilege
/// mode the block is being built under and the instruction's address.
pub(crate) fn lower(insn: Insn, mode: Mode, pc: u32) -> Uop {
    // Pre-resolve a register to its flat word index; pc is not a
    // register-file operand, so any pc field defers to the slow path
    // (which raises Undefined exactly like the reference tier).
    let reg = |r: Reg| (r != Reg::Pc).then(|| RegFile::word_index(r, mode) as u8);
    let slow = Uop::Slow(insn);
    if insn.cond() != Cond::Al && !matches!(insn, Insn::Branch { .. }) {
        return slow;
    }
    match insn {
        Insn::Dp {
            op, s, rd, rn, op2, ..
        } => {
            let rd = if op.is_compare() {
                0
            } else {
                match reg(rd) {
                    Some(i) => i,
                    None => return slow,
                }
            };
            let rn = if op.ignores_rn() {
                NO_REG
            } else {
                match reg(rn) {
                    Some(i) => i,
                    None => return slow,
                }
            };
            match op2 {
                Operand2::Imm { .. } => Uop::AluRI {
                    op,
                    s,
                    rd,
                    rn,
                    imm: op2.imm_value().expect("imm op2"),
                },
                Operand2::Reg(sr) => {
                    let Some(rm) = reg(sr.rm) else { return slow };
                    if sr.amount == 0 {
                        Uop::AluRR { op, s, rd, rn, rm }
                    } else {
                        Uop::AluRRS {
                            op,
                            s,
                            rd,
                            rn,
                            rm,
                            shift: sr.shift,
                            amount: sr.amount,
                        }
                    }
                }
            }
        }
        Insn::MovW { top, rd, imm, .. } => match reg(rd) {
            Some(rd) => Uop::MovW { top, rd, imm },
            None => slow,
        },
        Insn::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            mode: am,
            ..
        } => {
            let (Some(rd), Some(rn)) = (reg(rd), reg(rn)) else {
                return slow;
            };
            let mut flags = 0u8;
            if !am.up {
                flags |= MEM_SUB;
            }
            if am.pre {
                flags |= MEM_PRE;
            }
            if am.writeback {
                flags |= MEM_WB;
            }
            let (rm, shl, off) = match offset {
                MemOffset::Imm(i) => {
                    flags |= MEM_IMM;
                    (0, 0, i as u32)
                }
                MemOffset::Reg { rm, shl } => match reg(rm) {
                    Some(rm) => (rm, shl, 0),
                    None => return slow,
                },
            };
            if load {
                Uop::Ldr {
                    size,
                    rd,
                    rn,
                    flags,
                    rm,
                    shl,
                    off,
                }
            } else {
                Uop::Str {
                    size,
                    rd,
                    rn,
                    flags,
                    rm,
                    shl,
                    off,
                }
            }
        }
        Insn::Branch {
            cond, link, offset, ..
        } => Uop::B {
            cond,
            link,
            target: pc.wrapping_add(4).wrapping_add((offset as u32) << 2),
        },
        _ => slow,
    }
}

/// One fused basic block: the lowered decode of a straight-line
/// instruction run.
#[derive(Clone, Debug)]
pub(crate) struct WarpBlock {
    /// Virtual address of the first instruction (the cache key).
    pub(crate) vaddr: u32,
    /// Physical page every word was fetched from (blocks never cross a
    /// page, so one frame covers the whole trace).
    pub(crate) ppn: u32,
    /// The pre-lowered µops, in program order.
    pub(crate) uops: Arc<[Uop]>,
}

/// Runtime state of the warp tier. Held as `Option<Box<WarpEngine>>` on
/// [`System`](crate::System), like the fast-path slot: never snapshotted,
/// absent by default.
#[derive(Clone, Debug)]
pub(crate) struct WarpEngine {
    blocks: Vec<Option<WarpBlock>>,
    mask: u32,
    pub(crate) max_block_len: u32,
    /// Physical pages holding at least one cached block — the SMC filter.
    /// The common store misses this set and costs one hash probe.
    pages: HashSet<u32>,
    /// Direct-mapped vpn → entry translation cache with TLB semantics
    /// (stale until an explicit flush, exactly like a hardware TLB that
    /// never evicts): O(1) probes replace the reference TLB's
    /// associative scan on every warp-tier access. Permission checks
    /// still happen per access, so a cached entry can never widen
    /// rights.
    tcache: Vec<Option<TlbEntry>>,
    /// Bumped on every invalidation; the block execution loop re-checks
    /// it after each µop so no trace survives its own demise.
    pub(crate) generation: u64,
    pub(crate) block_hits: u64,
    pub(crate) block_misses: u64,
    pub(crate) insns: u64,
    pub(crate) smc_invalidations: u64,
    pub(crate) flushes: u64,
}

impl WarpEngine {
    pub(crate) fn new(cfg: &WarpConfig) -> WarpEngine {
        assert!(cfg.validate(), "invalid warp configuration");
        WarpEngine {
            blocks: vec![None; cfg.block_entries as usize],
            mask: cfg.block_entries - 1,
            max_block_len: cfg.max_block_len,
            pages: HashSet::new(),
            tcache: vec![None; TCACHE_ENTRIES],
            generation: 0,
            block_hits: 0,
            block_misses: 0,
            insns: 0,
            smc_invalidations: 0,
            flushes: 0,
        }
    }

    fn slot(&self, vaddr: u32) -> usize {
        ((vaddr >> 2) & self.mask) as usize
    }

    /// The cached block starting at `vaddr`, if any. The `Arc` clone lets
    /// the caller execute the trace while the engine stays borrowable for
    /// invalidation bookkeeping.
    pub(crate) fn lookup(&mut self, vaddr: u32) -> Option<WarpBlock> {
        let slot = self.slot(vaddr);
        if let Some(b) = &self.blocks[slot] {
            if b.vaddr == vaddr {
                self.block_hits += 1;
                return Some(b.clone());
            }
        }
        self.block_misses += 1;
        None
    }

    pub(crate) fn insert(&mut self, block: WarpBlock) {
        let slot = self.slot(block.vaddr);
        self.pages.insert(block.ppn);
        self.blocks[slot] = Some(block);
    }

    /// The cached translation for `vpn`, if any.
    #[inline]
    pub(crate) fn translate_lookup(&self, vpn: u32) -> Option<TlbEntry> {
        let e = self.tcache[vpn as usize & (TCACHE_ENTRIES - 1)]?;
        (e.valid() && e.vpn() == vpn).then_some(e)
    }

    /// Caches a translation the reference path just resolved.
    #[inline]
    pub(crate) fn translate_insert(&mut self, entry: TlbEntry) {
        self.tcache[entry.vpn() as usize & (TCACHE_ENTRIES - 1)] = Some(entry);
    }

    /// SMC hygiene: a store into a physical page with cached blocks drops
    /// every block on that page and bumps the generation.
    pub(crate) fn note_write(&mut self, paddr: u32) {
        let ppn = paddr >> 12;
        if !self.pages.remove(&ppn) {
            return;
        }
        for b in &mut self.blocks {
            if matches!(b, Some(blk) if blk.ppn == ppn) {
                *b = None;
            }
        }
        self.smc_invalidations += 1;
        self.generation += 1;
    }

    /// Whole-cache flush: translation or mode changed, or a fault was
    /// injected — every cached decode and translation is suspect.
    pub(crate) fn flush(&mut self) {
        self.tcache.fill(None);
        if self.pages.is_empty() && self.blocks.iter().all(Option::is_none) {
            return;
        }
        self.pages.clear();
        for b in &mut self.blocks {
            *b = None;
        }
        self.flushes += 1;
        self.generation += 1;
    }

    pub(crate) fn stats(&self) -> WarpStats {
        WarpStats {
            block_hits: self.block_hits,
            block_misses: self.block_misses,
            insns: self.insns,
            smc_invalidations: self.smc_invalidations,
            flushes: self.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_isa::{decode, encode};

    fn nop_block(vaddr: u32, ppn: u32) -> WarpBlock {
        let nop = decode(encode(&Insn::Nop { cond: Cond::Al })).unwrap();
        let uop = lower(nop, Mode::Svc, vaddr);
        WarpBlock {
            vaddr,
            ppn,
            uops: Arc::from(vec![uop, uop]),
        }
    }

    #[test]
    fn lookup_is_keyed_by_start_address() {
        let mut e = WarpEngine::new(&WarpConfig {
            block_entries: 16,
            max_block_len: 8,
        });
        e.insert(nop_block(0x1000, 1));
        assert!(e.lookup(0x1000).is_some());
        // An aliasing start address (same slot, different vaddr) misses.
        assert!(e.lookup(0x1000 + 16 * 4).is_none());
        assert_eq!(e.stats().block_hits, 1);
        assert_eq!(e.stats().block_misses, 1);
    }

    #[test]
    fn a_store_into_a_cached_page_drops_only_that_page() {
        let mut e = WarpEngine::new(&WarpConfig {
            block_entries: 16,
            max_block_len: 8,
        });
        e.insert(nop_block(0x1000, 1));
        e.insert(nop_block(0x2000, 2));
        let gen = e.generation;
        // A store into an uncached page is a filter miss: no invalidation.
        e.note_write(0x7000);
        assert_eq!(e.generation, gen);
        // A store into page 1 drops its block, keeps page 2's.
        e.note_write(0x1ffc);
        assert!(e.generation > gen);
        assert_eq!(e.stats().smc_invalidations, 1);
        assert!(e.lookup(0x1000).is_none());
        assert!(e.lookup(0x2000).is_some());
    }

    #[test]
    fn flush_clears_everything_once() {
        let mut e = WarpEngine::new(&WarpConfig::default());
        e.insert(nop_block(0x1000, 1));
        e.flush();
        assert_eq!(e.stats().flushes, 1);
        assert!(e.lookup(0x1000).is_none());
        // Flushing an already-empty cache is free (no generation bump).
        let gen = e.generation;
        e.flush();
        assert_eq!(e.generation, gen);
        assert_eq!(e.stats().flushes, 1);
    }

    #[test]
    fn config_validation() {
        assert!(WarpConfig::default().validate());
        assert!(!WarpConfig {
            block_entries: 48,
            max_block_len: 8
        }
        .validate());
        assert!(!WarpConfig {
            block_entries: 16,
            max_block_len: 0
        }
        .validate());
    }
}

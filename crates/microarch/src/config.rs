//! Machine configuration.

use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.size_bytes / self.line_bytes
    }

    /// Validates that the geometry is internally consistent.
    pub fn validate(&self) -> bool {
        self.line_bytes.is_power_of_two()
            && self.ways > 0
            && self.size_bytes.is_multiple_of(self.ways * self.line_bytes)
            && self.sets().is_power_of_two()
    }
}

/// Fixed operation latencies of the timing model, in cycles.
///
/// Values approximate the Cortex-A9 pipeline as configured in the paper's
/// gem5 model; they matter for *relative* timing (which lines are resident
/// when a fault strikes), not for absolute IPC fidelity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Latencies {
    /// L1 hit latency (both I and D).
    pub l1_hit: u32,
    /// L2 hit latency.
    pub l2_hit: u32,
    /// DRAM access latency.
    pub mem: u32,
    /// 32-bit multiply.
    pub mul: u32,
    /// Integer divide.
    pub div: u32,
    /// FP add/sub/mul/convert/compare.
    pub fp: u32,
    /// FP divide.
    pub fdiv: u32,
    /// FP square root.
    pub fsqrt: u32,
    /// Branch mispredict penalty.
    pub branch_miss: u32,
    /// Page-table walk, per level, on top of the cache accesses it makes.
    pub walk_step: u32,
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies {
            l1_hit: 1,
            l2_hit: 8,
            mem: 60,
            mul: 3,
            div: 12,
            fp: 4,
            fdiv: 15,
            fsqrt: 17,
            branch_miss: 8,
            walk_step: 2,
        }
    }
}

/// Execution mode, mirroring gem5's CPU models (paper Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Functional execution: no cache arrays, one cycle per instruction.
    /// Fast, used for golden-run screening and the Table I throughput row.
    Atomic,
    /// Full microarchitectural state and timing: caches, TLBs, predictor.
    /// The only mode fault-injection campaigns run in.
    Detailed,
}

/// Full machine configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 cache geometry.
    pub l2: CacheConfig,
    /// Instruction TLB entries.
    pub itlb_entries: u32,
    /// Data TLB entries.
    pub dtlb_entries: u32,
    /// Physical memory size in bytes.
    pub mem_bytes: u32,
    /// Operation latencies.
    pub lat: Latencies,
    /// Execution mode.
    pub mode: ExecMode,
    /// Branch-predictor entries (bimodal, 2-bit), power of two.
    pub predictor_entries: u32,
}

impl MachineConfig {
    /// The paper's Cortex-A9 configuration (Table II): 32 KB 4-way L1
    /// caches, 512 KB 8-way L2, 64-entry TLBs (512 bytes each).
    pub fn cortex_a9() -> MachineConfig {
        MachineConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 32,
            },
            itlb_entries: 64,
            dtlb_entries: 64,
            mem_bytes: 64 * 1024 * 1024,
            lat: Latencies::default(),
            mode: ExecMode::Detailed,
            predictor_entries: 1024,
        }
    }

    /// A uniformly scaled-down configuration (¼ L1, ⅛ L2) matched to the
    /// scaled benchmark inputs, preserving the paper's footprint-to-capacity
    /// ratios (see DESIGN.md §1). Used by the default campaign profiles.
    pub fn cortex_a9_scaled() -> MachineConfig {
        MachineConfig {
            l1i: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l1d: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                line_bytes: 32,
            },
            l2: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 32,
            },
            itlb_entries: 64,
            dtlb_entries: 64,
            mem_bytes: 64 * 1024 * 1024,
            lat: Latencies::default(),
            mode: ExecMode::Detailed,
            predictor_entries: 1024,
        }
    }

    /// Switches to atomic (functional) execution.
    pub fn atomic(mut self) -> MachineConfig {
        self.mode = ExecMode::Atomic;
        self
    }

    /// Validates all cache geometries.
    pub fn validate(&self) -> bool {
        self.l1i.validate()
            && self.l1d.validate()
            && self.l2.validate()
            && self.predictor_entries.is_power_of_two()
            && self.itlb_entries > 0
            && self.dtlb_entries > 0
    }
}

impl Snapshot for CacheConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.size_bytes);
        w.u32(self.ways);
        w.u32(self.line_bytes);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<CacheConfig, SnapError> {
        Ok(CacheConfig {
            size_bytes: r.u32()?,
            ways: r.u32()?,
            line_bytes: r.u32()?,
        })
    }
}

impl Snapshot for Latencies {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.l1_hit,
            self.l2_hit,
            self.mem,
            self.mul,
            self.div,
            self.fp,
            self.fdiv,
            self.fsqrt,
            self.branch_miss,
            self.walk_step,
        ] {
            w.u32(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Latencies, SnapError> {
        Ok(Latencies {
            l1_hit: r.u32()?,
            l2_hit: r.u32()?,
            mem: r.u32()?,
            mul: r.u32()?,
            div: r.u32()?,
            fp: r.u32()?,
            fdiv: r.u32()?,
            fsqrt: r.u32()?,
            branch_miss: r.u32()?,
            walk_step: r.u32()?,
        })
    }
}

impl Snapshot for MachineConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"MCFG");
        self.l1i.save(w);
        self.l1d.save(w);
        self.l2.save(w);
        w.u32(self.itlb_entries);
        w.u32(self.dtlb_entries);
        w.u32(self.mem_bytes);
        self.lat.save(w);
        w.u8(match self.mode {
            ExecMode::Atomic => 0,
            ExecMode::Detailed => 1,
        });
        w.u32(self.predictor_entries);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<MachineConfig, SnapError> {
        r.tag(*b"MCFG")?;
        let cfg = MachineConfig {
            l1i: CacheConfig::load(r)?,
            l1d: CacheConfig::load(r)?,
            l2: CacheConfig::load(r)?,
            itlb_entries: r.u32()?,
            dtlb_entries: r.u32()?,
            mem_bytes: r.u32()?,
            lat: Latencies::load(r)?,
            mode: match r.u8()? {
                0 => ExecMode::Atomic,
                1 => ExecMode::Detailed,
                _ => return Err(SnapError::Malformed("unknown exec mode")),
            },
            predictor_entries: r.u32()?,
        };
        if !cfg.validate() {
            return Err(SnapError::Malformed("invalid machine configuration"));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_table2() {
        let c = MachineConfig::cortex_a9();
        assert!(c.validate());
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.ways, 4);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        // TLB: 64 entries × 64 bits = 512 bytes, the size quoted in §V-B.
        assert_eq!(c.itlb_entries * 8, 512);
    }

    #[test]
    fn scaled_config_preserves_l1_l2_ratio() {
        let p = MachineConfig::cortex_a9();
        let s = MachineConfig::cortex_a9_scaled();
        assert!(s.validate());
        assert_eq!(p.l2.size_bytes / p.l1d.size_bytes, 16);
        assert_eq!(s.l2.size_bytes / s.l1d.size_bytes, 8);
    }

    #[test]
    fn cache_geometry_math() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 4,
            line_bytes: 32,
        };
        assert_eq!(c.sets(), 256);
        assert_eq!(c.lines(), 1024);
    }
}

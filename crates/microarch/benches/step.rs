//! Criterion microbenchmarks of the per-step cost under the execution
//! fast path: a µop-cache decode hit, a forced µop-cache decode miss, and
//! a translation-latch-hit memory step, each against the reference slow
//! path on the identical machine and workload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sea_isa::{Asm, Cond, MemSize, Reg};
use sea_microarch::{
    l1_entry, pte, FastPathConfig, MachineConfig, NullDevice, StepOutcome, System, PTE_EXEC,
    PTE_WRITE,
};

/// A bare-metal machine with 4 MiB identity-mapped and the given program
/// installed at its entry point.
fn machine_with(build: impl FnOnce(&mut Asm)) -> System<NullDevice> {
    let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
    for mib in 0..4u32 {
        let l2 = 0x8000 + mib * 0x400;
        sys.mem
            .phys
            .write(0x4000 + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
            );
        }
    }
    sys.cpu.ttbr = 0x4000;
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    build(&mut a);
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

/// Tight ALU loop: every warm fetch is a µop-cache hit.
fn alu_loop(a: &mut Asm) {
    let lp = a.label("lp");
    a.mov32(Reg::R1, u32::MAX);
    a.bind(lp).unwrap();
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
}

/// A 256-instruction straight-line body looped forever: with a 16-entry
/// µop cache every slot cycles through 16 different word addresses, so
/// every fetch is a µop-cache conflict miss (full decode) while the
/// translation latch and L1I line latch still engage.
fn unrolled_loop(a: &mut Asm) {
    let lp = a.label("lp");
    a.mov32(Reg::R1, u32::MAX);
    a.bind(lp).unwrap();
    for _ in 0..256 {
        a.add(Reg::R0, Reg::R0, Reg::R1);
    }
    a.b(lp);
}

/// Load/store loop over one page: every step exercises the fetch latch
/// plus a data-side translation-latch and L1D line-latch hit.
fn mem_loop(a: &mut Asm) {
    let lp = a.label("lp");
    a.mov32(Reg::R1, u32::MAX);
    a.mov32(Reg::R3, 0x0030_0000);
    a.bind(lp).unwrap();
    a.and_imm(Reg::R2, Reg::R1, 0xFF0);
    a.ldr_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.str_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
}

fn steps(sys: &mut System<NullDevice>, n: u32) {
    for _ in 0..n {
        if sys.step() != StepOutcome::Executed {
            unreachable!("loop never terminates");
        }
    }
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("step");
    g.throughput(Throughput::Elements(10_000));

    type Case = (&'static str, fn(&mut Asm), Option<FastPathConfig>);
    let cases: [Case; 4] = [
        // µop + latch hits on every warm step.
        ("decode_hit", alu_loop, Some(FastPathConfig::default())),
        // µop conflict miss (full decode) on every step.
        (
            "decode_miss",
            unrolled_loop,
            Some(FastPathConfig { uop_entries: 16 }),
        ),
        // Data-side translation-latch + line-latch hits on every step.
        (
            "translation_latch_hit",
            mem_loop,
            Some(FastPathConfig::default()),
        ),
        // The reference path on the same memory workload, for scale.
        ("reference_slow_path", mem_loop, None),
    ];
    for (name, build, fast) in cases {
        let mut sys = machine_with(build);
        if let Some(cfg) = fast {
            sys.fastpath_enable(cfg);
        }
        // Warm caches, TLBs and the fast path out of the measurement.
        steps(&mut sys, 20_000);
        g.bench_function(name, |b| b.iter(|| steps(&mut sys, 10_000)));
    }
    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);

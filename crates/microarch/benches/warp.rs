//! Criterion microbenchmarks of the warp (functional) tier against
//! detailed stepping on the same workloads: the steady-state trace-cache
//! hit rate is what buys the campaign-prefix speedup, so each case warms
//! the machine out of the measurement and then times a fixed step budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sea_isa::{Asm, Cond, MemSize, Reg};
use sea_microarch::{
    l1_entry, pte, FastPathConfig, MachineConfig, NullDevice, StepOutcome, System, WarpConfig,
    PTE_EXEC, PTE_WRITE,
};

/// A bare-metal machine with 4 MiB identity-mapped and the given program
/// installed at its entry point.
fn machine_with(build: impl FnOnce(&mut Asm)) -> System<NullDevice> {
    let mut sys = System::new(MachineConfig::cortex_a9(), NullDevice);
    for mib in 0..4u32 {
        let l2 = 0x8000 + mib * 0x400;
        sys.mem
            .phys
            .write(0x4000 + mib * 4, MemSize::Word, l1_entry(l2));
        for page in 0..256u32 {
            sys.mem.phys.write(
                l2 + page * 4,
                MemSize::Word,
                pte((mib << 8) + page, PTE_WRITE | PTE_EXEC),
            );
        }
    }
    sys.cpu.ttbr = 0x4000;
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    build(&mut a);
    let img = a.finish(e).unwrap();
    for seg in img.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }
    sys.cpu.pc = img.entry();
    sys
}

/// Tight ALU loop: one short hot block.
fn alu_loop(a: &mut Asm) {
    let lp = a.label("lp");
    a.mov32(Reg::R1, u32::MAX);
    a.bind(lp).unwrap();
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
}

/// Load/store loop over one page: fused blocks with memory traffic.
fn mem_loop(a: &mut Asm) {
    let lp = a.label("lp");
    a.mov32(Reg::R1, u32::MAX);
    a.mov32(Reg::R3, 0x0030_0000);
    a.bind(lp).unwrap();
    a.and_imm(Reg::R2, Reg::R1, 0xFF0);
    a.ldr_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.add(Reg::R0, Reg::R0, Reg::R1);
    a.str_idx(Reg::R0, Reg::R3, Reg::R2, 0);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, lp);
}

fn steps(sys: &mut System<NullDevice>, n: u32) {
    for _ in 0..n {
        if sys.step() != StepOutcome::Executed {
            unreachable!("loop never terminates");
        }
    }
}

fn bench_warp(c: &mut Criterion) {
    let mut g = c.benchmark_group("warp");
    g.throughput(Throughput::Elements(10_000));

    type Tier = fn(&mut System<NullDevice>);
    let arm_warp: Tier = |sys| sys.warp_enable(WarpConfig::default());
    let arm_fast: Tier = |sys| sys.fastpath_enable(FastPathConfig::default());
    let arm_none: Tier = |_| {};
    type Case = (&'static str, fn(&mut Asm), Tier, bool);
    let cases: [Case; 6] = [
        // The trace-cache steady state on a short hot loop.
        ("alu_warp", alu_loop, arm_warp, true),
        // The same loop under the detailed fast path, for the tier ratio.
        ("alu_detailed_fastpath", alu_loop, arm_fast, false),
        ("alu_detailed", alu_loop, arm_none, false),
        // Memory-heavy traces: atomic accesses vs the modeled hierarchy.
        ("mem_warp", mem_loop, arm_warp, true),
        ("mem_detailed_fastpath", mem_loop, arm_fast, false),
        ("mem_detailed", mem_loop, arm_none, false),
    ];
    for (name, build, arm, warp) in cases {
        let mut sys = machine_with(build);
        arm(&mut sys);
        if warp {
            sys.run_warp(20_000);
            g.bench_function(name, |b| {
                b.iter(|| assert_eq!(sys.run_warp(10_000), StepOutcome::Executed))
            });
        } else {
            steps(&mut sys, 20_000);
            g.bench_function(name, |b| b.iter(|| steps(&mut sys, 10_000)));
        }
    }
    g.finish();
}

criterion_group!(benches, bench_warp);
criterion_main!(benches);

//! End-to-end Chrome-trace round trip: real `sea_trace::span` guards →
//! `MemorySink` capture → [`sea_profile::chrome_trace`] → validated back
//! through sea-trace's own `json::parse`.
//!
//! This is the in-tree equivalent of loading the file in
//! `chrome://tracing`: every event must be well-formed JSON with the
//! trace-event-format fields (`ph`, `ts`, `dur`, `pid`, `tid`), and the
//! stream must be laid out in non-decreasing timestamp order.

use sea_trace::json::{self, Json};
use sea_trace::{self as trace, Level, MemorySink, Subsystem};
use std::sync::Arc;

#[test]
fn spans_round_trip_through_chrome_trace_json() {
    let _guard = trace::test_lock();
    let mem = Arc::new(MemorySink::new());
    trace::install_sink(mem.clone());
    trace::set_level_all(Level::Info);

    for worker in 0..3u64 {
        let mut s = trace::span(Subsystem::Injection, Level::Info, "injection.worker").unwrap();
        s.field("worker", worker);
        s.field("runs", 10 + worker);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    {
        let mut s = trace::span(Subsystem::Platform, Level::Info, "platform.golden").unwrap();
        s.field("cycles", 123_456u64);
    }
    trace::event!(Subsystem::Injection, Level::Info, "injection.checkpoints";
                  "epochs" => 4u64);
    trace::flush_thread();
    trace::disable_all();
    trace::uninstall_sink();

    let doc = sea_profile::chrome_trace(&mem.take());
    let parsed = json::parse(&doc).expect("chrome trace must be valid JSON");
    let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents array missing:\n{doc}");
    };
    assert_eq!(events.len(), 5, "{doc}");

    let mut last_ts = 0u64;
    let mut slices = 0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        let ts = ev.get("ts").and_then(Json::as_u64).expect("ts field");
        assert!(ts >= last_ts, "timestamps must be non-decreasing:\n{doc}");
        last_ts = ts;
        assert!(ev.get("pid").and_then(Json::as_u64).is_some());
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        match ph {
            "X" => {
                slices += 1;
                assert!(ev.get("dur").and_then(Json::as_u64).is_some(), "{doc}");
            }
            "i" => assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"), "{doc}"),
            other => panic!("unexpected phase {other:?}:\n{doc}"),
        }
    }
    assert_eq!(slices, 4, "every span must become a complete slice:\n{doc}");

    // Worker spans land on their own tracks: tid comes from the `worker`
    // field the supervisor attaches.
    let tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("injection.worker"))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    assert_eq!(tids.len(), 3);
    assert!(tids.contains(&0) && tids.contains(&1) && tids.contains(&2));
}

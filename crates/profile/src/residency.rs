//! ACE-style residency/liveness tracking for one SRAM structure.
//!
//! Every slot (cache line, TLB entry, register word) cycles through
//! fill → reads → eviction intervals. A bit is *ACE* (Architecturally
//! Correct Execution, Mukherjee et al.) while corrupting it could change
//! the program's result: for payload bits that is fill → last read (or
//! fill → eviction when the victim is written back, since the write-back
//! consumes the bits); for tag/state bits it is the whole residency, since
//! a tag flip mis-homes the line for as long as it is valid. Dead bits
//! (e.g. the unimplemented TLB filler cells) are never ACE but still sit
//! in the denominator, because injection campaigns sample them uniformly.
//!
//! The predicted AVF of a structure is then
//!
//! ```text
//!        bits_ace · Σ ace_interval  +  bits_aux · Σ residency_interval
//! AVF = ────────────────────────────────────────────────────────────────
//!                  bits_per_slot · slots · total_cycles
//! ```
//!
//! a cheap analytical estimate to cross-check the injection-measured AVF.

/// Lifetime state of one slot.
#[derive(Clone, Copy, Debug, Default)]
struct SlotState {
    open: bool,
    fill: u64,
    last_use: u64,
}

/// Residency tracker for one structure (one slot per cache line / TLB
/// entry / register word).
#[derive(Clone, Debug)]
pub struct StructureResidency {
    name: &'static str,
    bits_ace: u64,
    bits_aux: u64,
    bits_dead: u64,
    slots: Vec<SlotState>,
    ace_cycles: u64,
    resident_cycles: u64,
    fills: u64,
    touches: u64,
    /// Largest cycle observed, for hooks that have no cycle at hand
    /// (e.g. cache clean-invalidate-all).
    now: u64,
}

impl StructureResidency {
    /// A tracker for `slots` slots. Per slot, `bits_ace` payload bits are
    /// ACE over fill→last-use, `bits_aux` tag/state bits over the whole
    /// residency, and `bits_dead` modeled-but-inert bits are never ACE.
    pub fn new(
        name: &'static str,
        slots: usize,
        bits_ace: u64,
        bits_aux: u64,
        bits_dead: u64,
    ) -> StructureResidency {
        StructureResidency {
            name,
            bits_ace,
            bits_aux,
            bits_dead,
            slots: vec![SlotState::default(); slots],
            ace_cycles: 0,
            resident_cycles: 0,
            fills: 0,
            touches: 0,
            now: 0,
        }
    }

    /// The structure's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn close(&mut self, slot: usize, end: u64, consumed_at_end: bool) {
        let s = self.slots[slot];
        if !s.open {
            return;
        }
        let ace_end = if consumed_at_end { end } else { s.last_use };
        self.ace_cycles += ace_end.saturating_sub(s.fill);
        self.resident_cycles += end.saturating_sub(s.fill);
        self.slots[slot].open = false;
    }

    /// A new value entered `slot` at `cycle`, displacing whatever lived
    /// there. `victim_writeback` means the displaced value's payload was
    /// read out on the way (dirty cache line written back), extending its
    /// ACE interval to the eviction itself.
    pub fn fill(&mut self, slot: usize, cycle: u64, victim_writeback: bool) {
        self.now = self.now.max(cycle);
        self.close(slot, cycle, victim_writeback);
        self.slots[slot] = SlotState {
            open: true,
            fill: cycle,
            last_use: cycle,
        };
        self.fills += 1;
    }

    /// The value in `slot` was read (or partially rewritten in place) at
    /// `cycle`. A touch on a slot the tracker never saw filled (resident
    /// before attach) opens its interval at `cycle`.
    pub fn touch(&mut self, slot: usize, cycle: u64) {
        self.now = self.now.max(cycle);
        let s = &mut self.slots[slot];
        if !s.open {
            *s = SlotState {
                open: true,
                fill: cycle,
                last_use: cycle,
            };
        } else {
            s.last_use = s.last_use.max(cycle);
        }
        self.touches += 1;
    }

    /// The whole structure was invalidated (TLB flush, cache
    /// clean-invalidate). Closes every open interval at the latest cycle
    /// seen, counting payload bits ACE only up to their last use — a
    /// conservative choice for caches, where the flush may write dirty
    /// lines back.
    pub fn flush_all(&mut self) {
        let end = self.now;
        for slot in 0..self.slots.len() {
            self.close(slot, end, false);
        }
    }

    /// Closes every interval still open at `end_cycle` and emits the
    /// report. Residency intervals end at `end_cycle`; payload ACE ends at
    /// the last observed use.
    pub fn finalize(mut self, end_cycle: u64) -> StructureReport {
        let end = self.now.max(end_cycle);
        for slot in 0..self.slots.len() {
            self.close(slot, end, false);
        }
        StructureReport {
            name: self.name.to_string(),
            slots: self.slots.len() as u64,
            bits_ace: self.bits_ace,
            bits_aux: self.bits_aux,
            bits_dead: self.bits_dead,
            ace_cycles: self.ace_cycles,
            resident_cycles: self.resident_cycles,
            fills: self.fills,
            touches: self.touches,
            total_cycles: end,
        }
    }
}

/// Final residency/ACE numbers for one structure over one run.
#[derive(Clone, Debug, PartialEq)]
pub struct StructureReport {
    /// Structure short name (matches `Component::short_name`).
    pub name: String,
    /// Tracked slots (cache lines / TLB entries / register words).
    pub slots: u64,
    /// Payload bits per slot (ACE over fill→last-use).
    pub bits_ace: u64,
    /// Tag/state bits per slot (ACE over the whole residency).
    pub bits_aux: u64,
    /// Modeled-but-inert bits per slot (never ACE, still injected into).
    pub bits_dead: u64,
    /// Σ per-slot ACE interval cycles.
    pub ace_cycles: u64,
    /// Σ per-slot residency interval cycles.
    pub resident_cycles: u64,
    /// Intervals opened by fills/defs.
    pub fills: u64,
    /// Reads/uses observed.
    pub touches: u64,
    /// Cycles the profiled run covered.
    pub total_cycles: u64,
}

impl StructureReport {
    /// Bits per slot, payload + tag/state + dead.
    pub fn bits_per_slot(&self) -> u64 {
        self.bits_ace + self.bits_aux + self.bits_dead
    }

    /// Mean fraction of slots holding live data.
    pub fn occupancy(&self) -> f64 {
        let denom = self.slots * self.total_cycles;
        if denom == 0 {
            0.0
        } else {
            self.resident_cycles as f64 / denom as f64
        }
    }

    /// The ACE-style predicted AVF: fraction of (bit, cycle) pairs whose
    /// corruption would have reached architectural state.
    pub fn predicted_avf(&self) -> f64 {
        let denom = self.bits_per_slot() * self.slots * self.total_cycles;
        if denom == 0 {
            return 0.0;
        }
        let ace = self.bits_ace as u128 * self.ace_cycles as u128
            + self.bits_aux as u128 * self.resident_cycles as u128;
        ace as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_interval_ace_ends_at_last_read() {
        // 1 slot, 8 payload bits, 2 aux bits: fill at 10, read at 40,
        // evicted clean at 100, run ends at 200.
        let mut t = StructureResidency::new("X", 1, 8, 2, 0);
        t.fill(0, 10, false);
        t.touch(0, 40);
        t.fill(0, 100, false); // displaces the first interval
        let r = t.finalize(200);
        // First interval: ace 40-10=30, resident 100-10=90.
        // Second interval: ace 100-100=0 (never read), resident 200-100=100.
        assert_eq!(r.ace_cycles, 30);
        assert_eq!(r.resident_cycles, 190);
        assert_eq!(r.fills, 2);
        assert_eq!(r.touches, 1);
        let expect = (8.0 * 30.0 + 2.0 * 190.0) / (10.0 * 1.0 * 200.0);
        assert!(
            (r.predicted_avf() - expect).abs() < 1e-12,
            "{}",
            r.predicted_avf()
        );
    }

    #[test]
    fn writeback_extends_ace_to_eviction() {
        let mut t = StructureResidency::new("X", 1, 8, 0, 0);
        t.fill(0, 0, false);
        t.touch(0, 10);
        t.fill(0, 50, true); // victim written back: ACE to 50, not 10
        let r = t.finalize(50);
        assert_eq!(r.ace_cycles, 50);
    }

    #[test]
    fn touch_before_fill_opens_interval() {
        // Slot resident before the profiler attached.
        let mut t = StructureResidency::new("X", 2, 4, 0, 0);
        t.touch(1, 30);
        t.touch(1, 60);
        let r = t.finalize(100);
        assert_eq!(r.ace_cycles, 30); // 60 - 30
        assert_eq!(r.resident_cycles, 70); // 100 - 30
    }

    #[test]
    fn flush_closes_at_latest_seen_cycle() {
        let mut t = StructureResidency::new("X", 1, 4, 4, 0);
        t.fill(0, 0, false);
        t.touch(0, 20);
        t.flush_all();
        let r = t.finalize(1000);
        assert_eq!(r.ace_cycles, 20);
        assert_eq!(r.resident_cycles, 20, "residency ends at the flush");
    }

    #[test]
    fn dead_bits_dilute_predicted_avf() {
        let mut a = StructureResidency::new("A", 1, 10, 0, 0);
        let mut b = StructureResidency::new("B", 1, 10, 0, 10);
        for t in [&mut a, &mut b] {
            t.fill(0, 0, false);
            t.touch(0, 100);
        }
        let (ra, rb) = (a.finalize(100), b.finalize(100));
        assert!((ra.predicted_avf() - 2.0 * rb.predicted_avf()).abs() < 1e-12);
    }

    #[test]
    fn empty_structure_reports_zero() {
        let t = StructureResidency::new("X", 8, 32, 0, 0);
        let r = t.finalize(1_000_000);
        assert_eq!(r.predicted_avf(), 0.0);
        assert_eq!(r.occupancy(), 0.0);
    }
}

//! Prometheus text-exposition snapshot writer.
//!
//! Campaigns have no HTTP endpoint to scrape, so instead of serving
//! metrics we periodically rewrite a small text file in [Prometheus
//! exposition format]. Pointing a `node_exporter` textfile collector (or
//! just `watch cat`) at it gives live campaign dashboards without adding
//! a server or a dependency. Histograms are emitted as cumulative
//! `_bucket{le="..."}` series derived from sea-trace's log2 buckets.
//!
//! [Prometheus exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use sea_trace::metrics::{bucket_hi, HistSnapshot, BUCKETS};
use sea_trace::{event, Level, Subsystem};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() && !(i == 0 && c.is_ascii_digit()) || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a `{k="v",...}` label set in exposition syntax. Label *names*
/// are sanitized like metric names; label *values* get backslash, quote
/// and newline escaped as the format requires. An empty pair list renders
/// as an empty string, so `name{}` never appears.
pub fn labels(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize(k));
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Incremental builder for one Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Append a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// Append a gauge (a value that can go up and down).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} gauge");
        if value.is_finite() {
            let _ = writeln!(self.out, "{name} {value}");
        } else {
            let _ = writeln!(self.out, "{name} NaN");
        }
    }

    /// Append one counter family with several labeled series. Each entry is
    /// `(label-set, value)` where the label set comes from [`labels`]. One
    /// `HELP`/`TYPE` header is written for the family, then one sample line
    /// per series — the shape fleet `/metrics` uses for per-worker series.
    pub fn counter_vec(&mut self, name: &str, help: &str, series: &[(String, u64)]) {
        if series.is_empty() {
            return;
        }
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} counter");
        for (lbl, value) in series {
            let _ = writeln!(self.out, "{name}{lbl} {value}");
        }
    }

    /// Append one gauge family with several labeled series; see
    /// [`PromWriter::counter_vec`].
    pub fn gauge_vec(&mut self, name: &str, help: &str, series: &[(String, f64)]) {
        if series.is_empty() {
            return;
        }
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} gauge");
        for (lbl, value) in series {
            if value.is_finite() {
                let _ = writeln!(self.out, "{name}{lbl} {value}");
            } else {
                let _ = writeln!(self.out, "{name}{lbl} NaN");
            }
        }
    }

    /// Append a histogram as cumulative `_bucket` series (upper bounds from
    /// the snapshot's log2 buckets), plus `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistSnapshot) {
        let name = sanitize(name);
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if i + 1 == BUCKETS {
                // Folded into the mandatory +Inf bucket below.
                continue;
            }
            let le = bucket_hi(i);
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(self.out, "{name}_sum {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count {}", snap.count);
    }

    /// The document built so far.
    pub fn finish(self) -> String {
        self.out
    }
}

struct PromTarget {
    path: PathBuf,
    last_write: Option<Instant>,
    /// A failed write has already been surfaced via a trace event; report
    /// once per target, not once per throttled retry.
    error_reported: bool,
}

static PROM_ON: AtomicBool = AtomicBool::new(false);
static PROM_TARGET: Mutex<Option<PromTarget>> = Mutex::new(None);

/// Minimum seconds between periodic (non-forced) snapshot rewrites.
const FLUSH_INTERVAL_SECS: f32 = 1.0;

/// Route periodic Prometheus snapshots to `path` (`None` disables them).
pub fn set_prom_out(path: Option<&Path>) {
    let mut target = PROM_TARGET.lock().unwrap();
    *target = path.map(|p| PromTarget {
        path: p.to_path_buf(),
        last_write: None,
        error_reported: false,
    });
    PROM_ON.store(target.is_some(), Ordering::Relaxed);
}

/// Is a Prometheus snapshot target configured? One `Relaxed` atomic load,
/// so callers can skip assembling the document entirely.
#[inline]
pub fn prom_enabled() -> bool {
    PROM_ON.load(Ordering::Relaxed)
}

/// Rewrite the configured snapshot file with the document `render`
/// produces. Rate-limited to roughly one write per second unless `force`
/// is set (set it for the final flush at campaign end). `render` only runs
/// when a write will actually happen. Returns whether a write happened.
pub fn prom_flush(force: bool, render: impl FnOnce() -> String) -> bool {
    if !prom_enabled() {
        return false;
    }
    let mut guard = PROM_TARGET.lock().unwrap();
    let Some(target) = guard.as_mut() else {
        return false;
    };
    if !force {
        if let Some(last) = target.last_write {
            if last.elapsed().as_secs_f32() < FLUSH_INTERVAL_SECS {
                return false;
            }
        }
    }
    let doc = render();
    // Write-then-rename so scrapers never see a half-written file.
    let tmp = target.path.with_extension("prom.tmp");
    let ok = std::fs::write(&tmp, doc).is_ok() && std::fs::rename(&tmp, &target.path).is_ok();
    if ok {
        target.last_write = Some(Instant::now());
    } else {
        // Don't leave a stale .tmp behind a failed rename, and surface the
        // fault once instead of silently dropping every snapshot.
        let _ = std::fs::remove_file(&tmp);
        if !target.error_reported {
            target.error_reported = true;
            event!(Subsystem::Harness, Level::Warn, "profile.prom_write_failed";
                   "path" => target.path.display().to_string());
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_format() {
        let mut w = PromWriter::new();
        w.counter("sea_runs_total", "Completed runs.", 42);
        w.gauge("sea runs-per-sec", "Throughput.", 3.5);
        let doc = w.finish();
        assert!(doc.contains("# TYPE sea_runs_total counter\nsea_runs_total 42\n"));
        assert!(doc.contains("# TYPE sea_runs_per_sec gauge\nsea_runs_per_sec 3.5\n"));
    }

    #[test]
    fn labeled_series_share_one_header() {
        let lbl = labels(&[("study", "abc123"), ("worker", "w2")]);
        assert_eq!(lbl, "{study=\"abc123\",worker=\"w2\"}");
        assert_eq!(labels(&[]), "");
        // Values get escaped; names get sanitized.
        assert_eq!(labels(&[("a-b", "x\"y\\z\n")]), "{a_b=\"x\\\"y\\\\z\\n\"}");

        let mut w = PromWriter::new();
        w.counter_vec(
            "sea_fleet_worker_runs",
            "Runs per worker.",
            &[
                (labels(&[("worker", "0")]), 10),
                (labels(&[("worker", "1")]), 12),
            ],
        );
        w.gauge_vec(
            "sea_fleet_worker_rate",
            "Runs/sec per worker.",
            &[(labels(&[("worker", "0")]), 3.5)],
        );
        let doc = w.finish();
        assert_eq!(
            doc.matches("# TYPE sea_fleet_worker_runs counter").count(),
            1
        );
        assert!(doc.contains("sea_fleet_worker_runs{worker=\"0\"} 10\n"));
        assert!(doc.contains("sea_fleet_worker_runs{worker=\"1\"} 12\n"));
        assert!(doc.contains("sea_fleet_worker_rate{worker=\"0\"} 3.5\n"));

        // Empty families emit nothing, not a dangling header.
        let mut w = PromWriter::new();
        w.counter_vec("sea_empty", "Nothing.", &[]);
        w.gauge_vec("sea_empty_g", "Nothing.", &[]);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut snap = HistSnapshot::empty("lat");
        for v in [1, 2, 3, 100, 100_000] {
            snap.record(v);
        }
        let mut w = PromWriter::new();
        w.histogram("sea_latency_us", "Latency.", &snap);
        let doc = w.finish();
        assert!(doc.contains("# TYPE sea_latency_us histogram"));
        assert!(doc.contains("sea_latency_us_bucket{le=\"+Inf\"} 5"));
        assert!(doc.contains("sea_latency_us_sum 100106"));
        assert!(doc.contains("sea_latency_us_count 5"));
        // Cumulative counts never decrease down the bucket list.
        let mut prev = 0u64;
        for line in doc
            .lines()
            .filter(|l| l.starts_with("sea_latency_us_bucket"))
        {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "{doc}");
            prev = n;
        }
    }

    #[test]
    fn flush_respects_target_and_throttle() {
        let dir = std::env::temp_dir().join(format!("sea-prom-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.prom");

        set_prom_out(None);
        assert!(!prom_enabled());
        assert!(!prom_flush(true, || "x".to_string()), "no target, no write");

        set_prom_out(Some(&path));
        assert!(prom_enabled());
        assert!(prom_flush(false, || "# TYPE a counter\na 1\n".to_string()));
        assert!(
            !prom_flush(false, || unreachable!("throttled: render must not run")),
            "second write inside the interval is throttled"
        );
        assert!(prom_flush(true, || "# TYPE a counter\na 2\n".to_string()));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("a 2"));

        set_prom_out(None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_flush_cleans_up_its_tmp_file() {
        let dir = std::env::temp_dir().join(format!("sea-prom-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Make the rename target an existing directory: the tmp write
        // succeeds but the rename cannot.
        let path = dir.join("blocked.prom");
        std::fs::create_dir_all(&path).unwrap();

        set_prom_out(Some(&path));
        assert!(!prom_flush(true, || "a 1\n".to_string()));
        let tmp = path.with_extension("prom.tmp");
        assert!(!tmp.exists(), "stale tmp file left behind a failed rename");
        // Still throttles/retries normally afterwards (no poisoned state).
        assert!(!prom_flush(true, || "a 2\n".to_string()));

        set_prom_out(None);
        std::fs::remove_dir_all(&dir).ok();
    }
}

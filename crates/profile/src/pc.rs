//! Flat per-guest-PC cycle attribution.
//!
//! A sampling hook in `System::step` calls [`PcSampler::step`] with the PC
//! of the instruction that just executed and the machine's cumulative
//! counters. Every `period` steps the sampler attributes the counter
//! deltas since the previous sample to the current PC — classic sampled
//! attribution, deterministic because it is step-driven, not timer-driven.

use std::collections::HashMap;

/// The counter fields the sampler attributes. A plain mirror of the
/// simulator's performance counters (sea-profile cannot see
/// `sea_microarch::Counters` without a dependency cycle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleCounters {
    /// CPU cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// L1 data-cache misses.
    pub l1d_miss: u64,
    /// L1 instruction-cache misses.
    pub l1i_miss: u64,
    /// L2 misses.
    pub l2_miss: u64,
    /// Data-TLB misses.
    pub dtlb_miss: u64,
    /// Instruction-TLB misses.
    pub itlb_miss: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
}

impl SampleCounters {
    fn delta(&self, earlier: &SampleCounters) -> SampleCounters {
        SampleCounters {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            instructions: self.instructions.saturating_sub(earlier.instructions),
            l1d_miss: self.l1d_miss.saturating_sub(earlier.l1d_miss),
            l1i_miss: self.l1i_miss.saturating_sub(earlier.l1i_miss),
            l2_miss: self.l2_miss.saturating_sub(earlier.l2_miss),
            dtlb_miss: self.dtlb_miss.saturating_sub(earlier.dtlb_miss),
            itlb_miss: self.itlb_miss.saturating_sub(earlier.itlb_miss),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
        }
    }

    fn add(&mut self, d: &SampleCounters) {
        self.cycles += d.cycles;
        self.instructions += d.instructions;
        self.l1d_miss += d.l1d_miss;
        self.l1i_miss += d.l1i_miss;
        self.l2_miss += d.l2_miss;
        self.dtlb_miss += d.dtlb_miss;
        self.itlb_miss += d.itlb_miss;
        self.branch_misses += d.branch_misses;
    }
}

/// Accumulated attribution for one PC.
#[derive(Clone, Copy, Debug, Default)]
pub struct PcStats {
    /// Attributed counter deltas.
    pub counters: SampleCounters,
    /// Samples that landed on this PC.
    pub samples: u64,
}

impl PcStats {
    /// The dominant stall reason among the attributed miss counters, or
    /// `"busy"` when no miss dominates — an indicative label, not a
    /// pipeline model.
    pub fn stall_bucket(&self) -> &'static str {
        let c = &self.counters;
        let buckets = [
            ("l2", c.l2_miss),
            ("l1d", c.l1d_miss),
            ("l1i", c.l1i_miss),
            ("tlb", c.dtlb_miss + c.itlb_miss),
            ("branch", c.branch_misses),
        ];
        let (name, n) = buckets
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .unwrap_or(("busy", 0));
        if n == 0 {
            "busy"
        } else {
            name
        }
    }
}

/// The per-PC sampler attached to a profiled machine.
#[derive(Clone, Debug)]
pub struct PcSampler {
    period: u32,
    countdown: u32,
    last: SampleCounters,
    map: HashMap<u32, PcStats>,
}

impl PcSampler {
    /// A sampler attributing counter deltas every `period` steps
    /// (`period == 1` attributes exactly; 0 is clamped to 1).
    pub fn new(period: u32) -> PcSampler {
        let period = period.max(1);
        PcSampler {
            period,
            countdown: period,
            last: SampleCounters::default(),
            map: HashMap::new(),
        }
    }

    /// Per-step hook: `pc` is the guest PC of the instruction that just
    /// executed, `now` the cumulative counters after it.
    #[inline]
    pub fn step(&mut self, pc: u32, now: SampleCounters) {
        self.countdown -= 1;
        if self.countdown > 0 {
            return;
        }
        self.countdown = self.period;
        let d = now.delta(&self.last);
        self.last = now;
        let e = self.map.entry(pc).or_default();
        e.counters.add(&d);
        e.samples += 1;
    }

    /// Fold the sampler into a profile, sorted by attributed cycles
    /// descending (ties broken by PC for determinism).
    pub fn finish(self) -> PcProfile {
        let mut total = SampleCounters::default();
        let mut entries: Vec<(u32, PcStats)> = self.map.into_iter().collect();
        for (_, s) in &entries {
            total.add(&s.counters);
        }
        entries.sort_by_key(|&(pc, s)| (std::cmp::Reverse(s.counters.cycles), pc));
        PcProfile { entries, total }
    }
}

/// The finished flat profile.
#[derive(Clone, Debug, Default)]
pub struct PcProfile {
    /// `(pc, stats)` pairs, hottest first.
    pub entries: Vec<(u32, PcStats)>,
    /// Sum over all entries.
    pub total: SampleCounters,
}

impl PcProfile {
    /// The `n` hottest PCs.
    pub fn top(&self, n: usize) -> &[(u32, PcStats)] {
        &self.entries[..n.min(self.entries.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(cycles: u64, l1d: u64) -> SampleCounters {
        SampleCounters {
            cycles,
            instructions: cycles / 2,
            l1d_miss: l1d,
            ..SampleCounters::default()
        }
    }

    #[test]
    fn period_one_attributes_every_step() {
        let mut s = PcSampler::new(1);
        s.step(0x100, at(10, 0));
        s.step(0x104, at(15, 1));
        s.step(0x100, at(40, 1));
        let p = s.finish();
        assert_eq!(p.total.cycles, 40);
        assert_eq!(p.entries[0].0, 0x100, "hottest PC first");
        assert_eq!(p.entries[0].1.counters.cycles, 35);
        assert_eq!(p.entries[1].1.counters.l1d_miss, 1);
    }

    #[test]
    fn sampling_period_coarsens_but_conserves() {
        let mut s = PcSampler::new(4);
        for i in 1..=16u64 {
            s.step(0x200 + (i as u32 % 2) * 4, at(i * 10, 0));
        }
        let p = s.finish();
        // 4 samples landed (steps 4, 8, 12, 16), total delta = 160 cycles.
        assert_eq!(p.total.cycles, 160);
        assert_eq!(p.entries.iter().map(|(_, s)| s.samples).sum::<u64>(), 4);
    }

    #[test]
    fn stall_bucket_picks_dominant_miss() {
        let mut st = PcStats::default();
        assert_eq!(st.stall_bucket(), "busy");
        st.counters.l1d_miss = 3;
        st.counters.l2_miss = 7;
        assert_eq!(st.stall_bucket(), "l2");
        st.counters.dtlb_miss = 10;
        assert_eq!(st.stall_bucket(), "tlb");
    }

    #[test]
    fn hottest_sort_is_deterministic_on_ties() {
        let mut s = PcSampler::new(1);
        s.step(0x300, at(10, 0));
        s.step(0x200, at(20, 0)); // both PCs attributed 10 cycles
        let p = s.finish();
        assert_eq!(p.entries[0].0, 0x200, "ties break by PC ascending");
        assert_eq!(p.top(1).len(), 1);
        assert_eq!(p.top(99).len(), 2);
    }
}

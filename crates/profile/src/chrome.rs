//! Chrome trace-event JSON export.
//!
//! Converts captured sea-trace events into the [trace-event format] that
//! `chrome://tracing` and Perfetto load: spans (events carrying the
//! `ts_us`/`dur_us` fields sea-trace attaches on span close) become
//! complete (`"ph":"X"`) slices, everything else becomes an instant
//! (`"ph":"i"`). Worker timelines fall out naturally: an event's `worker`
//! field is used as the `tid`, so each campaign worker gets its own track.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use sea_trace::json::write_escaped;
use sea_trace::{Event, Value};
use std::fmt::Write as _;

fn field_u64(ev: &Event, key: &str) -> Option<u64> {
    match ev.get(key) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn write_args(ev: &Event, skip: &[&str], out: &mut String) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(cycle) = ev.cycle {
        let _ = write!(out, "\"cycle\":{cycle}");
        first = false;
    }
    for (k, v) in &ev.fields {
        if skip.contains(k) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        write_escaped(k, out);
        out.push(':');
        match v {
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => write_escaped(s, out),
            Value::Text(s) => write_escaped(s, out),
        }
    }
    out.push('}');
}

/// Serialize captured events as one Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`). Events carrying `ts_us` + `dur_us` become
/// `"X"` slices at their recorded timestamps; other events become `"i"`
/// instants pinned to the latest timestamp seen so far, keeping the
/// stream's timestamps monotonic.
pub fn chrome_trace(events: &[Event]) -> String {
    // Slices first sorted by start: Perfetto accepts any order, but a
    // monotonic stream is easier to validate and diff.
    let mut indexed: Vec<(u64, usize)> = Vec::with_capacity(events.len());
    let mut cursor = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let key = match field_u64(ev, "ts_us") {
            Some(ts) => {
                cursor = cursor.max(ts);
                ts
            }
            // Timestamp-free events ride at the latest timestamp seen so
            // far in capture order.
            None => cursor,
        };
        indexed.push((key, i));
    }
    indexed.sort_by_key(|&(ts, i)| (ts, i));

    let mut out = String::with_capacity(events.len() * 128 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (ts, i) in indexed {
        let ev = &events[i];
        if !first {
            out.push(',');
        }
        first = false;
        let tid = field_u64(ev, "worker").unwrap_or(0);
        out.push_str("{\"name\":");
        write_escaped(ev.name, &mut out);
        out.push_str(",\"cat\":");
        write_escaped(ev.sub.name(), &mut out);
        match (field_u64(ev, "ts_us"), field_u64(ev, "dur_us")) {
            (Some(start), Some(dur)) => {
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{tid}");
                write_args(ev, &["ts_us", "dur_us", "worker"], &mut out);
            }
            _ => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{tid}");
                write_args(ev, &["worker"], &mut out);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_trace::json::{self, Json};
    use sea_trace::{Level, Subsystem};

    fn span_ev(name: &'static str, ts: u64, dur: u64, worker: u64) -> Event {
        Event::new(Subsystem::Injection, Level::Info, name)
            .field("dur_us", dur)
            .field("ts_us", ts)
            .field("worker", worker)
            .field("runs", 12u64)
    }

    #[test]
    fn spans_become_complete_slices() {
        let events = [
            span_ev("injection.worker", 100, 50, 3),
            Event::new(Subsystem::Microarch, Level::Info, "injection.flip").at_cycle(77),
        ];
        let doc = chrome_trace(&events);
        let j = json::parse(&doc).expect("valid JSON");
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!("traceEvents array missing: {doc}");
        };
        assert_eq!(items.len(), 2);
        let slice = items
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(
            slice.get("name").unwrap().as_str(),
            Some("injection.worker")
        );
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(50));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(3));
        let args = slice.get("args").expect("args");
        assert_eq!(args.get("runs").unwrap().as_u64(), Some(12));
        assert!(args.get("ts_us").is_none(), "ts_us folded into ts");
        let inst = items
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("one instant");
        assert_eq!(
            inst.get("args").unwrap().get("cycle").unwrap().as_u64(),
            Some(77)
        );
    }

    #[test]
    fn timestamps_are_monotonic() {
        let events = [
            span_ev("b", 500, 10, 0),
            Event::new(Subsystem::Harness, Level::Info, "plain"),
            span_ev("a", 100, 10, 0),
        ];
        let doc = chrome_trace(&events);
        let j = json::parse(&doc).unwrap();
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!()
        };
        let ts: Vec<u64> = items
            .iter()
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn empty_capture_is_valid() {
        let doc = chrome_trace(&[]);
        assert!(json::parse(&doc).is_ok(), "{doc}");
    }
}

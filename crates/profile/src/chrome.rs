//! Chrome trace-event JSON export.
//!
//! Converts captured sea-trace events into the [trace-event format] that
//! `chrome://tracing` and Perfetto load: spans (events carrying the
//! `ts_us`/`dur_us` fields sea-trace attaches on span close) become
//! complete (`"ph":"X"`) slices, everything else becomes an instant
//! (`"ph":"i"`). Worker timelines fall out naturally: an event's `worker`
//! field is used as the `tid`, so each campaign worker gets its own track.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use sea_trace::json::{self, write_escaped, Json};
use sea_trace::{Event, Value};
use std::fmt::Write as _;

fn field_u64(ev: &Event, key: &str) -> Option<u64> {
    match ev.get(key) {
        Some(Value::U64(n)) => Some(*n),
        Some(Value::I64(n)) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn write_args(ev: &Event, skip: &[&str], out: &mut String) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Some(cycle) = ev.cycle {
        let _ = write!(out, "\"cycle\":{cycle}");
        first = false;
    }
    for (k, v) in &ev.fields {
        if skip.contains(k) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        write_escaped(k, out);
        out.push(':');
        match v {
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Value::F64(_) => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => write_escaped(s, out),
            Value::Text(s) => write_escaped(s, out),
        }
    }
    out.push('}');
}

/// Serialize captured events as one Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`). Events carrying `ts_us` + `dur_us` become
/// `"X"` slices at their recorded timestamps; other events become `"i"`
/// instants pinned to the latest timestamp seen so far, keeping the
/// stream's timestamps monotonic.
pub fn chrome_trace(events: &[Event]) -> String {
    // Slices first sorted by start: Perfetto accepts any order, but a
    // monotonic stream is easier to validate and diff.
    let mut indexed: Vec<(u64, usize)> = Vec::with_capacity(events.len());
    let mut cursor = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let key = match field_u64(ev, "ts_us") {
            Some(ts) => {
                cursor = cursor.max(ts);
                ts
            }
            // Timestamp-free events ride at the latest timestamp seen so
            // far in capture order.
            None => cursor,
        };
        indexed.push((key, i));
    }
    indexed.sort_by_key(|&(ts, i)| (ts, i));

    let mut out = String::with_capacity(events.len() * 128 + 32);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (ts, i) in indexed {
        let ev = &events[i];
        if !first {
            out.push(',');
        }
        first = false;
        let tid = field_u64(ev, "worker").unwrap_or(0);
        out.push_str("{\"name\":");
        write_escaped(ev.name, &mut out);
        out.push_str(",\"cat\":");
        write_escaped(ev.sub.name(), &mut out);
        match (field_u64(ev, "ts_us"), field_u64(ev, "dur_us")) {
            (Some(start), Some(dur)) => {
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{start},\"dur\":{dur}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{tid}");
                write_args(ev, &["ts_us", "dur_us", "worker"], &mut out);
            }
            _ => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{tid}");
                write_args(ev, &["worker"], &mut out);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// One worker's timeline inside a stitched multi-process trace.
///
/// The fleet daemon builds one track per worker from the JSONL event lines
/// workers push in `Telemetry` frames; [`stitch_chrome_trace`] lays them
/// out as separate `tid` tracks of one document.
pub struct ChromeTrack {
    /// Chrome `tid` for this track (the fleet uses the shard index).
    pub tid: u64,
    /// Track label, rendered via `thread_name` metadata (e.g. `worker 2`).
    pub name: String,
    /// Microseconds added to each event's `ts_us`, mapping the worker's
    /// process-local span clock onto the stitching process's timeline
    /// (daemon `clock_us` at frame receipt minus the worker's `clock_us`).
    pub shift_us: i64,
    /// Parsed JSONL event lines (the shape `sea_trace::json::write_event`
    /// produces: `ev`/`sub`/`level` plus payload fields).
    pub events: Vec<Json>,
}

fn shift_ts(ts: u64, by: i64) -> u64 {
    if by >= 0 {
        ts.saturating_add(by as u64)
    } else {
        ts.saturating_sub(by.unsigned_abs())
    }
}

fn write_json_args(ev: &Json, skip: &[&str], out: &mut String) {
    out.push_str(",\"args\":{");
    let mut first = true;
    if let Json::Obj(members) = ev {
        for (k, v) in members {
            if skip.contains(&k.as_str()) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write_escaped(k, out);
            out.push(':');
            out.push_str(&json::render(v));
        }
    }
    out.push('}');
}

/// Serialize several per-worker timelines as one Chrome trace-event JSON
/// document. Each track first gets a `thread_name` metadata record, then
/// its events — `ts_us` + `dur_us` lines become `"X"` slices on the
/// track's `tid`, everything else instants — with timestamps shifted by
/// the track's clock offset and merged into one monotonic stream.
pub fn stitch_chrome_trace(tracks: &[ChromeTrack]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for t in tracks {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":",
            t.tid
        );
        write_escaped(&t.name, &mut out);
        out.push_str("}}");
    }

    let mut indexed: Vec<(u64, usize, usize)> = Vec::new();
    for (ti, t) in tracks.iter().enumerate() {
        let mut cursor = 0u64;
        for (ei, ev) in t.events.iter().enumerate() {
            let ts = match ev.get("ts_us").and_then(Json::as_u64) {
                Some(ts) => {
                    let shifted = shift_ts(ts, t.shift_us);
                    cursor = cursor.max(shifted);
                    shifted
                }
                None => cursor,
            };
            indexed.push((ts, ti, ei));
        }
    }
    indexed.sort_by_key(|&(ts, ti, ei)| (ts, ti, ei));

    for (ts, ti, ei) in indexed {
        let track = &tracks[ti];
        let ev = &track.events[ei];
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        write_escaped(
            ev.get("ev").and_then(Json::as_str).unwrap_or("event"),
            &mut out,
        );
        out.push_str(",\"cat\":");
        write_escaped(
            ev.get("sub").and_then(Json::as_str).unwrap_or("fleet"),
            &mut out,
        );
        let dur = ev.get("dur_us").and_then(Json::as_u64);
        match (ev.get("ts_us").and_then(Json::as_u64), dur) {
            (Some(_), Some(dur)) => {
                let _ = write!(out, ",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{}", track.tid);
                write_json_args(
                    ev,
                    &["ev", "sub", "level", "ts_us", "dur_us", "worker"],
                    &mut out,
                );
            }
            _ => {
                let _ = write!(out, ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts}");
                let _ = write!(out, ",\"pid\":0,\"tid\":{}", track.tid);
                write_json_args(ev, &["ev", "sub", "level", "worker"], &mut out);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_trace::json::{self, Json};
    use sea_trace::{Level, Subsystem};

    fn span_ev(name: &'static str, ts: u64, dur: u64, worker: u64) -> Event {
        Event::new(Subsystem::Injection, Level::Info, name)
            .field("dur_us", dur)
            .field("ts_us", ts)
            .field("worker", worker)
            .field("runs", 12u64)
    }

    #[test]
    fn spans_become_complete_slices() {
        let events = [
            span_ev("injection.worker", 100, 50, 3),
            Event::new(Subsystem::Microarch, Level::Info, "injection.flip").at_cycle(77),
        ];
        let doc = chrome_trace(&events);
        let j = json::parse(&doc).expect("valid JSON");
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!("traceEvents array missing: {doc}");
        };
        assert_eq!(items.len(), 2);
        let slice = items
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(
            slice.get("name").unwrap().as_str(),
            Some("injection.worker")
        );
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(100));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(50));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(3));
        let args = slice.get("args").expect("args");
        assert_eq!(args.get("runs").unwrap().as_u64(), Some(12));
        assert!(args.get("ts_us").is_none(), "ts_us folded into ts");
        let inst = items
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("one instant");
        assert_eq!(
            inst.get("args").unwrap().get("cycle").unwrap().as_u64(),
            Some(77)
        );
    }

    #[test]
    fn timestamps_are_monotonic() {
        let events = [
            span_ev("b", 500, 10, 0),
            Event::new(Subsystem::Harness, Level::Info, "plain"),
            span_ev("a", 100, 10, 0),
        ];
        let doc = chrome_trace(&events);
        let j = json::parse(&doc).unwrap();
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!()
        };
        let ts: Vec<u64> = items
            .iter()
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn empty_capture_is_valid() {
        let doc = chrome_trace(&[]);
        assert!(json::parse(&doc).is_ok(), "{doc}");
    }

    fn line(ev: &str) -> Json {
        json::parse(ev).unwrap()
    }

    #[test]
    fn stitched_trace_puts_each_track_on_its_own_tid() {
        let tracks = [
            ChromeTrack {
                tid: 0,
                name: "worker 0".to_string(),
                shift_us: 0,
                events: vec![line(
                    r#"{"ev":"fleet.block","sub":"harness","level":"info","dur_us":40,"ts_us":100,"wl":"CRC32","runs":8}"#,
                )],
            },
            ChromeTrack {
                tid: 1,
                name: "worker 1".to_string(),
                // Worker 1's span clock started 1000us before the daemon's.
                shift_us: -50,
                events: vec![
                    line(
                        r#"{"ev":"fleet.block","sub":"harness","level":"info","dur_us":30,"ts_us":60,"runs":4}"#,
                    ),
                    line(r#"{"ev":"fleet.margin_stop","sub":"harness","level":"info"}"#),
                ],
            },
        ];
        let doc = stitch_chrome_trace(&tracks);
        let j = json::parse(&doc).expect("valid JSON");
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!("traceEvents missing: {doc}");
        };
        // Two metadata records naming the tracks.
        let meta: Vec<&Json> = items
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[1].get("args").unwrap().get("name").unwrap().as_str(),
            Some("worker 1")
        );
        // Slices land on their track's tid with shifted timestamps.
        let slices: Vec<&Json> = items
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        let w1 = slices
            .iter()
            .find(|e| e.get("tid").unwrap().as_u64() == Some(1))
            .expect("worker 1 slice");
        assert_eq!(
            w1.get("ts").unwrap().as_u64(),
            Some(10),
            "60 shifted by -50"
        );
        assert_eq!(
            w1.get("args").unwrap().get("runs").unwrap().as_u64(),
            Some(4)
        );
        assert!(w1.get("args").unwrap().get("ts_us").is_none());
        // The timestamp-free instant rides at its track's cursor.
        let inst = items
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .expect("instant");
        assert_eq!(inst.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(inst.get("ts").unwrap().as_u64(), Some(10));
        // Slice stream is monotonic after the metadata prefix.
        let ts: Vec<u64> = items
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn stitched_empty_tracks_are_valid() {
        assert!(json::parse(&stitch_chrome_trace(&[])).is_ok());
        let t = [ChromeTrack {
            tid: 7,
            name: "idle".to_string(),
            shift_us: 0,
            events: Vec::new(),
        }];
        let doc = stitch_chrome_trace(&t);
        let j = json::parse(&doc).unwrap();
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!()
        };
        assert_eq!(items.len(), 1, "just the thread_name record");
    }
}

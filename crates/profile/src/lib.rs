//! # sea-profile — cycle & vulnerability attribution profiling
//!
//! Observability beyond outcomes: the campaign stack (sea-injection)
//! measures per-structure AVF by injecting faults and classifying effects,
//! but it cannot say *why* a structure is vulnerable or where golden-run
//! cycles go. This crate adds three attribution views:
//!
//! * **Residency/liveness profiling** ([`StructureResidency`]) — lifetime
//!   tracking of cache lines, TLB entries and registers during the golden
//!   run (fill → last-read → evict intervals), folded into an ACE-style
//!   *predicted* per-structure AVF that `sea-analysis` renders next to the
//!   injection-*measured* AVF. This is the analytical cross-check in the
//!   spirit of the exhaustive-simulation tradition (ARMORY, Hoffmann et
//!   al. 2021).
//! * **Cycle attribution** ([`PcSampler`]) — a flat per-guest-PC profile
//!   (cycles, cache/TLB misses, stall-reason buckets) fed by a sampling
//!   hook in `System::step`.
//! * **Exports** — a Chrome trace-event JSON writer ([`chrome_trace`]) for
//!   sea-trace spans and campaign worker timelines, and a Prometheus
//!   text-exposition snapshot writer ([`PromWriter`], [`prom_flush`])
//!   rewritten periodically during campaigns.
//!
//! Like sea-trace, the hot-path discipline is *zero overhead when off*
//! (ZOFI, Porpodas 2019): [`enabled`] is one `Relaxed` atomic load, the
//! simulator's profiler slots are `None` unless explicitly attached, and
//! the disabled path allocates nothing (guarded by a test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod pc;
mod prom;
mod residency;

pub use chrome::{chrome_trace, stitch_chrome_trace, ChromeTrack};
pub use pc::{PcProfile, PcSampler, PcStats, SampleCounters};
pub use prom::{labels, prom_enabled, prom_flush, set_prom_out, PromWriter};
pub use residency::{StructureReport, StructureResidency};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global profiling switch. Off by default; the simulator's per-step
/// sampling hook checks this before touching any profiler state.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// Is profiling globally enabled? One `Relaxed` atomic load — the hot-path
/// guard, mirroring `sea_trace::enabled`.
#[inline]
pub fn enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turn the global profiling switch on or off.
pub fn set_enabled(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

/// Everything one profiled golden run produced: the per-PC cycle profile
/// plus one residency report per modeled SRAM structure, in the paper's
/// component order (RF, L1I$, L1D$, L2$, ITLB, DTLB).
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Cycles the profiled run simulated.
    pub total_cycles: u64,
    /// Instructions the profiled run retired.
    pub instructions: u64,
    /// Flat per-guest-PC attribution profile.
    pub pc: PcProfile,
    /// Per-structure residency/ACE reports.
    pub structures: Vec<StructureReport>,
}

impl ProfileData {
    /// The report for one structure, by its short name (`"RF"`, `"L1D$"`…).
    pub fn structure(&self, name: &str) -> Option<&StructureReport> {
        self.structures.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_switch_round_trips() {
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}

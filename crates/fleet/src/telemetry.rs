//! Daemon-side aggregation of worker [`Telemetry`](crate::proto::ToDaemon)
//! frames: the fleet's metrics plane.
//!
//! Each worker pushes throttled frames over its existing daemon socket;
//! the board folds them into per-worker state that backs three views:
//!
//! * **`/metrics`** — per-worker-labeled Prometheus series plus rolled-up
//!   `sea_fleet_*` aggregates ([`TelemetryBoard::prom_append`]);
//! * **study status** — a `workers` array with liveness, lag, throughput
//!   and supervisor health per shard ([`TelemetryBoard::workers_json`]);
//! * **stitched traces** — each worker's recent trace events on its own
//!   `tid` track of one Chrome trace document, timestamps shifted onto
//!   the daemon's span clock ([`TelemetryBoard::tracks_for`]).
//!
//! The board is strictly best-effort bookkeeping: it never influences
//! scheduling, and it is a **leaf lock** — nothing is called while it is
//! held, so it can be taken from worker-connection threads and HTTP
//! worker threads alike without ordering concerns.

use sea_profile::{labels, ChromeTrack, PromWriter};
use sea_trace::json::{self, Json};
use sea_trace::HistSnapshot;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Most recent trace-event lines retained per worker (the stitched trace
/// shows a sliding window, not a full-campaign archive).
const EVENT_CAP: usize = 256;

/// Liveness of one shard as the daemon saw it last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Connection open, frames flowing.
    Alive,
    /// Connection ended without a clean `bye` — crash or kill; shard
    /// numbers are never reused, so a respawn shows up as a *new* alive
    /// shard next to this dead one.
    Dead,
    /// Clean `bye` (drain, study exhausted, daemon-initiated exit).
    Exited,
}

impl WorkerState {
    /// Stable lowercase name for status documents.
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Alive => "alive",
            WorkerState::Dead => "dead",
            WorkerState::Exited => "exited",
        }
    }
}

/// Everything the daemon knows about one shard's telemetry.
struct WorkerTelemetry {
    study: String,
    state: WorkerState,
    last_seen: Instant,
    frames: u64,
    runs: u64,
    elapsed_ms: u64,
    /// Daemon span-clock minus worker span-clock at the last frame: add
    /// it to the worker's `ts_us` values to land on the daemon timeline.
    shift_us: i64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistSnapshot>,
    health: [u64; 5],
    /// Tagged event lines, oldest first, capped at [`EVENT_CAP`].
    events: VecDeque<(u64, String)>,
    /// Highest event sequence absorbed (guards against replays).
    seen_event_seq: Option<u64>,
}

/// Append `study`/`shard`/`worker` tags to one JSONL event line so a
/// multiplexed stream stays attributable. Non-object (or non-JSON) lines
/// are wrapped rather than dropped — lossy telemetry must not lose the
/// attribution.
fn tag_line(line: &str, study: &str, shard: u32) -> String {
    match json::parse(line) {
        Ok(Json::Obj(mut members)) => {
            members.retain(|(k, _)| k != "study" && k != "shard" && k != "worker");
            members.push(("study".to_string(), Json::Str(study.to_string())));
            members.push(("shard".to_string(), Json::Num(f64::from(shard))));
            members.push(("worker".to_string(), Json::Num(f64::from(shard))));
            json::render(&Json::Obj(members))
        }
        _ => {
            let mut o = json::ObjWriter::new();
            o.str_field("ev", "fleet.telemetry_raw")
                .str_field("raw", line)
                .str_field("study", study)
                .u64_field("shard", u64::from(shard))
                .u64_field("worker", u64::from(shard));
            o.finish()
        }
    }
}

/// The health-array slot names, in wire order (see
/// [`crate::proto::ToDaemon::Telemetry`]).
pub const HEALTH_FIELDS: [&str; 5] = [
    "respawns",
    "requeues",
    "watchdog_kills",
    "quarantined",
    "respawn_backoff_ms",
];

/// One decoded telemetry frame, as handed to [`TelemetryBoard::absorb`].
pub struct Frame {
    /// Total runs the worker has executed.
    pub runs: u64,
    /// Worker uptime in milliseconds.
    pub elapsed_ms: u64,
    /// Worker span-clock reading when the frame was built.
    pub clock_us: u64,
    /// Counter deltas since the worker's previous frame.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots as `HistSnapshot::to_json` documents.
    pub hists: Vec<String>,
    /// Supervisor health, [`HEALTH_FIELDS`] order.
    pub health: [u64; 5],
    /// `(worker-local seq, JSONL line)` trace events.
    pub events: Vec<(u64, String)>,
}

/// Cross-worker telemetry aggregation state. See the module docs.
#[derive(Default)]
pub struct TelemetryBoard {
    inner: Mutex<BTreeMap<u32, WorkerTelemetry>>,
}

fn lock(
    m: &Mutex<BTreeMap<u32, WorkerTelemetry>>,
) -> std::sync::MutexGuard<'_, BTreeMap<u32, WorkerTelemetry>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TelemetryBoard {
    /// An empty board.
    pub fn new() -> TelemetryBoard {
        TelemetryBoard::default()
    }

    /// Fold one frame from `shard` (working on `study`) into the board.
    /// Returns the freshly-seen event lines, already tagged with
    /// `{study, shard, worker}`, for the caller to publish (SSE tail).
    pub fn absorb(&self, shard: u32, study: &str, frame: Frame) -> Vec<String> {
        let daemon_clock = sea_trace::clock_us();
        let mut inner = lock(&self.inner);
        let w = inner.entry(shard).or_insert_with(|| WorkerTelemetry {
            study: study.to_string(),
            state: WorkerState::Alive,
            last_seen: Instant::now(),
            frames: 0,
            runs: 0,
            elapsed_ms: 0,
            shift_us: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            health: [0; 5],
            events: VecDeque::new(),
            seen_event_seq: None,
        });
        w.study = study.to_string();
        w.state = WorkerState::Alive;
        w.last_seen = Instant::now();
        w.frames += 1;
        w.runs = frame.runs;
        w.elapsed_ms = frame.elapsed_ms;
        w.shift_us = daemon_clock as i64 - frame.clock_us as i64;
        for (name, delta) in frame.counters {
            *w.counters.entry(name).or_insert(0) += delta;
        }
        for doc in &frame.hists {
            if let Some(snap) = HistSnapshot::parse(doc) {
                w.hists.insert(snap.name.clone(), snap);
            }
        }
        w.health = frame.health;
        let mut fresh = Vec::new();
        for (seq, line) in frame.events {
            if w.seen_event_seq.is_some_and(|s| seq <= s) {
                continue;
            }
            w.seen_event_seq = Some(seq);
            let tagged = tag_line(&line, study, shard);
            if w.events.len() == EVENT_CAP {
                w.events.pop_front();
            }
            w.events.push_back((seq, tagged.clone()));
            fresh.push(tagged);
        }
        fresh
    }

    /// Record that `shard`'s connection ended; `clean` distinguishes a
    /// `bye` from an abrupt EOF. Shards the board never heard telemetry
    /// from are not invented here.
    pub fn mark_gone(&self, shard: u32, clean: bool) {
        let mut inner = lock(&self.inner);
        if let Some(w) = inner.get_mut(&shard) {
            w.state = if clean {
                WorkerState::Exited
            } else {
                WorkerState::Dead
            };
            w.last_seen = Instant::now();
        }
    }

    /// JSON array describing every shard that worked on `study` (pass
    /// `None` for all studies): liveness, frames, runs, lag, throughput
    /// and supervisor health per worker.
    pub fn workers_json(&self, study: Option<&str>) -> String {
        let inner = lock(&self.inner);
        let mut out = String::from("[");
        let mut first = true;
        for (shard, w) in inner.iter() {
            if study.is_some_and(|s| s != w.study) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let rate = if w.elapsed_ms > 0 {
                w.runs as f64 * 1000.0 / w.elapsed_ms as f64
            } else {
                0.0
            };
            let mut h = json::ObjWriter::new();
            for (k, v) in HEALTH_FIELDS.iter().zip(w.health) {
                h.u64_field(k, v);
            }
            // Execution tier actually observed, not configured: a worker
            // that reported warp-cursor handoffs runs the two-tier engine.
            let tier = if w
                .counters
                .get("campaign.warp_handoffs")
                .copied()
                .unwrap_or(0)
                > 0
            {
                "warp"
            } else {
                "detailed"
            };
            let mut o = json::ObjWriter::new();
            o.u64_field("shard", u64::from(*shard))
                .str_field("study", &w.study)
                .str_field("state", w.state.name())
                .str_field("tier", tier)
                .u64_field("frames", w.frames)
                .u64_field("runs", w.runs)
                .u64_field("elapsed_ms", w.elapsed_ms)
                .u64_field("lag_ms", w.last_seen.elapsed().as_millis() as u64)
                .f64_field("rate_per_sec", rate)
                .raw_field("health", &h.finish());
            out.push_str(&o.finish());
        }
        out.push(']');
        out
    }

    /// Total runs reported by alive workers of `study` per second —
    /// the fleet-wide throughput estimate behind the status ETA.
    pub fn fleet_rate(&self, study: &str) -> f64 {
        let inner = lock(&self.inner);
        inner
            .values()
            .filter(|w| w.study == study && w.state == WorkerState::Alive && w.elapsed_ms > 0)
            .map(|w| w.runs as f64 * 1000.0 / w.elapsed_ms as f64)
            .sum()
    }

    /// Append the telemetry-derived series to a `/metrics` document:
    /// per-worker labeled counters/gauges plus rolled-up `sea_fleet_*`
    /// aggregates (summed counters, merged run-cycle histogram).
    pub fn prom_append(&self, w: &mut PromWriter) {
        let inner = lock(&self.inner);
        if inner.is_empty() {
            return;
        }
        let mut up = Vec::new();
        let mut runs = Vec::new();
        let mut rate = Vec::new();
        let mut lag = Vec::new();
        let mut health: [Vec<(String, u64)>; 5] = Default::default();
        let mut rollup: BTreeMap<String, u64> = BTreeMap::new();
        let mut per_counter: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        let mut merged_hists: BTreeMap<String, HistSnapshot> = BTreeMap::new();
        for (shard, wt) in inner.iter() {
            let shard_s = shard.to_string();
            let lbl = labels(&[("study", &wt.study), ("worker", &shard_s)]);
            up.push((
                lbl.clone(),
                if wt.state == WorkerState::Alive {
                    1.0
                } else {
                    0.0
                },
            ));
            runs.push((lbl.clone(), wt.runs));
            rate.push((
                lbl.clone(),
                if wt.elapsed_ms > 0 {
                    wt.runs as f64 * 1000.0 / wt.elapsed_ms as f64
                } else {
                    0.0
                },
            ));
            lag.push((lbl.clone(), wt.last_seen.elapsed().as_millis() as u64));
            for (slot, v) in wt.health.iter().enumerate() {
                health[slot].push((lbl.clone(), *v));
            }
            for (name, v) in &wt.counters {
                *rollup.entry(name.clone()).or_insert(0) += v;
                per_counter
                    .entry(name.clone())
                    .or_default()
                    .push((lbl.clone(), *v));
            }
            for (name, snap) in &wt.hists {
                merged_hists
                    .entry(name.clone())
                    .and_modify(|m| m.merge(snap))
                    .or_insert_with(|| snap.clone());
            }
        }
        w.gauge_vec(
            "sea_fleet_worker_up",
            "1 while the shard's connection is alive, else 0.",
            &up,
        );
        w.counter_vec(
            "sea_fleet_worker_runs",
            "Runs executed, as reported by each worker's telemetry.",
            &runs,
        );
        w.gauge_vec(
            "sea_fleet_worker_rate",
            "Per-worker throughput in runs/second.",
            &rate,
        );
        w.counter_vec(
            "sea_fleet_worker_lag_ms",
            "Milliseconds since each worker's last telemetry frame.",
            &lag,
        );
        for (slot, name) in HEALTH_FIELDS.iter().enumerate() {
            w.counter_vec(
                &format!("sea_fleet_worker_{name}"),
                "Per-worker supervisor health counter.",
                &health[slot],
            );
        }
        for (name, series) in &per_counter {
            w.counter_vec(
                &format!("sea_fleet_{name}"),
                "Per-worker counter pushed via fleet telemetry.",
                series,
            );
        }
        for (name, total) in &rollup {
            w.counter(
                &format!("sea_fleet_{name}_total"),
                "Fleet-wide roll-up of the per-worker telemetry counter.",
                *total,
            );
        }
        for (name, snap) in &merged_hists {
            w.histogram(
                &format!("sea_fleet_{name}"),
                "Cross-worker merge of the per-worker telemetry histogram.",
                snap,
            );
        }
    }

    /// One [`ChromeTrack`] per shard that worked on `study`, timestamps
    /// shifted onto the daemon clock, ready for
    /// [`sea_profile::stitch_chrome_trace`].
    pub fn tracks_for(&self, study: &str) -> Vec<ChromeTrack> {
        let inner = lock(&self.inner);
        inner
            .iter()
            .filter(|(_, w)| w.study == study)
            .map(|(shard, w)| ChromeTrack {
                tid: u64::from(*shard),
                name: format!("worker {shard} ({})", w.state.name()),
                shift_us: w.shift_us,
                events: w
                    .events
                    .iter()
                    .filter_map(|(_, line)| json::parse(line).ok())
                    .collect(),
            })
            .collect()
    }

    /// Does the board know `study` at all? (Used to 404 trace requests
    /// for unknown ids without inventing empty documents.)
    pub fn knows_study(&self, study: &str) -> bool {
        lock(&self.inner).values().any(|w| w.study == study)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(runs: u64, events: Vec<(u64, String)>) -> Frame {
        Frame {
            runs,
            elapsed_ms: 2_000,
            clock_us: 1_000,
            counters: vec![("fleet.worker_runs".to_string(), runs)],
            hists: vec![],
            health: [1, 0, 0, 0, 0],
            events,
        }
    }

    #[test]
    fn absorb_accumulates_and_tags_fresh_events() {
        let b = TelemetryBoard::new();
        let fresh = b.absorb(
            0,
            "study-a",
            frame(8, vec![(0, r#"{"ev":"fleet.block","runs":8}"#.to_string())]),
        );
        assert_eq!(fresh.len(), 1);
        let j = json::parse(&fresh[0]).unwrap();
        assert_eq!(j.get("study").unwrap().as_str(), Some("study-a"));
        assert_eq!(j.get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("worker").unwrap().as_u64(), Some(0));
        assert_eq!(j.get("runs").unwrap().as_u64(), Some(8));

        // A replayed event sequence is not re-published.
        let again = b.absorb(
            0,
            "study-a",
            frame(16, vec![(0, r#"{"ev":"fleet.block"}"#.to_string())]),
        );
        assert!(again.is_empty(), "seq 0 already absorbed");

        // Counters accumulate deltas; runs is absolute.
        let doc = b.workers_json(Some("study-a"));
        let j = json::parse(&doc).unwrap();
        let Json::Arr(workers) = j else {
            panic!("{doc}")
        };
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].get("runs").unwrap().as_u64(), Some(16));
        assert_eq!(workers[0].get("frames").unwrap().as_u64(), Some(2));
        assert_eq!(workers[0].get("state").unwrap().as_str(), Some("alive"));
        assert_eq!(workers[0].get("tier").unwrap().as_str(), Some("detailed"));
        assert_eq!(
            workers[0]
                .get("health")
                .unwrap()
                .get("respawns")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(b.workers_json(Some("other")).starts_with("[]"));
    }

    #[test]
    fn warp_handoffs_flip_the_reported_tier() {
        let b = TelemetryBoard::new();
        let mut f = frame(4, vec![]);
        f.counters.push(("campaign.warp_handoffs".to_string(), 4));
        b.absorb(0, "s", f);
        let doc = b.workers_json(Some("s"));
        let j = json::parse(&doc).unwrap();
        let Json::Arr(workers) = j else {
            panic!("{doc}")
        };
        assert_eq!(workers[0].get("tier").unwrap().as_str(), Some("warp"));
    }

    #[test]
    fn non_json_event_lines_are_wrapped_not_dropped() {
        let b = TelemetryBoard::new();
        let fresh = b.absorb(3, "s", frame(0, vec![(9, "plain text".to_string())]));
        assert_eq!(fresh.len(), 1);
        let j = json::parse(&fresh[0]).unwrap();
        assert_eq!(j.get("ev").unwrap().as_str(), Some("fleet.telemetry_raw"));
        assert_eq!(j.get("raw").unwrap().as_str(), Some("plain text"));
        assert_eq!(j.get("shard").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn gone_states_and_prom_rollup() {
        let b = TelemetryBoard::new();
        b.absorb(0, "s", frame(10, vec![]));
        b.absorb(1, "s", frame(6, vec![]));
        b.mark_gone(1, false);
        b.mark_gone(7, true); // unknown shard: ignored, not invented
        let doc = b.workers_json(None);
        assert!(doc.contains("\"state\":\"dead\""), "{doc}");
        assert!(doc.contains("\"state\":\"alive\""), "{doc}");
        assert!(!doc.contains("\"shard\":7"), "{doc}");

        let mut w = PromWriter::new();
        b.prom_append(&mut w);
        let m = w.finish();
        assert!(
            m.contains("sea_fleet_worker_runs{study=\"s\",worker=\"0\"} 10"),
            "{m}"
        );
        assert!(
            m.contains("sea_fleet_worker_up{study=\"s\",worker=\"1\"} 0"),
            "{m}"
        );
        assert!(
            m.contains("sea_fleet_fleet_worker_runs_total 16"),
            "rolled-up counter: {m}"
        );
        // An empty board appends nothing.
        let mut w = PromWriter::new();
        TelemetryBoard::new().prom_append(&mut w);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn tracks_shift_onto_the_daemon_clock() {
        let b = TelemetryBoard::new();
        let mut f = frame(
            1,
            vec![(
                0,
                r#"{"ev":"fleet.block","sub":"harness","ts_us":500,"dur_us":40}"#.to_string(),
            )],
        );
        f.clock_us = 0; // worker epoch == frame build time
        b.absorb(2, "s", f);
        let tracks = b.tracks_for("s");
        assert_eq!(tracks.len(), 1);
        assert_eq!(tracks[0].tid, 2);
        assert_eq!(tracks[0].events.len(), 1);
        assert!(tracks[0].shift_us >= 0, "daemon clock is ahead");
        assert!(b.tracks_for("other").is_empty());
        assert!(b.knows_study("s"));
        assert!(!b.knows_study("other"));

        let doc = sea_profile::stitch_chrome_trace(&tracks);
        let j = json::parse(&doc).unwrap();
        let Some(Json::Arr(items)) = j.get("traceEvents") else {
            panic!("{doc}")
        };
        assert_eq!(items.len(), 2, "thread_name metadata + one slice");
    }

    #[test]
    fn hist_docs_merge_across_workers() {
        let b = TelemetryBoard::new();
        let mut snap_a = HistSnapshot::empty("inject.run_sim_cycles");
        for v in [10, 20] {
            snap_a.record(v);
        }
        let mut snap_b = HistSnapshot::empty("inject.run_sim_cycles");
        snap_b.record(1_000);
        let mut fa = frame(2, vec![]);
        fa.hists = vec![snap_a.to_json()];
        let mut fb = frame(1, vec![]);
        fb.hists = vec![snap_b.to_json()];
        b.absorb(0, "s", fa);
        b.absorb(1, "s", fb);
        let mut w = PromWriter::new();
        b.prom_append(&mut w);
        let m = w.finish();
        assert!(m.contains("sea_fleet_inject_run_sim_cycles_count 3"), "{m}");
        assert!(
            m.contains("sea_fleet_inject_run_sim_cycles_sum 1030"),
            "{m}"
        );
    }
}

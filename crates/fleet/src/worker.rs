//! The shard worker: one process, one shard journal, zero shared state.
//!
//! A worker connects to the daemon, learns its shard number and the
//! canonical study spec, and from then on is a pure claim-execute-journal
//! loop. Determinism does the heavy lifting: the worker rebuilds the
//! *same* [`CampaignPlan`] a single-process campaign would (same
//! workload build, same config hashes, same golden run, same cycle-sorted
//! spec sequence), so executing index `i` here produces the byte-for-byte
//! journal line a single-process run would have written — which is the
//! whole reason the daemon's merge can be byte-identical.
//!
//! On SIGTERM/SIGINT (or a daemon `exit`), the worker finishes the index
//! in flight, fsyncs its journal, says `bye`, and exits; the unexecuted
//! remainder of its block is requeued by the daemon for another shard to
//! steal.

use crate::proto::{self, ToDaemon, ToWorker};
use sea_core::StudySpec;
use sea_injection::supervisor::{
    journal_file, supervisor_health, INFLIGHT_REQUEUES, QUARANTINED, RESPAWN_BACKOFF_MS,
    WORKER_RESPAWNS,
};
use sea_injection::{
    class_index, open_journal, record_run_cycles, run_cycles_snapshot, stop_requested,
    verdict_line, CampaignPlan, JournalFormat, JournalSpec,
};
use sea_observe::TailSink;
use sea_trace::json::{self, Json};
use sea_trace::{event, span, Level, Subsystem};
use std::collections::HashSet;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker failure (the process exits non-zero; the daemon requeues).
#[derive(Debug)]
pub struct WorkerError(pub String);

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet worker: {}", self.0)
    }
}

impl std::error::Error for WorkerError {}

fn fail(msg: impl Into<String>) -> WorkerError {
    WorkerError(msg.into())
}

/// Install SIGTERM/SIGINT handlers that raise the process-wide stop flag,
/// so campaign loops (and the fleet claim loop) drain cleanly. Shared by
/// the worker and the campaign bins. Safe to call more than once.
pub fn install_stop_signals() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let flag = Arc::new(AtomicBool::new(false));
        for sig in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
            let _ = signal_hook::flag::register(sig, flag.clone());
        }
        // Bridge the async-signal-safe flag to the supervisor's stop
        // predicate without doing anything non-trivial in the handler.
        std::thread::Builder::new()
            .name("sea-stop-watch".into())
            .spawn(move || loop {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    sea_injection::request_stop();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            })
            .ok();
    });
}

/// Minimum interval between telemetry frames. Frames piggyback on
/// protocol round-trips (claims, dones, wait heartbeats), so this is a
/// throttle, not a timer — an idle worker still heartbeats because the
/// claim loop keeps polling.
const TELEMETRY_MIN_INTERVAL: Duration = Duration::from_millis(200);

/// Trace events retained for relay between two frames.
const TELEMETRY_TAIL_CAP: usize = 256;

/// Per-worker telemetry state: what has been pushed, and the local tail
/// ring the worker's own trace events land in.
struct Telemetry {
    started: Instant,
    seq: u64,
    runs: u64,
    blocks: u64,
    last_push: Option<Instant>,
    last_event_seq: u64,
    framer: sea_trace::DeltaFramer,
    /// `None` when the hosting process already routes trace events to a
    /// sink of its own (in-process embedding): we must not clobber it,
    /// so frames then carry no event lines.
    tail: Option<Arc<TailSink>>,
}

impl Telemetry {
    fn new() -> Telemetry {
        let tail = if sea_trace::sink_installed() {
            None
        } else {
            let t = Arc::new(TailSink::new(TELEMETRY_TAIL_CAP));
            sea_trace::install_sink(t.clone());
            // Campaign-grade harness events (block spans, worker lifecycle)
            // are what the daemon stitches; leave other subsystems alone.
            if !sea_trace::enabled(Subsystem::Harness, Level::Info) {
                sea_trace::set_level(Subsystem::Harness, Level::Info);
            }
            Some(t)
        };
        Telemetry {
            started: Instant::now(),
            seq: 0,
            runs: 0,
            blocks: 0,
            last_push: None,
            last_event_seq: 0,
            framer: sea_trace::DeltaFramer::new(),
            tail,
        }
    }

    /// Build the next frame, or `None` while throttled (`force` skips the
    /// throttle — used right after welcome and right before bye).
    fn frame(&mut self, force: bool) -> Option<ToDaemon> {
        if !force
            && self
                .last_push
                .is_some_and(|t| t.elapsed() < TELEMETRY_MIN_INTERVAL)
        {
            return None;
        }
        self.last_push = Some(Instant::now());
        self.seq += 1;
        // Land this thread's buffered events in the tail before reading it.
        sea_trace::flush_thread();
        let mut counters = Vec::new();
        let mut delta = |framer: &mut sea_trace::DeltaFramer, name: &str, value: u64| {
            let d = framer.frame(name, value);
            if d > 0 {
                counters.push((name.to_string(), d));
            }
        };
        delta(&mut self.framer, "fleet.worker_runs", self.runs);
        delta(&mut self.framer, "fleet.worker_blocks", self.blocks);
        for c in [
            &WORKER_RESPAWNS,
            &INFLIGHT_REQUEUES,
            &QUARANTINED,
            &RESPAWN_BACKOFF_MS,
            // Execution-tier residency: the daemon's `/studies/<id>` worker
            // rows and prometheus rollup derive per-worker tier from these.
            &sea_injection::warp::WARP_HANDOFFS,
            &sea_injection::warp::WARP_CURSOR_RESETS,
            &sea_injection::warp::WARP_PREFIX_CYCLES_SAVED,
            &sea_injection::warp::WARP_ADVANCE_CYCLES,
            &sea_injection::warp::FASTPATH_UOP_HITS,
            &sea_injection::warp::FASTPATH_UOP_MISSES,
            &sea_injection::warp::FASTPATH_LATCH_HITS,
            &sea_injection::warp::FASTPATH_LINE_HITS,
        ] {
            delta(&mut self.framer, c.name(), c.get());
        }
        let cycles = run_cycles_snapshot();
        let hists = if cycles.count > 0 {
            vec![cycles.to_json()]
        } else {
            Vec::new()
        };
        let h = supervisor_health();
        let events = match &self.tail {
            Some(t) => {
                let (next, items) = t.since(self.last_event_seq, 64);
                self.last_event_seq = next;
                items
            }
            None => Vec::new(),
        };
        Some(ToDaemon::Telemetry {
            seq: self.seq,
            runs: self.runs,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            clock_us: sea_trace::clock_us(),
            counters,
            hists,
            health: [
                h.respawns,
                h.requeues,
                h.watchdog_kills,
                h.quarantined,
                h.respawn_backoff_ms,
            ],
            events,
        })
    }

    /// Push a frame if the throttle allows; telemetry is best-effort, so
    /// a send failure is surfaced as the error the *next* protocol
    /// message would hit anyway.
    fn push(&mut self, link: &mut Link, force: bool) -> Result<(), WorkerError> {
        if let Some(frame) = self.frame(force) {
            link.send(&frame)?;
        }
        Ok(())
    }
}

struct Link {
    r: BufReader<TcpStream>,
    w: TcpStream,
}

impl Link {
    fn send(&mut self, m: &ToDaemon) -> Result<(), WorkerError> {
        proto::send(&mut self.w, &m.encode()).map_err(|e| fail(format!("daemon gone: {e}")))
    }

    fn recv(&mut self) -> Result<ToWorker, WorkerError> {
        let line = proto::recv(&mut self.r)
            .map_err(|e| fail(format!("daemon gone: {e}")))?
            .ok_or_else(|| fail("daemon closed the connection"))?;
        ToWorker::decode(&line).map_err(|e| fail(e.to_string()))
    }
}

/// What `next_grant` resolved to.
enum Next {
    Grant { wl: u32, start: u64, end: u64 },
    Exit,
}

/// Claim until the daemon grants, tells us to exit, or the stop flag
/// fires. Each round trip piggybacks a (throttled) telemetry frame, so a
/// worker stuck on `wait` still heartbeats.
fn next_grant(link: &mut Link, tel: &mut Telemetry) -> Result<Next, WorkerError> {
    loop {
        if stop_requested() {
            return Ok(Next::Exit);
        }
        tel.push(link, false)?;
        link.send(&ToDaemon::Claim)?;
        match link.recv()? {
            ToWorker::Grant { wl, start, end } => return Ok(Next::Grant { wl, start, end }),
            ToWorker::Wait { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(ms.clamp(10, 2_000)));
            }
            ToWorker::Exit => return Ok(Next::Exit),
            ToWorker::Welcome { .. } => return Err(fail("unexpected welcome")),
        }
    }
}

/// Run the worker loop against a daemon at `connect` (e.g.
/// `127.0.0.1:41234`). Returns when the daemon says `exit`, the stop flag
/// fires, or the study has no more work for us.
///
/// # Errors
///
/// [`WorkerError`] on protocol violations, a vanished daemon, an invalid
/// spec, or a poisoned (unwritable) shard journal.
pub fn run_worker(connect: &str) -> Result<(), WorkerError> {
    install_stop_signals();
    let sock = TcpStream::connect(connect)
        .map_err(|e| fail(format!("cannot connect to daemon at {connect}: {e}")))?;
    let r = BufReader::new(sock.try_clone().map_err(|e| fail(e.to_string()))?);
    let mut link = Link { r, w: sock };

    // Hello → Welcome (the daemon may ask us to wait while it spins up).
    let (shard, dir, spec_text) = loop {
        link.send(&ToDaemon::Hello)?;
        match link.recv()? {
            ToWorker::Welcome { shard, dir, spec } => break (shard, dir, spec),
            ToWorker::Wait { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(ms.clamp(10, 2_000)))
            }
            ToWorker::Exit => return Ok(()),
            ToWorker::Grant { .. } => return Err(fail("grant before welcome")),
        }
    };
    let spec = StudySpec::from_json(&spec_text).map_err(|e| fail(format!("bad spec: {e}")))?;
    let shard_dir = PathBuf::from(&dir).join(format!("shard-{shard}"));
    let mut tel = Telemetry::new();
    event!(Subsystem::Harness, Level::Info, "fleet.worker_start";
           "shard" => u64::from(shard),
           "dir" => shard_dir.display().to_string(),
           "suite" => spec.suite.len() as u64);
    // First frame right away so the daemon's board sees this shard (and
    // its clock offset) before any block completes.
    tel.push(&mut link, true)?;

    let mut pending: Option<(u32, u64, u64)> = None;
    'study: loop {
        // Acquire the next grant (possibly one left over from a workload
        // switch below).
        let (wl, mut start, mut end) = match pending.take() {
            Some(g) => g,
            None => match next_grant(&mut link, &mut tel)? {
                Next::Grant { wl, start, end } => (wl, start, end),
                Next::Exit => break 'study,
            },
        };
        let w = *spec
            .suite
            .get(wl as usize)
            .ok_or_else(|| fail(format!("grant for workload {wl} outside the suite")))?;

        // Build the identical plan a single-process campaign would use.
        let built = w.build(spec.study.scale);
        let cfg = spec.study.injection_config_for(w);
        let plan = CampaignPlan::new(w.name(), &built, &cfg)
            .map_err(|e| fail(format!("plan for {w}: {e}")))?;
        let jspec = JournalSpec {
            dir: shard_dir.clone(),
            resume: true,
            format: JournalFormat::Binary,
            fsync: spec.study.journal_fsync,
        };
        let (journal, entries) =
            open_journal(&jspec, &plan.header()).map_err(|e| fail(format!("journal: {e}")))?;
        let mut local_done: HashSet<u64> = entries
            .iter()
            .filter_map(|e| e.get("i").and_then(Json::as_u64))
            .collect();
        let journal_path = journal_file(&jspec.dir, "inject", w.name(), jspec.format);

        // Execute grants for this workload until the daemon switches us to
        // another one (or tells us to stop).
        loop {
            let mut obs: Vec<(u32, u32)> = Vec::with_capacity((end - start) as usize);
            let mut block_runs = 0u64;
            {
                let mut block_span = span(Subsystem::Harness, Level::Info, "fleet.block");
                for i in start..end.min(plan.total()) {
                    if local_done.contains(&i) {
                        continue; // resumed: our own journal already has it
                    }
                    let verdict = plan.run_index(i);
                    record_run_cycles(verdict.sim_cycles);
                    journal.append(&verdict_line(i, &verdict));
                    if journal.poisoned() {
                        return Err(fail(format!(
                            "shard journal {} is poisoned; aborting so the daemon reassigns",
                            journal_path.display()
                        )));
                    }
                    local_done.insert(i);
                    block_runs += 1;
                    if let Some(o) = &verdict.outcome {
                        obs.push((plan.stratum_of(i) as u32, class_index(o.class) as u32));
                    }
                }
                if let Some(s) = block_span.as_mut() {
                    s.field("wl", u64::from(wl));
                    s.field("start", start);
                    s.field("end", end);
                    s.field("runs", block_runs);
                    s.field("worker", u64::from(shard));
                }
            }
            tel.runs += block_runs;
            tel.blocks += 1;
            // The block is durable before the daemon hears "done" — a
            // worker killed right here merely re-runs the block elsewhere,
            // producing byte-identical duplicate lines the merge drops.
            journal.sync();
            link.send(&ToDaemon::Done {
                wl,
                start,
                end,
                obs,
            })?;
            match next_grant(&mut link, &mut tel)? {
                Next::Grant {
                    wl: nwl,
                    start: ns,
                    end: ne,
                } => {
                    if nwl == wl {
                        (start, end) = (ns, ne);
                    } else {
                        pending = Some((nwl, ns, ne));
                        continue 'study;
                    }
                }
                Next::Exit => break 'study,
            }
        }
    }
    event!(Subsystem::Harness, Level::Info, "fleet.worker_exit";
           "shard" => u64::from(shard),
           "stopped" => stop_requested());
    let _ = tel.push(&mut link, true);
    let _ = link.send(&ToDaemon::Bye);
    Ok(())
}

/// Parse a `spec` JSON text and return its canonical form plus the parsed
/// spec — the submission-side counterpart of what the daemon does, shared
/// so clients compute the same study id.
///
/// # Errors
///
/// The spec parse error, stringified.
pub fn canonicalize_spec(text: &str) -> Result<(String, StudySpec), String> {
    let spec = StudySpec::from_json(text).map_err(|e| e.to_string())?;
    let canonical = spec.to_json();
    // Round-trip sanity: canonical must re-parse to itself.
    debug_assert_eq!(
        StudySpec::from_json(&canonical).map(|s| s.to_json()),
        Ok(canonical.clone())
    );
    let _ = json::parse(&canonical).expect("canonical spec is valid JSON");
    Ok((canonical, spec))
}

//! The daemon↔worker wire protocol: line-delimited JSON over a local TCP
//! socket.
//!
//! Outcomes never travel the socket — every completed run's verdict line
//! goes straight into the worker's own shard journal, and the daemon only
//! learns *that* a block finished plus its `(stratum, class)` observation
//! pairs (enough to drive live convergence margins without reading any
//! journal). That keeps the protocol tiny, the daemon stateless about
//! verdicts, and the journals the single source of truth the
//! deterministic merge operates on. Observability rides the same socket:
//! workers push throttled [`ToDaemon::Telemetry`] frames (counter deltas,
//! histogram snapshots, recent trace events) that the daemon aggregates
//! into fleet-wide `/metrics`, status documents and stitched traces —
//! best-effort data that never influences scheduling decisions.
//!
//! Framing is one JSON object per `\n`-terminated line in each direction;
//! a closed socket (EOF) is itself a protocol event — the daemon treats
//! it as worker death and requeues every block granted to that shard.

use sea_trace::json::{self, Json, ObjWriter};
use std::io::{BufRead, Write};

/// Messages a worker sends to the daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToDaemon {
    /// First message on a fresh connection; answered with `Welcome`.
    Hello,
    /// Ask for a block of injection indices.
    Claim,
    /// A granted block `[start, end)` of workload `wl` is fully executed
    /// and journaled; `obs` carries one `(stratum, class)` pair per run
    /// that produced a classified outcome (anomalies are journaled but
    /// not observed).
    Done {
        /// Suite index of the workload the block belongs to.
        wl: u32,
        /// First injection index of the block.
        start: u64,
        /// One past the last injection index of the block.
        end: u64,
        /// `(stratum, class-index)` per classified run, in index order.
        obs: Vec<(u32, u32)>,
    },
    /// Throttled telemetry push: counter deltas, histogram snapshots,
    /// supervisor-health counters and recent trace-event lines. Fire-and-
    /// forget like `Done` — the daemon aggregates, never replies. Workers
    /// piggyback it on Claim/Done round-trips plus an idle heartbeat, so
    /// losing a frame only delays (never corrupts) the aggregate: counters
    /// travel as deltas and histograms as full snapshots.
    Telemetry {
        /// Frame sequence number within this worker session, from 1.
        seq: u64,
        /// Total runs this worker has executed (absolute, not a delta).
        runs: u64,
        /// Milliseconds this worker has been running.
        elapsed_ms: u64,
        /// Worker's span-clock reading ([`sea_trace::clock_us`]) when the
        /// frame was built; the daemon differences it against its own
        /// clock to shift this worker's trace timestamps when stitching.
        clock_us: u64,
        /// Counter deltas since the previous frame, `(name, delta)`.
        counters: Vec<(String, u64)>,
        /// Histogram snapshots as `HistSnapshot::to_json` documents.
        hists: Vec<String>,
        /// Supervisor health: `[respawns, requeues, watchdog_kills,
        /// quarantined, respawn_backoff_ms]`.
        health: [u64; 5],
        /// Recent trace events as `(worker-local sequence, JSONL line)`;
        /// the sequence is stable across retransmits, so `(shard, seq)`
        /// identifies an event fleet-wide.
        events: Vec<(u64, String)>,
    },
    /// Clean goodbye (journals synced); the daemon frees the shard.
    Bye,
}

/// Messages the daemon sends to a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ToWorker {
    /// Session setup: the worker's shard number, the study directory it
    /// must create its `shard-<n>/` journal dir under, and the canonical
    /// study-spec document (the worker rebuilds the identical
    /// [`sea_injection::CampaignPlan`] from it).
    Welcome {
        /// Shard number (also the journal subdirectory suffix).
        shard: u32,
        /// Study directory (shard dirs live directly under it).
        dir: String,
        /// Canonical study-spec JSON.
        spec: String,
    },
    /// A block grant: execute indices `[start, end)` of workload `wl`.
    Grant {
        /// Suite index of the workload.
        wl: u32,
        /// First injection index.
        start: u64,
        /// One past the last injection index.
        end: u64,
    },
    /// Nothing grantable right now; ask again in `ms` milliseconds.
    Wait {
        /// Suggested retry delay.
        ms: u64,
    },
    /// The study is over (or the daemon is shutting down): sync journals,
    /// say `Bye`, exit cleanly.
    Exit,
}

/// Protocol decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn obs_json(obs: &[(u32, u32)]) -> String {
    let mut out = String::from("[");
    for (k, (s, c)) in obs.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{s},{c}]"));
    }
    out.push(']');
    out
}

impl ToDaemon {
    /// Serialize as a single line (without the trailing newline).
    pub fn encode(&self) -> String {
        let mut o = ObjWriter::new();
        match self {
            ToDaemon::Hello => o.str_field("op", "hello"),
            ToDaemon::Claim => o.str_field("op", "claim"),
            ToDaemon::Done {
                wl,
                start,
                end,
                obs,
            } => o
                .str_field("op", "done")
                .u64_field("wl", u64::from(*wl))
                .u64_field("start", *start)
                .u64_field("end", *end)
                .raw_field("obs", &obs_json(obs)),
            ToDaemon::Telemetry {
                seq,
                runs,
                elapsed_ms,
                clock_us,
                counters,
                hists,
                health,
                events,
            } => {
                let mut c = ObjWriter::new();
                for (k, v) in counters {
                    c.u64_field(k, *v);
                }
                let mut h = String::from("[");
                for (k, doc) in hists.iter().enumerate() {
                    if k > 0 {
                        h.push(',');
                    }
                    h.push_str(doc);
                }
                h.push(']');
                let mut hl = String::from("[");
                for (k, v) in health.iter().enumerate() {
                    if k > 0 {
                        hl.push(',');
                    }
                    hl.push_str(&v.to_string());
                }
                hl.push(']');
                let mut ev = String::from("[");
                for (k, (s, line)) in events.iter().enumerate() {
                    if k > 0 {
                        ev.push(',');
                    }
                    ev.push_str(&format!("[{s},"));
                    json::write_escaped(line, &mut ev);
                    ev.push(']');
                }
                ev.push(']');
                o.str_field("op", "telemetry")
                    .u64_field("seq", *seq)
                    .u64_field("runs", *runs)
                    .u64_field("elapsed_ms", *elapsed_ms)
                    .u64_field("clock_us", *clock_us)
                    .raw_field("counters", &c.finish())
                    .raw_field("hists", &h)
                    .raw_field("health", &hl)
                    .raw_field("events", &ev)
            }
            ToDaemon::Bye => o.str_field("op", "bye"),
        };
        o.finish()
    }

    /// Parse one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or an unknown/incomplete message.
    pub fn decode(line: &str) -> Result<ToDaemon, ProtoError> {
        let j = json::parse(line.trim()).map_err(|e| ProtoError(e.to_string()))?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("missing op".into()))?;
        match op {
            "hello" => Ok(ToDaemon::Hello),
            "claim" => Ok(ToDaemon::Claim),
            "bye" => Ok(ToDaemon::Bye),
            "done" => {
                let field = |k: &str| {
                    j.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError(format!("done: bad '{k}'")))
                };
                let obs = match j.get("obs") {
                    Some(Json::Arr(pairs)) => {
                        let mut out = Vec::with_capacity(pairs.len());
                        for p in pairs {
                            let Json::Arr(sc) = p else {
                                return Err(ProtoError("done: obs pair not an array".into()));
                            };
                            let s = sc.first().and_then(Json::as_u64);
                            let c = sc.get(1).and_then(Json::as_u64);
                            match (s, c) {
                                (Some(s), Some(c)) => out.push((s as u32, c as u32)),
                                _ => return Err(ProtoError("done: bad obs pair".into())),
                            }
                        }
                        out
                    }
                    _ => return Err(ProtoError("done: missing obs".into())),
                };
                Ok(ToDaemon::Done {
                    wl: field("wl")? as u32,
                    start: field("start")?,
                    end: field("end")?,
                    obs,
                })
            }
            "telemetry" => {
                let field = |k: &str| {
                    j.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError(format!("telemetry: bad '{k}'")))
                };
                let counters = match j.get("counters") {
                    Some(Json::Obj(members)) => {
                        let mut out = Vec::with_capacity(members.len());
                        for (k, v) in members {
                            let v = v
                                .as_u64()
                                .ok_or_else(|| ProtoError("telemetry: bad counter".into()))?;
                            out.push((k.clone(), v));
                        }
                        out
                    }
                    _ => return Err(ProtoError("telemetry: missing counters".into())),
                };
                let hists = match j.get("hists") {
                    // Snapshot docs are integer-only, so re-rendering the
                    // parsed value reproduces the sender's bytes.
                    Some(Json::Arr(docs)) => docs.iter().map(json::render).collect(),
                    _ => return Err(ProtoError("telemetry: missing hists".into())),
                };
                let health = match j.get("health") {
                    Some(Json::Arr(vals)) if vals.len() == 5 => {
                        let mut out = [0u64; 5];
                        for (i, v) in vals.iter().enumerate() {
                            out[i] = v
                                .as_u64()
                                .ok_or_else(|| ProtoError("telemetry: bad health".into()))?;
                        }
                        out
                    }
                    _ => return Err(ProtoError("telemetry: missing health".into())),
                };
                let events = match j.get("events") {
                    Some(Json::Arr(pairs)) => {
                        let mut out = Vec::with_capacity(pairs.len());
                        for p in pairs {
                            let Json::Arr(sl) = p else {
                                return Err(ProtoError(
                                    "telemetry: event pair not an array".into(),
                                ));
                            };
                            let s = sl.first().and_then(Json::as_u64);
                            let line = sl.get(1).and_then(Json::as_str);
                            match (s, line) {
                                (Some(s), Some(line)) => out.push((s, line.to_string())),
                                _ => return Err(ProtoError("telemetry: bad event pair".into())),
                            }
                        }
                        out
                    }
                    _ => return Err(ProtoError("telemetry: missing events".into())),
                };
                Ok(ToDaemon::Telemetry {
                    seq: field("seq")?,
                    runs: field("runs")?,
                    elapsed_ms: field("elapsed_ms")?,
                    clock_us: field("clock_us")?,
                    counters,
                    hists,
                    health,
                    events,
                })
            }
            other => Err(ProtoError(format!("unknown worker op '{other}'"))),
        }
    }
}

impl ToWorker {
    /// Serialize as a single line (without the trailing newline).
    pub fn encode(&self) -> String {
        let mut o = ObjWriter::new();
        match self {
            ToWorker::Welcome { shard, dir, spec } => o
                .str_field("op", "welcome")
                .u64_field("shard", u64::from(*shard))
                .str_field("dir", dir)
                .raw_field("spec", spec),
            ToWorker::Grant { wl, start, end } => o
                .str_field("op", "grant")
                .u64_field("wl", u64::from(*wl))
                .u64_field("start", *start)
                .u64_field("end", *end),
            ToWorker::Wait { ms } => o.str_field("op", "wait").u64_field("ms", *ms),
            ToWorker::Exit => o.str_field("op", "exit"),
        };
        o.finish()
    }

    /// Parse one line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on malformed JSON or an unknown/incomplete message.
    pub fn decode(line: &str) -> Result<ToWorker, ProtoError> {
        let j = json::parse(line.trim()).map_err(|e| ProtoError(e.to_string()))?;
        let op = j
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("missing op".into()))?;
        let field = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| ProtoError(format!("{op}: bad '{k}'")))
        };
        match op {
            "welcome" => {
                let spec = j
                    .get("spec")
                    .ok_or_else(|| ProtoError("welcome: missing spec".into()))?;
                // Re-render the spec object to pass it on as text. The
                // worker re-parses it through StudySpec::from_json and uses
                // *that* canonical rendering for identity, so this interim
                // rendering only has to be valid JSON, not canonical.
                Ok(ToWorker::Welcome {
                    shard: field("shard")? as u32,
                    dir: j
                        .get("dir")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ProtoError("welcome: bad 'dir'".into()))?
                        .to_string(),
                    spec: json::render(spec),
                })
            }
            "grant" => Ok(ToWorker::Grant {
                wl: field("wl")? as u32,
                start: field("start")?,
                end: field("end")?,
            }),
            "wait" => Ok(ToWorker::Wait { ms: field("ms")? }),
            "exit" => Ok(ToWorker::Exit),
            other => Err(ProtoError(format!("unknown daemon op '{other}'"))),
        }
    }
}

/// Write one message line to a stream (appends the newline and flushes).
///
/// # Errors
///
/// Propagates the underlying I/O error (a dead peer).
pub fn send(w: &mut impl Write, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one message line from a buffered stream. `Ok(None)` is clean EOF.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn recv(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Ok(Some(line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            ToDaemon::Hello,
            ToDaemon::Claim,
            ToDaemon::Done {
                wl: 3,
                start: 128,
                end: 192,
                obs: vec![(0, 1), (5, 3), (2, 0)],
            },
            ToDaemon::Done {
                wl: 0,
                start: 0,
                end: 1,
                obs: vec![],
            },
            ToDaemon::Telemetry {
                seq: 4,
                runs: 96,
                elapsed_ms: 1500,
                clock_us: 2_000_017,
                counters: vec![
                    ("fleet.worker_runs".to_string(), 64),
                    ("injection.supervisor_respawns".to_string(), 1),
                ],
                hists: vec![
                    r#"{"name":"inject.run_sim_cycles","count":2,"sum":300,"max":200,"buckets":[[8,2]]}"#
                        .to_string(),
                ],
                health: [1, 2, 0, 0, 250],
                events: vec![
                    (7, r#"{"ev":"fleet.block","sub":"harness","runs":8}"#.to_string()),
                    (8, "not json, still framed \"safely\"".to_string()),
                ],
            },
            ToDaemon::Telemetry {
                seq: 1,
                runs: 0,
                elapsed_ms: 0,
                clock_us: 0,
                counters: vec![],
                hists: vec![],
                health: [0; 5],
                events: vec![],
            },
            ToDaemon::Bye,
        ];
        for m in msgs {
            assert_eq!(ToDaemon::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn daemon_messages_round_trip() {
        let msgs = [
            ToWorker::Welcome {
                shard: 2,
                dir: "/tmp/fleet/0123456789abcdef".to_string(),
                spec: r#"{"scale":"tiny","suite":["MatMul"]}"#.to_string(),
            },
            ToWorker::Grant {
                wl: 1,
                start: 64,
                end: 128,
            },
            ToWorker::Wait { ms: 200 },
            ToWorker::Exit,
        ];
        for m in msgs {
            assert_eq!(ToWorker::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panics() {
        for bad in [
            "",
            "nope",
            "{}",
            r#"{"op":"launch"}"#,
            r#"{"op":"done","wl":1}"#,
            r#"{"op":"done","wl":1,"start":0,"end":4,"obs":[[1]]}"#,
            r#"{"op":"grant","wl":0,"start":0}"#,
            r#"{"op":"telemetry","seq":1}"#,
            r#"{"op":"telemetry","seq":1,"runs":0,"elapsed_ms":0,"clock_us":0,"counters":{},"hists":[],"health":[1,2],"events":[]}"#,
            r#"{"op":"telemetry","seq":1,"runs":0,"elapsed_ms":0,"clock_us":0,"counters":{},"hists":[],"health":[0,0,0,0,0],"events":[[3]]}"#,
        ] {
            assert!(ToDaemon::decode(bad).is_err() || ToWorker::decode(bad).is_err());
        }
        assert!(ToDaemon::decode(r#"{"op":"grant","wl":0,"start":0,"end":1}"#).is_err());
    }

    #[test]
    fn framing_survives_a_socket_pair() {
        use std::io::BufReader;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut r = BufReader::new(sock.try_clone().unwrap());
            let mut w = sock;
            let line = recv(&mut r).unwrap().unwrap();
            assert_eq!(ToDaemon::decode(&line).unwrap(), ToDaemon::Hello);
            send(&mut w, &ToWorker::Wait { ms: 7 }.encode()).unwrap();
            assert!(recv(&mut r).unwrap().is_none(), "clean EOF");
        });
        let sock = std::net::TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(sock.try_clone().unwrap());
        let mut w = sock;
        send(&mut w, &ToDaemon::Hello.encode()).unwrap();
        let line = recv(&mut r).unwrap().unwrap();
        assert_eq!(ToWorker::decode(&line).unwrap(), ToWorker::Wait { ms: 7 });
        drop((r, w));
        t.join().unwrap();
    }
}

//! The campaign daemon: study queue, block scheduler, worker supervisor,
//! deterministic merge.
//!
//! One daemon process owns the study registry and a local TCP socket.
//! Worker *processes* (spawned `fleet worker` children, or any process
//! calling [`crate::run_worker`]) connect, get a shard number plus the
//! canonical study spec, and claim contiguous blocks of the injection
//! index space. The daemon never executes a run, and full verdict
//! records live only in the workers' shard journals — but it is not
//! blind: `done` messages carry `(stratum, class)` observation pairs
//! that feed a live [`ConvergenceTracker`] (margins in status documents,
//! and the fleet-wide `stop_at_margin` early stop), and telemetry frames
//! feed the [`TelemetryBoard`] metrics plane. Its job reduces to
//! bookkeeping ([`Ledger`]), supervision (watchdog requeue, child
//! respawn with jittered backoff), aggregation and, once a workload's
//! index space is covered (or its margins converge), the deterministic
//! merge that folds the shard journals into one file — byte-identical to
//! a single-process campaign's when coverage was exhaustive.

use crate::ledger::Ledger;
use crate::merge::{merge_shard_journals, scan_done};
use crate::proto::{self, ToDaemon, ToWorker};
use crate::registry::{study_id, Registry};
use crate::telemetry::{Frame, TelemetryBoard};
use crate::worker::{canonicalize_spec, install_stop_signals};
use sea_core::{FaultClass, StudySpec};
use sea_injection::convergence::strata_json;
use sea_injection::stats::Z_99;
use sea_injection::supervisor::fnv1a;
use sea_injection::{stop_requested, ConvergenceTracker, JournalFormat};
use sea_microarch::{NullDevice, System};
use sea_profile::PromWriter;
use sea_trace::json::ObjWriter;
use sea_trace::{event, Level, Subsystem};
use sea_workloads::Workload;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Scheduler poll interval (stall sweep, child reaping, completion check).
const POLL: Duration = Duration::from_millis(50);

/// How long `wind_down` waits for workers to exit cleanly before killing.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Registry root: studies, shard journals and merged journals live
    /// under `<root>/<study-id>/`.
    pub root: PathBuf,
    /// Worker processes to spawn per study (0 = spawn none; external
    /// workers may still connect).
    pub workers: u32,
    /// Optional HTTP bind address (e.g. `127.0.0.1:0`) for the
    /// `sea-observe` surface (`/studies`, `/status`, `/metrics`, ...).
    pub serve: Option<String>,
    /// A granted block whose worker has not reported for this long is
    /// requeued for another shard to steal.
    pub watchdog_ms: u64,
    /// Worker-process respawn budget per study.
    pub max_respawns: u32,
    /// Worker command line; `--connect <addr>` is appended. Empty means
    /// re-exec the current executable with a `worker` argument.
    pub worker_cmd: Vec<String>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            root: PathBuf::from("out/fleet"),
            workers: 2,
            serve: None,
            watchdog_ms: 120_000,
            max_respawns: 4,
            worker_cmd: Vec::new(),
        }
    }
}

/// Lifecycle of one study.
#[derive(Clone, Debug)]
enum Phase {
    Queued,
    Running(u32),
    Done,
    Failed(String),
}

impl Phase {
    fn state(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running(_) => "running",
            Phase::Done => "done",
            Phase::Failed(_) => "failed",
        }
    }
}

struct StudyRec {
    id: String,
    canonical: String,
    spec: StudySpec,
    phase: Phase,
}

/// The workload currently being sharded out.
struct Active {
    study_id: String,
    canonical: String,
    dir: PathBuf,
    wl: u32,
    workload: String,
    ledger: Ledger,
    tracker: ConvergenceTracker,
    shard_runs: BTreeMap<u32, u64>,
    /// The spec's `stop_at_margin`: stop granting once every stratum's
    /// adjusted margin is below this threshold.
    stop_at_margin: Option<f64>,
    /// Latched once the margin threshold is reached; claims get `exit`
    /// from then on and the scheduler merges the partial journals.
    stopped: bool,
}

/// State shared between the scheduler, worker connections and the HTTP
/// surface. Lock order where both are held: `studies` before `active`.
struct Shared {
    cfg: DaemonConfig,
    reg: Registry,
    addr: SocketAddr,
    studies: Mutex<Vec<StudyRec>>,
    active: Mutex<Option<Active>>,
    /// Telemetry aggregation (leaf lock; see `telemetry` module docs).
    board: TelemetryBoard,
    draining: AtomicBool,
    next_shard: AtomicU32,
    blocks_granted: AtomicU64,
    requeued_death: AtomicU64,
    requeued_stall: AtomicU64,
    child_respawns: AtomicU64,
    respawn_backoff_ms: AtomicU64,
    runs_done: AtomicU64,
    studies_done: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Total injection indices of one workload under a spec — the worker-side
/// [`sea_injection::CampaignPlan`] will arrive at the same number.
fn total_runs(spec: &StudySpec, w: Workload) -> u64 {
    let icfg = spec.study.injection_config_for(w);
    u64::from(icfg.samples_per_component) * icfg.components.len() as u64
}

/// Jittered exponential backoff before a worker-process respawn:
/// uniform-ish in `[base/2, base)` with `base = (10 << nth) ms`, capped at
/// half a second. Deterministic in `(nth, salt)` like the in-process
/// supervisor's, so respawn storms de-synchronize without a clock-seeded
/// RNG.
fn child_backoff_ms(nth: u64, salt: u64) -> u64 {
    let base = (10u64 << nth.min(6)).min(500);
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&nth.to_le_bytes());
    key[8..].copy_from_slice(&salt.to_le_bytes());
    base / 2 + fnv1a(&key) % (base / 2).max(1)
}

fn ack(id: &str, state: &str) -> String {
    let mut o = ObjWriter::new();
    o.str_field("id", id).str_field("state", state);
    o.finish()
}

impl Shared {
    // ---- worker socket ---------------------------------------------------

    /// Serve one worker connection until EOF/`bye`. Any abrupt end
    /// requeues everything granted to the connection's shard.
    fn serve_worker(&self, sock: TcpStream) {
        let Ok(clone) = sock.try_clone() else { return };
        let mut r = BufReader::new(clone);
        let mut w = sock;
        let mut shard: Option<u32> = None;
        let mut study: String = String::new();
        let mut clean = false;
        while let Ok(Some(line)) = proto::recv(&mut r) {
            let Ok(msg) = ToDaemon::decode(&line) else {
                break;
            };
            let reply = match msg {
                ToDaemon::Hello => {
                    if self.draining.load(Ordering::Acquire) {
                        ToWorker::Exit
                    } else {
                        match lock(&self.active).as_ref() {
                            Some(a) => {
                                let k = self.next_shard.fetch_add(1, Ordering::AcqRel);
                                shard = Some(k);
                                study = a.study_id.clone();
                                ToWorker::Welcome {
                                    shard: k,
                                    dir: a.dir.display().to_string(),
                                    spec: a.canonical.clone(),
                                }
                            }
                            // Nothing to hand out yet; the worker retries
                            // its hello without burning a shard number.
                            None => ToWorker::Wait { ms: 200 },
                        }
                    }
                }
                ToDaemon::Claim => {
                    let Some(k) = shard else {
                        // Protocol violation; cut the worker loose.
                        let _ = proto::send(&mut w, &ToWorker::Exit.encode());
                        break;
                    };
                    // With no study queued or running, a welcomed worker
                    // has nothing left to wait for.
                    let idle = {
                        let studies = lock(&self.studies);
                        !studies
                            .iter()
                            .any(|s| matches!(s.phase, Phase::Queued | Phase::Running(_)))
                    };
                    let mut active = lock(&self.active);
                    match active.as_mut() {
                        None => {
                            if self.draining.load(Ordering::Acquire) || idle {
                                ToWorker::Exit
                            } else {
                                ToWorker::Wait { ms: 200 }
                            }
                        }
                        // A worker welcomed under an earlier study must
                        // not execute grants of a different one — its
                        // journal dir and plan would be wrong.
                        Some(a) if a.study_id != study => ToWorker::Exit,
                        Some(a) => {
                            // Fleet-wide convergence early stop: once every
                            // stratum's adjusted margin is under the spec's
                            // threshold, stop granting — workers drain via
                            // `exit` and the scheduler merges what exists.
                            if !a.stopped
                                && a.stop_at_margin.is_some_and(|m| a.tracker.converged(m))
                            {
                                a.stopped = true;
                                event!(Subsystem::Harness, Level::Info, "fleet.margin_stop";
                                       "study" => a.study_id.clone(),
                                       "workload" => a.workload.clone(),
                                       "done" => a.ledger.done_count(),
                                       "total" => a.ledger.total(),
                                       "margin_adjusted" => a.tracker.max_adjusted_margin());
                            }
                            if a.stopped {
                                ToWorker::Exit
                            } else if a.ledger.complete() {
                                ToWorker::Wait { ms: 100 }
                            } else {
                                match a.ledger.claim(k, u64::from(self.cfg.workers.max(1))) {
                                    Some((start, end)) => {
                                        self.blocks_granted.fetch_add(1, Ordering::Relaxed);
                                        ToWorker::Grant {
                                            wl: a.wl,
                                            start,
                                            end,
                                        }
                                    }
                                    None => ToWorker::Wait { ms: 150 },
                                }
                            }
                        }
                    }
                }
                ToDaemon::Done {
                    wl,
                    start,
                    end,
                    obs,
                } => {
                    if let Some(k) = shard {
                        let mut active = lock(&self.active);
                        if let Some(a) = active.as_mut() {
                            if a.study_id == study && a.wl == wl {
                                let fresh = a.ledger.mark_done(k, start, end);
                                if fresh > 0 {
                                    self.runs_done.fetch_add(fresh, Ordering::Relaxed);
                                    *a.shard_runs.entry(k).or_insert(0) += fresh;
                                    // Only first completions feed the live
                                    // margins; a stolen block's duplicate
                                    // re-execution must not double-count.
                                    for (s, c) in obs {
                                        if let Some(&class) = FaultClass::ALL.get(c as usize) {
                                            if (s as usize) < a.tracker.len() {
                                                a.tracker.record(s as usize, class);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    continue; // `done` takes no reply; a `claim` follows
                }
                ToDaemon::Telemetry {
                    seq: _,
                    runs,
                    elapsed_ms,
                    clock_us,
                    counters,
                    hists,
                    health,
                    events,
                } => {
                    if let Some(k) = shard {
                        let fresh = self.board.absorb(
                            k,
                            &study,
                            Frame {
                                runs,
                                elapsed_ms,
                                clock_us,
                                counters,
                                hists,
                                health,
                                events,
                            },
                        );
                        // Relay fresh worker events (tagged with study/
                        // shard/worker) into the shared tail so `/events`
                        // multiplexes the whole fleet.
                        if !fresh.is_empty() {
                            let tail = sea_observe::tail_sink();
                            for line in fresh {
                                tail.push_line(line);
                            }
                        }
                    }
                    continue; // fire-and-forget, like `done`
                }
                ToDaemon::Bye => {
                    clean = true;
                    break;
                }
            };
            if proto::send(&mut w, &reply.encode()).is_err() {
                break;
            }
        }
        if let Some(k) = shard {
            self.board.mark_gone(k, clean);
            let mut active = lock(&self.active);
            if let Some(a) = active.as_mut() {
                if a.study_id == study {
                    let n = a.ledger.requeue_shard(k);
                    if n > 0 {
                        self.requeued_death.fetch_add(n, Ordering::Relaxed);
                        event!(Subsystem::Harness, Level::Warn, "fleet.shard_requeued";
                               "shard" => u64::from(k),
                               "indices" => n,
                               "clean_bye" => clean);
                    }
                }
            }
        }
    }

    // ---- scheduler -------------------------------------------------------

    fn set_phase(&self, id: &str, phase: Phase) {
        let mut studies = lock(&self.studies);
        if let Some(s) = studies.iter_mut().find(|s| s.id == id) {
            s.phase = phase;
        }
    }

    fn spawn_one(&self) -> std::io::Result<Child> {
        let (prog, args) = if self.cfg.worker_cmd.is_empty() {
            (std::env::current_exe()?, vec!["worker".to_string()])
        } else {
            (
                PathBuf::from(&self.cfg.worker_cmd[0]),
                self.cfg.worker_cmd[1..].to_vec(),
            )
        };
        Command::new(prog)
            .args(args)
            .arg("--connect")
            .arg(self.addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
    }

    fn spawn_fleet(&self, children: &mut Vec<Child>) {
        for _ in 0..self.cfg.workers {
            match self.spawn_one() {
                Ok(c) => {
                    event!(Subsystem::Harness, Level::Info, "fleet.worker_spawned";
                           "pid" => u64::from(c.id()));
                    children.push(c);
                }
                Err(e) => {
                    event!(Subsystem::Harness, Level::Error, "fleet.spawn_failed";
                           "error" => e.to_string());
                }
            }
        }
    }

    /// Reap exited worker processes and respawn them (jittered backoff)
    /// while the per-study budget lasts.
    fn reap(&self, children: &mut [Child], budget: &mut u32) {
        for slot in children.iter_mut() {
            let Ok(Some(status)) = slot.try_wait() else {
                continue;
            };
            if *budget == 0 {
                continue;
            }
            *budget -= 1;
            let nth = self.child_respawns.fetch_add(1, Ordering::Relaxed);
            let pause = child_backoff_ms(nth, self.runs_done.load(Ordering::Relaxed));
            self.respawn_backoff_ms.fetch_add(pause, Ordering::Relaxed);
            event!(Subsystem::Harness, Level::Warn, "fleet.worker_respawn";
                   "exit_code" => status.code().map_or(-1, i64::from),
                   "nth" => nth,
                   "backoff_ms" => pause);
            std::thread::sleep(Duration::from_millis(pause));
            match self.spawn_one() {
                Ok(c) => *slot = c,
                Err(e) => {
                    event!(Subsystem::Harness, Level::Error, "fleet.spawn_failed";
                           "error" => e.to_string());
                }
            }
        }
    }

    /// Drain the fleet: flip the draining flag (claims and hellos now get
    /// `exit`), give workers [`DRAIN_TIMEOUT`] to leave, kill stragglers.
    fn wind_down(&self, mut children: Vec<Child>) {
        self.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while Instant::now() < deadline {
            children.retain_mut(|c| !matches!(c.try_wait(), Ok(Some(_))));
            if children.is_empty() {
                break;
            }
            std::thread::sleep(POLL);
        }
        for c in &mut children {
            let _ = c.kill();
            let _ = c.wait();
        }
        self.draining.store(false, Ordering::Release);
    }

    /// Drive one study to completion (or to a stop-flag pause / failure).
    fn process_study(&self, id: &str, canonical: &str, spec: &StudySpec) {
        event!(Subsystem::Harness, Level::Info, "fleet.study_start";
               "id" => id.to_string(),
               "workloads" => spec.suite.len() as u64);
        // Never reuse a shard number that already has a journal directory
        // (a restarted daemon would otherwise double-book shard 0).
        if let Some(&max) = self.reg.existing_shards(id).last() {
            let cur = self.next_shard.load(Ordering::Acquire);
            if cur <= max {
                self.next_shard.store(max + 1, Ordering::Release);
            }
        }
        let mut children: Vec<Child> = Vec::new();
        let mut spawned = false;
        let mut respawn_budget = self.cfg.max_respawns;

        for (k, &w) in spec.suite.iter().enumerate() {
            let merged = self.reg.merged_path(id, w.name());
            if merged.exists() {
                continue;
            }
            let total = total_runs(spec, w);
            // Resume: everything any shard journal already holds is done.
            let ledger = Ledger::new(total, self.reg.done_indices(id, w.name()));
            if !ledger.complete() {
                let icfg = spec.study.injection_config_for(w);
                let probe = System::new(icfg.machine, NullDevice);
                let tracker = ConvergenceTracker::with_strata(
                    Z_99,
                    icfg.components
                        .iter()
                        .map(|&c| (c.short_name().to_string(), probe.component_bits(c))),
                );
                self.set_phase(id, Phase::Running(k as u32));
                *lock(&self.active) = Some(Active {
                    study_id: id.to_string(),
                    canonical: canonical.to_string(),
                    dir: self.reg.study_dir(id),
                    wl: k as u32,
                    workload: w.name().to_string(),
                    ledger,
                    tracker,
                    shard_runs: BTreeMap::new(),
                    stop_at_margin: spec.study.stop_at_margin,
                    stopped: false,
                });
                if !spawned {
                    self.spawn_fleet(&mut children);
                    spawned = true;
                }
                let mut margin_stopped = false;
                loop {
                    std::thread::sleep(POLL);
                    if stop_requested() {
                        // Pause, resumable: shard journals keep the done
                        // set; the study re-queues on the next daemon run.
                        *lock(&self.active) = None;
                        self.wind_down(children);
                        self.set_phase(id, Phase::Queued);
                        event!(Subsystem::Harness, Level::Warn, "fleet.study_paused";
                               "id" => id.to_string(),
                               "workload" => w.name());
                        return;
                    }
                    {
                        let mut active = lock(&self.active);
                        if let Some(a) = active.as_mut() {
                            let stale = a.ledger.requeue_stalled(self.cfg.watchdog_ms);
                            if stale > 0 {
                                self.requeued_stall.fetch_add(stale, Ordering::Relaxed);
                                event!(Subsystem::Harness, Level::Warn, "fleet.stall_requeued";
                                       "workload" => w.name(),
                                       "indices" => stale);
                            }
                            if a.stopped {
                                margin_stopped = true;
                                break;
                            }
                            if a.ledger.complete() {
                                break;
                            }
                        }
                    }
                    self.reap(&mut children, &mut respawn_budget);
                }
                *lock(&self.active) = None;
                if margin_stopped {
                    // Drain the fleet before merging: exiting workers
                    // fsync and close their shard journals, so the merge
                    // below reads a quiescent set of files. Later
                    // workloads of the study respawn a fresh fleet.
                    self.wind_down(std::mem::take(&mut children));
                    spawned = false;
                }
            }
            match merge_shard_journals(&self.reg.shard_journals(id, w.name()), &merged) {
                Ok(audit) => {
                    event!(Subsystem::Harness, Level::Info, "fleet.merged";
                           "workload" => w.name(),
                           "shards" => audit.shards as u64,
                           "records_in" => audit.records_in,
                           "duplicates" => audit.duplicates,
                           "merged" => audit.merged,
                           "torn_bytes" => audit.torn_bytes);
                }
                Err(e) => {
                    self.set_phase(id, Phase::Failed(e.to_string()));
                    event!(Subsystem::Harness, Level::Error, "fleet.merge_failed";
                           "id" => id.to_string(),
                           "workload" => w.name(),
                           "error" => e.to_string());
                    self.wind_down(children);
                    return;
                }
            }
        }
        self.wind_down(children);
        self.set_phase(id, Phase::Done);
        self.studies_done.fetch_add(1, Ordering::Relaxed);
        event!(Subsystem::Harness, Level::Info, "fleet.study_done";
               "id" => id.to_string());
    }

    // ---- documents -------------------------------------------------------

    /// The daemon-level `/status` document.
    fn status_doc(&self) -> String {
        let (total, by_state) = {
            let studies = lock(&self.studies);
            let mut by = [0u64; 4];
            for s in studies.iter() {
                let k = match s.phase {
                    Phase::Queued => 0,
                    Phase::Running(_) => 1,
                    Phase::Done => 2,
                    Phase::Failed(_) => 3,
                };
                by[k] += 1;
            }
            (studies.len() as u64, by)
        };
        let mut o = ObjWriter::new();
        o.str_field("state", "fleet")
            .u64_field("studies", total)
            .u64_field("queued", by_state[0])
            .u64_field("running", by_state[1])
            .u64_field("done", by_state[2])
            .u64_field("failed", by_state[3])
            .u64_field("workers", u64::from(self.cfg.workers))
            .u64_field("runs_done", self.runs_done.load(Ordering::Relaxed));
        match lock(&self.active).as_ref() {
            Some(a) => {
                o.raw_field("active", &active_json(a));
            }
            None => {
                o.raw_field("active", "null");
            }
        }
        o.raw_field("workers", &self.board.workers_json(None));
        o.finish()
    }

    /// The daemon-level `/metrics` exposition.
    fn metrics_doc(&self) -> String {
        let mut w = PromWriter::new();
        w.counter(
            "sea_fleet_runs_done_total",
            "Injection runs completed across all shards and studies.",
            self.runs_done.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_blocks_granted_total",
            "Blocks granted to worker shards.",
            self.blocks_granted.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_requeued_death_total",
            "Indices requeued off dead worker connections.",
            self.requeued_death.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_requeued_stall_total",
            "Indices requeued by the grant watchdog.",
            self.requeued_stall.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_worker_respawns_total",
            "Worker processes respawned after exiting mid-study.",
            self.child_respawns.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_respawn_backoff_ms_total",
            "Milliseconds spent backing off before worker respawns.",
            self.respawn_backoff_ms.load(Ordering::Relaxed),
        );
        w.counter(
            "sea_fleet_studies_done_total",
            "Studies driven to completion by this daemon.",
            self.studies_done.load(Ordering::Relaxed),
        );
        if let Some(a) = lock(&self.active).as_ref() {
            w.gauge(
                "sea_fleet_active_done",
                "Completed indices of the workload being sharded out.",
                a.ledger.done_count() as f64,
            );
            w.gauge(
                "sea_fleet_active_total",
                "Total indices of the workload being sharded out.",
                a.ledger.total() as f64,
            );
            w.gauge(
                "sea_fleet_active_margin_adjusted",
                "Worst adjusted error margin across the active strata.",
                a.tracker.max_adjusted_margin(),
            );
            w.gauge(
                "sea_fleet_active_margin_stopped",
                "1 once the stop-at-margin threshold halted granting.",
                if a.stopped { 1.0 } else { 0.0 },
            );
        }
        self.board.prom_append(&mut w);
        w.finish()
    }
}

/// Live detail of the active workload (the `active` member of study and
/// daemon status documents).
fn active_json(a: &Active) -> String {
    let mut o = ObjWriter::new();
    o.str_field("workload", &a.workload)
        .u64_field("wl", u64::from(a.wl))
        .u64_field("total", a.ledger.total())
        .u64_field("done", a.ledger.done_count())
        .u64_field("outstanding", a.ledger.outstanding_count());
    let mut shards = ObjWriter::new();
    for (k, n) in &a.shard_runs {
        shards.u64_field(&k.to_string(), *n);
    }
    o.raw_field("shard_runs", &shards.finish())
        .f64_field("margin_adjusted", a.tracker.max_adjusted_margin())
        .bool_field("margin_stopped", a.stopped)
        .raw_field("strata", &strata_json(&a.tracker));
    o.finish()
}

impl sea_observe::StudyApi for Shared {
    fn submit(&self, spec_json: &str) -> Result<String, String> {
        let (canonical, spec) = canonicalize_spec(spec_json)?;
        if spec.study.journal_format != JournalFormat::Binary {
            return Err(
                "fleet studies require \"journal_format\":\"bin\" — the deterministic \
                 merge operates on binary .seaj shard journals"
                    .to_string(),
            );
        }
        let id = study_id(&canonical);
        let mut studies = lock(&self.studies);
        if let Some(existing) = studies.iter().find(|s| s.id == id) {
            // Idempotent: same canonical spec, same study.
            return Ok(ack(&id, existing.phase.state()));
        }
        self.reg
            .persist(&id, &canonical)
            .map_err(|e| format!("cannot persist study: {e}"))?;
        event!(Subsystem::Harness, Level::Info, "fleet.study_submitted";
               "id" => id.clone(),
               "workloads" => spec.suite.len() as u64);
        studies.push(StudyRec {
            id: id.clone(),
            canonical,
            spec,
            phase: Phase::Queued,
        });
        Ok(ack(&id, "queued"))
    }

    fn list(&self) -> String {
        let studies = lock(&self.studies);
        let mut out = String::from("[");
        for (k, s) in studies.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let mut o = ObjWriter::new();
            o.str_field("id", &s.id)
                .str_field("state", s.phase.state())
                .u64_field("workloads", s.spec.suite.len() as u64);
            out.push_str(&o.finish());
        }
        out.push(']');
        out
    }

    fn status(&self, id: &str) -> Option<String> {
        let (spec, phase) = {
            let studies = lock(&self.studies);
            let s = studies.iter().find(|s| s.id == id)?;
            (s.spec.clone(), s.phase.clone())
        };
        let mut suite = String::from("[");
        for (k, w) in spec.suite.iter().enumerate() {
            if k > 0 {
                suite.push(',');
            }
            let total = total_runs(&spec, *w);
            let merged_path = self.reg.merged_path(id, w.name());
            let merged = merged_path.exists();
            // A margin-stopped merge covers less than `total`, so count
            // the merged journal's records instead of assuming coverage.
            let done = if merged {
                scan_done(&merged_path).len() as u64
            } else {
                self.reg.done_indices(id, w.name()).len() as u64
            };
            let mut row = ObjWriter::new();
            row.str_field("workload", w.name())
                .u64_field("total", total)
                .u64_field("done", done)
                .bool_field("merged", merged);
            suite.push_str(&row.finish());
        }
        suite.push(']');
        let mut o = ObjWriter::new();
        o.str_field("id", id).str_field("state", phase.state());
        if let Phase::Running(k) = phase {
            o.u64_field("running_wl", u64::from(k));
        }
        if let Phase::Failed(why) = &phase {
            o.str_field("error", why);
        }
        o.raw_field("suite", &suite);
        match lock(&self.active).as_ref() {
            Some(a) if a.study_id == id => {
                o.raw_field("active", &active_json(a));
                let rate = self.board.fleet_rate(id);
                o.f64_field("rate_per_sec", rate);
                let remaining = a.ledger.total().saturating_sub(a.ledger.done_count());
                // Non-finite (no live throughput yet) renders as null.
                o.f64_field("eta_sec", remaining as f64 / rate);
            }
            _ => {
                o.raw_field("active", "null");
            }
        }
        o.raw_field("workers", &self.board.workers_json(Some(id)));
        Some(o.finish())
    }

    fn journal(&self, id: &str) -> Result<PathBuf, String> {
        let (suite, phase) = {
            let studies = lock(&self.studies);
            let s = studies
                .iter()
                .find(|s| s.id == id)
                .ok_or_else(|| format!("unknown study {id}"))?;
            (s.spec.suite.clone(), s.phase.clone())
        };
        if !matches!(phase, Phase::Done) {
            return Err(format!("study {id} is {}, not done", phase.state()));
        }
        match suite.as_slice() {
            [w] => Ok(self.reg.merged_path(id, w.name())),
            _ => Err(format!(
                "study {id} spans {} workloads; fetch per-workload merged journals \
                 from {}",
                suite.len(),
                self.reg.study_dir(id).join("merged").display()
            )),
        }
    }

    fn trace(&self, id: &str) -> Option<String> {
        let known = lock(&self.studies).iter().any(|s| s.id == id);
        if !known && !self.board.knows_study(id) {
            return None;
        }
        Some(sea_profile::stitch_chrome_trace(&self.board.tracks_for(id)))
    }
}

/// A running fleet daemon.
pub struct Daemon {
    shared: Arc<Shared>,
    http: Option<SocketAddr>,
}

impl Daemon {
    /// Bind the worker socket (ephemeral local port), recover the study
    /// registry from disk, start the accept thread and — when configured
    /// — the HTTP surface.
    ///
    /// # Errors
    ///
    /// Socket binds that fail.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Daemon> {
        install_stop_signals();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let reg = Registry::new(&cfg.root);
        let shared = Arc::new(Shared {
            cfg,
            reg,
            addr,
            studies: Mutex::new(Vec::new()),
            active: Mutex::new(None),
            board: TelemetryBoard::new(),
            draining: AtomicBool::new(false),
            next_shard: AtomicU32::new(0),
            blocks_granted: AtomicU64::new(0),
            requeued_death: AtomicU64::new(0),
            requeued_stall: AtomicU64::new(0),
            child_respawns: AtomicU64::new(0),
            respawn_backoff_ms: AtomicU64::new(0),
            runs_done: AtomicU64::new(0),
            studies_done: AtomicU64::new(0),
        });

        // Recover persisted studies: fully merged ones are done, anything
        // else re-queues and resumes off its shard journals.
        {
            let mut studies = lock(&shared.studies);
            for (id, canonical) in shared.reg.load_all() {
                let Ok(spec) = StudySpec::from_json(&canonical) else {
                    continue;
                };
                let done = spec
                    .suite
                    .iter()
                    .all(|w| shared.reg.merged_path(&id, w.name()).exists());
                event!(Subsystem::Harness, Level::Info, "fleet.study_recovered";
                       "id" => id.clone(),
                       "done" => done);
                studies.push(StudyRec {
                    id,
                    canonical,
                    spec,
                    phase: if done { Phase::Done } else { Phase::Queued },
                });
            }
        }

        let accept = shared.clone();
        std::thread::Builder::new()
            .name("fleet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_requested() {
                        break;
                    }
                    let Ok(c) = conn else { continue };
                    let shared = accept.clone();
                    let _ = std::thread::Builder::new()
                        .name("fleet-conn".into())
                        .spawn(move || shared.serve_worker(c));
                }
            })?;

        let http = match &shared.cfg.serve {
            Some(bind) => {
                let bound = sea_observe::serve(bind)?;
                sea_observe::publish_studies(
                    Some(shared.clone() as Arc<dyn sea_observe::StudyApi>),
                );
                let s = shared.clone();
                sea_observe::publish_status(Some(Arc::new(move || s.status_doc())));
                let s = shared.clone();
                sea_observe::publish_metrics(Some(Arc::new(move || s.metrics_doc())));
                Some(bound)
            }
            None => None,
        };
        event!(Subsystem::Harness, Level::Info, "fleet.daemon_up";
               "worker_addr" => addr.to_string(),
               "http" => http.map_or_else(|| "off".to_string(), |a| a.to_string()));
        Ok(Daemon { shared, http })
    }

    /// The local socket workers connect to.
    pub fn worker_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The HTTP address, when `serve` was configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http
    }

    /// Submit a study spec directly (the HTTP `POST /studies` body goes
    /// through the same path).
    ///
    /// # Errors
    ///
    /// The rejection message (bad spec, non-binary journal format,
    /// persistence failure).
    pub fn submit(&self, spec_json: &str) -> Result<String, String> {
        sea_observe::StudyApi::submit(&*self.shared, spec_json)
    }

    /// Status document for one study, `None` when unknown.
    pub fn study_status(&self, id: &str) -> Option<String> {
        sea_observe::StudyApi::status(&*self.shared, id)
    }

    /// Run the scheduler until the process-wide stop flag fires: pick the
    /// first queued study, drive it to completion, repeat. Blocks.
    pub fn run(&self) {
        loop {
            if stop_requested() {
                break;
            }
            let next = {
                let studies = lock(&self.shared.studies);
                studies
                    .iter()
                    .find(|s| matches!(s.phase, Phase::Queued))
                    .map(|s| (s.id.clone(), s.canonical.clone(), s.spec.clone()))
            };
            match next {
                Some((id, canonical, spec)) => {
                    self.shared.process_study(&id, &canonical, &spec);
                }
                None => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        // Let any connected workers drain cleanly before the process goes.
        self.shared.draining.store(true, Ordering::Release);
        event!(Subsystem::Harness, Level::Info, "fleet.daemon_down";
               "runs_done" => self.shared.runs_done.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::scan_done;
    use crate::worker::run_worker;
    use sea_injection::{clear_stop, request_stop, run_campaign};

    fn tiny_spec() -> &'static str {
        r#"{"scale":"tiny","samples_per_component":3,"threads":1,"suite":["CRC32"]}"#
    }

    #[test]
    fn submit_rejects_jsonl_and_is_idempotent() {
        let root = std::env::temp_dir().join(format!("sea-fleet-api-{}", std::process::id()));
        let cfg = DaemonConfig {
            root: root.clone(),
            workers: 0,
            ..DaemonConfig::default()
        };
        let d = Daemon::start(cfg).unwrap();
        let err = d
            .submit(r#"{"scale":"tiny","journal_format":"jsonl","suite":["CRC32"]}"#)
            .unwrap_err();
        assert!(err.contains("journal_format"), "{err}");
        assert!(d.submit("][").is_err());

        let a = d.submit(tiny_spec()).unwrap();
        let b = d.submit(tiny_spec()).unwrap();
        assert_eq!(a, b, "resubmission is idempotent");
        assert!(a.contains("\"state\":\"queued\""), "{a}");
        let id = sea_trace::json::parse(&a)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let st = d.study_status(&id).unwrap();
        assert!(st.contains("\"state\":\"queued\""), "{st}");
        assert!(d.study_status("ffffffffffffffff").is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn two_in_process_workers_reproduce_the_single_process_journal() {
        let _guard = sea_trace::test_lock();
        clear_stop();
        let root = std::env::temp_dir().join(format!("sea-fleet-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = DaemonConfig {
            root: root.join("fleet"),
            workers: 0, // the test drives run_worker() on threads instead
            watchdog_ms: 60_000,
            ..DaemonConfig::default()
        };
        let d = Daemon::start(cfg).unwrap();
        let ackd = d.submit(tiny_spec()).unwrap();
        let id = sea_trace::json::parse(&ackd)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let addr = d.worker_addr().to_string();
        let daemon = std::thread::spawn(move || d.run());
        let ws: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || run_worker(&addr))
            })
            .collect();
        for w in ws {
            w.join().unwrap().unwrap();
        }

        // Reference: the same spec, single process, one thread.
        let spec = StudySpec::from_json(tiny_spec()).unwrap();
        let w = spec.suite[0];
        let built = w.build(spec.study.scale);
        let mut icfg = spec.study.injection_config_for(w);
        icfg.journal = Some(sea_injection::JournalSpec {
            dir: root.join("ref"),
            resume: false,
            format: JournalFormat::Binary,
            fsync: Default::default(),
        });
        run_campaign(w.name(), &built, &icfg).unwrap();
        let reference = std::fs::read(sea_injection::supervisor::journal_file(
            &root.join("ref"),
            "inject",
            w.name(),
            JournalFormat::Binary,
        ))
        .unwrap();

        let reg = Registry::new(root.join("fleet"));
        let merged_path = reg.merged_path(&id, w.name());
        for _ in 0..600 {
            if merged_path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let merged = std::fs::read(&merged_path).expect("merged journal exists");
        assert_eq!(
            merged, reference,
            "merged shard journals are byte-identical"
        );
        assert_eq!(
            scan_done(&merged_path).len(),
            18,
            "3 samples x 6 components"
        );
        assert!(reg.existing_shards(&id).len() >= 2, "both shards journaled");

        request_stop();
        daemon.join().unwrap();
        clear_stop();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stop_at_margin_halts_granting_and_merges_a_clean_partial_journal() {
        let _guard = sea_trace::test_lock();
        clear_stop();
        let root = std::env::temp_dir().join(format!("sea-fleet-margin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = DaemonConfig {
            root: root.join("fleet"),
            workers: 0, // in-process run_worker() threads below
            watchdog_ms: 60_000,
            ..DaemonConfig::default()
        };
        let d = Daemon::start(cfg).unwrap();
        // 40 samples x 6 components = 240 planned runs; specs are ordered
        // by injection cycle, so strata interleave and every stratum
        // accumulates samples from the first blocks on. A loose 0.5
        // margin is reached long before the plan is exhausted.
        let spec_json = concat!(
            r#"{"scale":"tiny","samples_per_component":40,"threads":1,"#,
            r#""suite":["CRC32"],"stop_at_margin":0.5}"#
        );
        let ack = d.submit(spec_json).unwrap();
        let id = sea_trace::json::parse(&ack)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let shared = d.shared.clone();
        let addr = d.worker_addr().to_string();
        let daemon = std::thread::spawn(move || d.run());
        let ws: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || run_worker(&addr))
            })
            .collect();
        for w in ws {
            w.join().unwrap().unwrap();
        }

        let reg = Registry::new(root.join("fleet"));
        let merged_path = reg.merged_path(&id, "crc32");
        for _ in 0..600 {
            if merged_path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let done = scan_done(&merged_path);
        assert!(!done.is_empty(), "early stop still journals something");
        assert!(
            (done.len() as u64) < 240,
            "margin stop left the plan unfinished: {} of 240",
            done.len()
        );
        let mut uniq = done.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), done.len(), "merged journal has no duplicates");

        // The telemetry plane saw the fleet: the study status carries a
        // per-worker array, and the stitched trace parses as a chrome doc
        // with one thread-name metadata record per worker.
        let status = sea_observe::StudyApi::status(&*shared, &id).unwrap();
        let doc = sea_trace::json::parse(&status).unwrap();
        assert_eq!(doc.get("state").and_then(|s| s.as_str()), Some("done"));
        let workers = doc.get("workers").expect("status lists workers");
        match workers {
            sea_trace::json::Json::Arr(items) => assert!(
                items.len() >= 2,
                "both in-process workers reported telemetry"
            ),
            other => panic!("workers is not an array: {other:?}"),
        }
        let trace = sea_observe::StudyApi::trace(&*shared, &id).expect("stitched trace");
        let tdoc = sea_trace::json::parse(&trace).expect("trace parses as JSON");
        let events = tdoc.get("traceEvents").expect("traceEvents member");
        if let sea_trace::json::Json::Arr(evs) = events {
            let tids: std::collections::BTreeSet<u64> = evs
                .iter()
                .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
                .filter_map(|e| e.get("tid").and_then(|t| t.as_u64()))
                .collect();
            assert!(tids.len() >= 2, "one tid track per worker: {tids:?}");
        } else {
            panic!("traceEvents is not an array");
        }

        request_stop();
        daemon.join().unwrap();
        clear_stop();
        std::fs::remove_dir_all(&root).unwrap();
    }
}

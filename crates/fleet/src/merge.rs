//! Deterministic shard-journal merge: N per-shard `.seaj` journals in,
//! one journal byte-identical to a single-process run out.
//!
//! The heavy lifting — header equality across shards, stable sort,
//! duplicate handling, re-framing — is [`sea_durable::merge_journals`];
//! this module supplies the campaign-specific merge key (the `"i"` spec
//! index every [`sea_injection::verdict_line`] payload carries) and the
//! crash-safe file plumbing (write to a temp sibling, fsync, rename).

use sea_trace::json;
use std::path::{Path, PathBuf};

pub use sea_durable::{MergeAudit, MergeError};

/// How a merge failed: shard I/O, or the merge itself.
#[derive(Debug)]
pub enum MergeFail {
    /// Reading a shard journal or writing the merged file failed.
    Io(PathBuf, std::io::Error),
    /// The shard set is inconsistent (identity mismatch, conflicting
    /// duplicate, corrupt container).
    Merge(MergeError),
}

impl std::fmt::Display for MergeFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeFail::Io(p, e) => write!(f, "merge I/O on {}: {e}", p.display()),
            MergeFail::Merge(e) => write!(f, "merge failed: {e}"),
        }
    }
}

impl std::error::Error for MergeFail {}

/// The merge key of one record payload: its `"i"` member.
pub fn index_of(payload: &[u8]) -> Option<u64> {
    let line = std::str::from_utf8(payload).ok()?;
    json::parse(line).ok()?.get("i")?.as_u64()
}

/// Merge the shard journal files into `out`, atomically (temp sibling +
/// rename), returning the audit. Shard files that do not exist are
/// skipped — a shard whose worker never got a grant for this workload has
/// no journal, and that is fine; at least one must exist.
///
/// # Errors
///
/// [`MergeFail`] on I/O trouble or an inconsistent shard set.
pub fn merge_shard_journals(shards: &[PathBuf], out: &Path) -> Result<MergeAudit, MergeFail> {
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    for path in shards {
        match std::fs::read(path) {
            Ok(bytes) if !bytes.is_empty() => blobs.push(bytes),
            Ok(_) => {} // created but never written: nothing to merge
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(MergeFail::Io(path.clone(), e)),
        }
    }
    let refs: Vec<&[u8]> = blobs.iter().map(Vec::as_slice).collect();
    let (merged, audit) = sea_durable::merge_journals(&refs, index_of).map_err(MergeFail::Merge)?;
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| MergeFail::Io(dir.to_path_buf(), e))?;
    }
    let tmp = out.with_extension("seaj.tmp");
    std::fs::write(&tmp, &merged).map_err(|e| MergeFail::Io(tmp.clone(), e))?;
    let f = std::fs::File::open(&tmp).map_err(|e| MergeFail::Io(tmp.clone(), e))?;
    f.sync_all().map_err(|e| MergeFail::Io(tmp.clone(), e))?;
    std::fs::rename(&tmp, out).map_err(|e| MergeFail::Io(out.to_path_buf(), e))?;
    Ok(audit)
}

/// Scan one shard journal for the spec indices it has completed, plus its
/// per-index `(class-name)` when the record carries one. Torn tails are
/// tolerated (the partial record is simply not counted); a missing file is
/// an empty set.
pub fn scan_done(path: &Path) -> Vec<u64> {
    let Ok(bytes) = std::fs::read(path) else {
        return Vec::new();
    };
    let Ok(scan) = sea_durable::scan(&bytes) else {
        return Vec::new();
    };
    scan.records.iter().filter_map(|p| index_of(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_durable::{encode_file_header, encode_record};

    fn rec(seq: u64, i: u64) -> Vec<u8> {
        encode_record(
            seq,
            format!("{{\"i\":{i},\"class\":\"masked\"}}").as_bytes(),
        )
    }

    fn shard(header: &str, indices: &[u64]) -> Vec<u8> {
        let mut out = encode_file_header(header.as_bytes());
        for (k, &i) in indices.iter().enumerate() {
            out.extend_from_slice(&rec(k as u64 + 1, i));
        }
        out
    }

    #[test]
    fn merge_reproduces_the_single_writer_file() {
        let dir = std::env::temp_dir().join(format!("sea-fleet-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let h = r#"{"journal":"sea-campaign","total":6}"#;
        let a = dir.join("shard-0.seaj");
        let b = dir.join("shard-1.seaj");
        std::fs::write(&a, shard(h, &[0, 3, 4])).unwrap();
        std::fs::write(&b, shard(h, &[5, 1, 2])).unwrap();
        let out = dir.join("merged").join("x.inject.seaj");
        let audit = merge_shard_journals(&[a, b, dir.join("shard-9.seaj")], &out).unwrap();
        assert_eq!(audit.shards, 2);
        assert_eq!(audit.merged, 6);
        assert_eq!(std::fs::read(&out).unwrap(), shard(h, &[0, 1, 2, 3, 4, 5]));
        assert_eq!(scan_done(&out), vec![0, 1, 2, 3, 4, 5]);
        assert!(scan_done(&dir.join("absent.seaj")).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identity_mismatch_fails_and_leaves_no_output() {
        let dir = std::env::temp_dir().join(format!("sea-fleet-merge2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("shard-0.seaj");
        let b = dir.join("shard-1.seaj");
        std::fs::write(&a, shard(r#"{"seed":"a"}"#, &[0])).unwrap();
        std::fs::write(&b, shard(r#"{"seed":"b"}"#, &[1])).unwrap();
        let out = dir.join("merged.seaj");
        let err = merge_shard_journals(&[a, b], &out).unwrap_err();
        assert!(matches!(
            err,
            MergeFail::Merge(MergeError::HeaderMismatch { shard: 1 })
        ));
        assert!(!out.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

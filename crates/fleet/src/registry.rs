//! The on-disk study registry.
//!
//! Everything the daemon knows lives under one root directory, so a
//! restarted daemon recovers the full picture from a filesystem scan:
//!
//! ```text
//! <root>/
//!   <study-id>/spec.json            # canonical spec (identity)
//!   <study-id>/shard-<n>/<slug>.inject.seaj   # one journal per worker per workload
//!   <study-id>/merged/<slug>.inject.seaj      # deterministic merge output
//! ```
//!
//! A study's identity *is* the FNV-1a hash of its canonical spec
//! document, so resubmitting the same spec is idempotent — the daemon
//! answers with the existing study instead of queueing a duplicate.

use sea_core::StudySpec;
use sea_injection::supervisor::{fnv1a, journal_file};
use sea_injection::JournalFormat;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Derive a study's identifier from its canonical spec rendering.
pub fn study_id(canonical_spec: &str) -> String {
    format!("{:016x}", fnv1a(canonical_spec.as_bytes()))
}

/// Path helpers over one registry root.
#[derive(Clone, Debug)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// A registry rooted at `root` (created on first persist).
    pub fn new(root: impl Into<PathBuf>) -> Registry {
        Registry { root: root.into() }
    }

    /// The registry root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// One study's directory.
    pub fn study_dir(&self, id: &str) -> PathBuf {
        self.root.join(id)
    }

    /// One study's canonical spec file.
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.study_dir(id).join("spec.json")
    }

    /// One shard's journal directory within a study.
    pub fn shard_dir(&self, id: &str, shard: u32) -> PathBuf {
        self.study_dir(id).join(format!("shard-{shard}"))
    }

    /// The merged journal for one workload of a study.
    pub fn merged_path(&self, id: &str, workload: &str) -> PathBuf {
        journal_file(
            &self.study_dir(id).join("merged"),
            "inject",
            workload,
            JournalFormat::Binary,
        )
    }

    /// Persist a study's canonical spec, creating its directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&self, id: &str, canonical_spec: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(self.study_dir(id))?;
        std::fs::write(self.spec_path(id), canonical_spec)
    }

    /// Load every persisted study: `(id, canonical spec)`, sorted by id so
    /// recovery order is deterministic. Unreadable entries are skipped —
    /// a half-written spec from a crash must not wedge the daemon.
    pub fn load_all(&self) -> Vec<(String, String)> {
        let Ok(entries) = std::fs::read_dir(&self.root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for e in entries.flatten() {
            let id = e.file_name().to_string_lossy().to_string();
            let Ok(text) = std::fs::read_to_string(self.spec_path(&id)) else {
                continue;
            };
            // Only trust entries whose directory name matches their spec
            // hash — anything else is foreign or torn.
            if StudySpec::from_json(&text)
                .map(|s| study_id(&s.to_json()) == id)
                .unwrap_or(false)
            {
                out.push((id, text));
            }
        }
        out.sort();
        out
    }

    /// Numbered shard directories that already exist for a study.
    pub fn existing_shards(&self, id: &str) -> Vec<u32> {
        let Ok(entries) = std::fs::read_dir(self.study_dir(id)) else {
            return Vec::new();
        };
        let mut out: Vec<u32> = entries
            .flatten()
            .filter_map(|e| {
                e.file_name()
                    .to_string_lossy()
                    .strip_prefix("shard-")?
                    .parse()
                    .ok()
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Shard journal files for one workload (existing shards only; the
    /// files themselves may not exist yet).
    pub fn shard_journals(&self, id: &str, workload: &str) -> Vec<PathBuf> {
        self.existing_shards(id)
            .into_iter()
            .map(|k| {
                journal_file(
                    &self.shard_dir(id, k),
                    "inject",
                    workload,
                    JournalFormat::Binary,
                )
            })
            .collect()
    }

    /// Union of completed spec indices across every shard journal of one
    /// workload — the resume set a restarted daemon seeds its ledger with.
    pub fn done_indices(&self, id: &str, workload: &str) -> BTreeSet<u64> {
        let mut done = BTreeSet::new();
        for j in self.shard_journals(id, workload) {
            done.extend(crate::merge::scan_done(&j));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_registry_round_trips() {
        let spec = StudySpec::from_json(r#"{"scale":"tiny","suite":["MatMul"]}"#).unwrap();
        let canonical = spec.to_json();
        let id = study_id(&canonical);
        assert_eq!(id, study_id(&canonical), "deterministic");
        assert_eq!(id.len(), 16);

        let root = std::env::temp_dir().join(format!("sea-fleet-reg-{}", std::process::id()));
        let reg = Registry::new(&root);
        assert!(reg.load_all().is_empty());
        reg.persist(&id, &canonical).unwrap();
        // A foreign directory and a torn spec are both ignored.
        std::fs::create_dir_all(root.join("not-a-study")).unwrap();
        std::fs::write(root.join("not-a-study").join("spec.json"), "{{{").unwrap();
        assert_eq!(reg.load_all(), vec![(id.clone(), canonical.clone())]);

        assert!(reg.existing_shards(&id).is_empty());
        std::fs::create_dir_all(reg.shard_dir(&id, 0)).unwrap();
        std::fs::create_dir_all(reg.shard_dir(&id, 2)).unwrap();
        assert_eq!(reg.existing_shards(&id), vec![0, 2]);
        assert_eq!(reg.shard_journals(&id, "MatMul").len(), 2);
        assert!(reg.done_indices(&id, "MatMul").is_empty());
        assert!(reg
            .merged_path(&id, "Jpeg C")
            .ends_with(format!("{id}/merged/jpeg_c.inject.seaj")));
        std::fs::remove_dir_all(&root).unwrap();
    }
}

//! # sea-fleet — a sharded multi-process campaign daemon with
//! deterministic merge
//!
//! The paper's campaigns (§IV, 5k–17k injections per workload on a
//! gem5-style model) are embarrassingly parallel, and the repo already
//! exploits that *within* one process (the supervisor's worker threads).
//! This crate scales the same experiment across worker **processes**
//! without giving up the single most valuable property the repo has
//! accumulated: the outcome journal of a campaign is a deterministic
//! function of its spec.
//!
//! A daemon ([`Daemon`]) accepts study specs ([`sea_core::StudySpec`])
//! over the embedded `sea-observe` HTTP surface (`POST /studies`), shards
//! each workload's injection index space into block claims served over a
//! line-JSON TCP protocol, and spawns `fleet worker` child processes that
//! rebuild the identical [`sea_injection::CampaignPlan`] and stream
//! verdicts into their own crash-consistent `.seaj` shard journals
//! (`sea-durable`). Workers that die (socket EOF) or stall past the grant
//! watchdog get their blocks requeued for other shards to steal; killed
//! blocks re-execute elsewhere and produce *byte-identical duplicate*
//! records, which the merge deduplicates.
//!
//! When a workload's index space is covered, the daemon performs the
//! **deterministic merge** ([`merge_shard_journals`]): identity headers
//! validated across shards, records stably sorted by spec index,
//! re-framed — the merged journal is byte-identical to a single-process
//! `--threads 1` run of the same spec (CI-enforced, including a
//! SIGKILL-a-worker case). Everything is resumable: on restart the daemon
//! rescans shard journals, recomputes the outstanding block set and
//! re-serves only unfinished work.
//!
//! The substitution story mirrors the rest of the repo: where DrSEUs
//! drives heterogeneous boards from a central database, `sea-fleet`
//! drives deterministic simulated campaigns from a filesystem registry —
//! and determinism upgrades "approximately collected results" to
//! "byte-identical to the reference run".
//!
//! A **telemetry plane** rides the same worker socket: workers push
//! throttled [`proto::ToDaemon::Telemetry`] frames (counter deltas,
//! histogram snapshots, supervisor health, recent trace events) that the
//! daemon aggregates ([`TelemetryBoard`]) into per-worker-labeled and
//! rolled-up `/metrics` series, a `workers` array in study status, a
//! multiplexed `/events` stream and stitched per-worker Chrome traces
//! (`/studies/<id>/trace`). The daemon's live convergence tracker also
//! closes the loop fleet-wide: a study with `stop_at_margin` set stops
//! granting blocks once every stratum's adjusted margin is under the
//! threshold, drains the fleet, and merges the partial shard journals
//! (audit-clean, duplicate-free — just not byte-identical to an
//! exhaustive run, exactly like single-process early stop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod ledger;
mod merge;
pub mod proto;
mod registry;
mod telemetry;
mod worker;

pub use daemon::{Daemon, DaemonConfig};
pub use ledger::{Ledger, Outstanding};
pub use merge::{merge_shard_journals, scan_done, MergeAudit, MergeError, MergeFail};
pub use registry::{study_id, Registry};
pub use telemetry::{Frame, TelemetryBoard, WorkerState, HEALTH_FIELDS};
pub use worker::{canonicalize_spec, install_stop_signals, run_worker, WorkerError};

//! The block ledger: which injection indices of one workload are done,
//! granted, or still waiting.
//!
//! The daemon shards a campaign's index space `[0, total)` into
//! contiguous block claims, mirroring the in-process supervisor's
//! claiming policy (blocks shrink as the tail approaches so stragglers
//! even out). A grant carries a deadline; a worker that dies (socket EOF)
//! or stalls past it gets its blocks requeued for other shards to steal.
//! Completion is tracked per *index*, so a block that was requeued and
//! then completed twice — once by the stalled original, once by the
//! thief — settles idempotently, and the byte-identical duplicate journal
//! lines are deduplicated by the merge.

use std::collections::VecDeque;
use std::time::Instant;

/// Largest block handed to one worker in one grant.
const MAX_BLOCK: u64 = 64;

/// A granted, not-yet-completed block.
#[derive(Clone, Copy, Debug)]
pub struct Outstanding {
    /// First index of the block.
    pub start: u64,
    /// One past the last index.
    pub end: u64,
    /// The shard holding the grant.
    pub shard: u32,
    /// When the grant was issued (stall watchdog reference).
    pub granted_at: Instant,
}

/// Index-space bookkeeping for one workload of one study.
pub struct Ledger {
    total: u64,
    done: Vec<bool>,
    done_count: u64,
    pending: VecDeque<(u64, u64)>,
    outstanding: Vec<Outstanding>,
}

impl Ledger {
    /// A ledger over `[0, total)` with `already_done` indices (from shard
    /// journal scans) pre-marked. Out-of-range indices are ignored.
    pub fn new(total: u64, already_done: impl IntoIterator<Item = u64>) -> Ledger {
        let mut done = vec![false; total as usize];
        let mut done_count = 0u64;
        for i in already_done {
            if i < total && !done[i as usize] {
                done[i as usize] = true;
                done_count += 1;
            }
        }
        let mut pending = VecDeque::new();
        let mut i = 0u64;
        while i < total {
            if done[i as usize] {
                i += 1;
                continue;
            }
            let start = i;
            while i < total && !done[i as usize] {
                i += 1;
            }
            pending.push_back((start, i));
        }
        Ledger {
            total,
            done,
            done_count,
            pending,
            outstanding: Vec::new(),
        }
    }

    /// Total indices in the workload.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Completed indices.
    pub fn done_count(&self) -> u64 {
        self.done_count
    }

    /// Indices currently granted and not yet reported done.
    pub fn outstanding_count(&self) -> u64 {
        self.outstanding.iter().map(|o| o.end - o.start).sum()
    }

    /// True once every index is done.
    pub fn complete(&self) -> bool {
        self.done_count == self.total
    }

    /// Grant the next block to `shard`. Block size tracks the remaining
    /// ungranted work divided across the worker fleet (like the in-process
    /// supervisor: big blocks early for locality, small blocks late so the
    /// tail spreads), capped at [`MAX_BLOCK`]. `None` when everything is
    /// granted or done — the caller answers `wait` and the worker polls
    /// again (it may steal requeued work next time).
    pub fn claim(&mut self, shard: u32, workers: u64) -> Option<(u64, u64)> {
        let (start, end) = self.pending.pop_front()?;
        let remaining: u64 = (end - start) + self.pending.iter().map(|&(s, e)| e - s).sum::<u64>();
        let block = (remaining / (workers.max(1) * 4)).clamp(1, MAX_BLOCK);
        let granted_end = (start + block).min(end);
        if granted_end < end {
            self.pending.push_front((granted_end, end));
        }
        self.outstanding.push(Outstanding {
            start,
            end: granted_end,
            shard,
            granted_at: Instant::now(),
        });
        Some((start, granted_end))
    }

    /// Record a completed block: marks its indices done and releases the
    /// matching grant. Idempotent — re-completions of stolen blocks only
    /// flip bits that are already set. Returns the number of indices newly
    /// marked done.
    pub fn mark_done(&mut self, shard: u32, start: u64, end: u64) -> u64 {
        let mut fresh = 0u64;
        for i in start..end.min(self.total) {
            if !self.done[i as usize] {
                self.done[i as usize] = true;
                fresh += 1;
            }
        }
        self.done_count += fresh;
        // Release the exact grant if this shard still holds it (it may
        // have been requeued away by the stall watchdog already).
        if let Some(k) = self
            .outstanding
            .iter()
            .position(|o| o.shard == shard && o.start == start && o.end == end)
        {
            self.outstanding.swap_remove(k);
        }
        fresh
    }

    /// Requeue every block granted to `shard` (worker death). Indices that
    /// are already done (the block raced its own requeue) are skipped.
    /// Returns the number of indices requeued.
    pub fn requeue_shard(&mut self, shard: u32) -> u64 {
        let (dead, live): (Vec<_>, Vec<_>) =
            self.outstanding.drain(..).partition(|o| o.shard == shard);
        self.outstanding = live;
        let mut n = 0;
        for o in dead {
            n += self.requeue_range(o.start, o.end);
        }
        n
    }

    /// Requeue every grant older than `watchdog_ms` (stalled worker).
    /// Returns the number of indices requeued.
    pub fn requeue_stalled(&mut self, watchdog_ms: u64) -> u64 {
        let now = Instant::now();
        let (stalled, live): (Vec<_>, Vec<_>) = self
            .outstanding
            .drain(..)
            .partition(|o| now.duration_since(o.granted_at).as_millis() as u64 >= watchdog_ms);
        self.outstanding = live;
        let mut n = 0;
        for o in stalled {
            n += self.requeue_range(o.start, o.end);
        }
        n
    }

    fn requeue_range(&mut self, start: u64, end: u64) -> u64 {
        let mut n = 0;
        let mut i = start;
        while i < end {
            if self.done[i as usize] {
                i += 1;
                continue;
            }
            let s = i;
            while i < end && !self.done[i as usize] {
                i += 1;
            }
            // Front of the queue: requeued work is the oldest, steal it
            // first so a died-early block doesn't wait out the whole tail.
            self.pending.push_front((s, i));
            n += i - s;
        }
        n
    }

    /// Per-shard outstanding snapshot for status documents.
    pub fn outstanding(&self) -> &[Outstanding] {
        &self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Drive a ledger to completion with `shards` greedy workers and
    /// return every granted range per completion order.
    fn drain(ledger: &mut Ledger, shards: u32) {
        while !ledger.complete() {
            let mut granted = Vec::new();
            for s in 0..shards {
                while let Some((a, b)) = ledger.claim(s, u64::from(shards)) {
                    granted.push((s, a, b));
                }
            }
            assert!(!granted.is_empty(), "no grants but incomplete");
            for (s, a, b) in granted {
                ledger.mark_done(s, a, b);
            }
        }
    }

    #[test]
    fn grants_cover_the_space_exactly_once() {
        let mut l = Ledger::new(500, []);
        let mut seen = BTreeSet::new();
        let mut grants = Vec::new();
        while let Some((a, b)) = l.claim(0, 4) {
            assert!(b > a && b - a <= 64);
            for i in a..b {
                assert!(seen.insert(i), "index {i} granted twice");
            }
            grants.push((a, b));
        }
        assert_eq!(seen.len(), 500);
        assert_eq!(l.outstanding_count(), 500);
        for (a, b) in grants {
            l.mark_done(0, a, b);
        }
        assert!(l.complete());
        assert_eq!(l.outstanding_count(), 0);
    }

    #[test]
    fn resume_skips_already_done_indices() {
        let mut l = Ledger::new(10, [0, 1, 2, 7, 7, 99]);
        assert_eq!(l.done_count(), 4);
        let mut granted = BTreeSet::new();
        while let Some((a, b)) = l.claim(0, 1) {
            granted.extend(a..b);
        }
        assert_eq!(granted, BTreeSet::from([3, 4, 5, 6, 8, 9]));
    }

    #[test]
    fn dead_shard_blocks_are_stolen() {
        let mut l = Ledger::new(100, []);
        let (a, b) = l.claim(0, 2).unwrap();
        let (c, d) = l.claim(1, 2).unwrap();
        // Shard 0 "completes" a prefix of its block via the thief later;
        // first it dies with the whole block outstanding.
        assert_eq!(l.requeue_shard(0), b - a);
        assert_eq!(l.outstanding_count(), d - c);
        // The requeued range comes back out first (front of the queue).
        let (e, f) = l.claim(1, 2).unwrap();
        assert_eq!(e, a, "stolen block is served before fresh work");
        l.mark_done(1, c, d);
        l.mark_done(1, e, f);
        drain(&mut l, 2);
        assert!(l.complete());
    }

    #[test]
    fn stalled_grants_requeue_and_late_completion_is_idempotent() {
        let mut l = Ledger::new(64, []);
        let (a, b) = l.claim(0, 1).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(l.requeue_stalled(1), b - a);
        assert_eq!(l.outstanding_count(), 0);
        // Thief takes it and finishes.
        let (c, d) = l.claim(1, 1).unwrap();
        assert_eq!((c, d), (a, b));
        assert_eq!(l.mark_done(1, c, d), d - c);
        // The stalled original limps in afterward: no double counting.
        assert_eq!(l.mark_done(0, a, b), 0);
        drain(&mut l, 1);
        assert_eq!(l.done_count(), 64);
    }

    #[test]
    fn fresh_grants_survive_the_stall_sweep() {
        let mut l = Ledger::new(32, []);
        let _ = l.claim(0, 1).unwrap();
        assert_eq!(l.requeue_stalled(60_000), 0);
        assert_eq!(l.outstanding().len(), 1);
    }
}

//! Loadable program images.
//!
//! An [`Image`] is SEA's equivalent of a statically linked ELF executable:
//! a set of segments with virtual addresses and permissions, an entry point,
//! and a symbol table for debugging. The kernel's loader maps the segments
//! into a fresh address space.

use std::collections::BTreeMap;
use std::fmt;

/// Permissions of one image segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentFlags {
    /// Segment is readable.
    pub read: bool,
    /// Segment is writable.
    pub write: bool,
    /// Segment is executable.
    pub execute: bool,
}

impl SegmentFlags {
    /// Read + execute (text).
    pub const TEXT: SegmentFlags = SegmentFlags {
        read: true,
        write: false,
        execute: true,
    };
    /// Read + write (data, bss, stack).
    pub const DATA: SegmentFlags = SegmentFlags {
        read: true,
        write: true,
        execute: false,
    };
    /// Read only (rodata).
    pub const RODATA: SegmentFlags = SegmentFlags {
        read: true,
        write: false,
        execute: false,
    };
}

impl fmt::Display for SegmentFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// One loadable segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Virtual load address (page alignment is the loader's concern).
    pub vaddr: u32,
    /// Initialized bytes. The loaded size may exceed this (`mem_size`).
    pub data: Vec<u8>,
    /// Total size in memory; any bytes past `data.len()` are zero-filled
    /// (bss-style). Always `>= data.len()`.
    pub mem_size: u32,
    /// Access permissions.
    pub flags: SegmentFlags,
}

impl Segment {
    /// End address (exclusive) of the segment in memory.
    pub fn end(&self) -> u32 {
        self.vaddr + self.mem_size
    }
}

/// Error produced while assembling or validating an image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// Two segments overlap in the virtual address space.
    Overlap {
        /// Start of the first overlapping segment.
        first: u32,
        /// Start of the second overlapping segment.
        second: u32,
    },
    /// A segment's initialized data exceeds its memory size.
    DataLargerThanMem {
        /// Segment start address.
        vaddr: u32,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Overlap { first, second } => {
                write!(f, "segments at {first:#x} and {second:#x} overlap")
            }
            ImageError::DataLargerThanMem { vaddr } => {
                write!(f, "segment at {vaddr:#x} has more data than memory")
            }
        }
    }
}

impl std::error::Error for ImageError {}

/// A complete executable image.
#[derive(Clone, PartialEq, Debug)]
pub struct Image {
    segments: Vec<Segment>,
    entry: u32,
    symbols: BTreeMap<u32, String>,
}

impl Image {
    /// Builds an image from its parts, validating segment layout.
    ///
    /// # Errors
    ///
    /// Returns an error if segments overlap or a segment's data exceeds its
    /// memory size.
    pub fn new(
        mut segments: Vec<Segment>,
        entry: u32,
        symbols: BTreeMap<u32, String>,
    ) -> Result<Image, ImageError> {
        for seg in &segments {
            if (seg.data.len() as u32) > seg.mem_size {
                return Err(ImageError::DataLargerThanMem { vaddr: seg.vaddr });
            }
        }
        segments.sort_by_key(|s| s.vaddr);
        for pair in segments.windows(2) {
            if pair[0].end() > pair[1].vaddr {
                return Err(ImageError::Overlap {
                    first: pair[0].vaddr,
                    second: pair[1].vaddr,
                });
            }
        }
        Ok(Image {
            segments,
            entry,
            symbols,
        })
    }

    /// The segments, sorted by virtual address.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Entry-point virtual address.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Base address of the first executable segment.
    ///
    /// # Panics
    ///
    /// Panics if the image has no executable segment.
    pub fn text_base(&self) -> u32 {
        self.segments
            .iter()
            .find(|s| s.flags.execute)
            .map(|s| s.vaddr)
            .expect("image has no executable segment")
    }

    /// Total executable bytes across segments (the program's code size; the
    /// paper correlates small `.text` footprints with beam-only
    /// Application-Crash excess).
    pub fn text_bytes(&self) -> u32 {
        self.segments
            .iter()
            .filter(|s| s.flags.execute)
            .map(|s| s.mem_size)
            .sum()
    }

    /// Total initialized + zero-filled data bytes (non-executable segments).
    pub fn data_bytes(&self) -> u32 {
        self.segments
            .iter()
            .filter(|s| !s.flags.execute)
            .map(|s| s.mem_size)
            .sum()
    }

    /// Symbol table: address → name, for diagnostics.
    pub fn symbols(&self) -> &BTreeMap<u32, String> {
        &self.symbols
    }

    /// Name of the nearest symbol at or below `addr`, with offset.
    pub fn symbolize(&self, addr: u32) -> Option<(&str, u32)> {
        self.symbols
            .range(..=addr)
            .next_back()
            .map(|(base, name)| (name.as_str(), addr - base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(vaddr: u32, len: u32, flags: SegmentFlags) -> Segment {
        Segment {
            vaddr,
            data: vec![0; len as usize],
            mem_size: len,
            flags,
        }
    }

    #[test]
    fn rejects_overlapping_segments() {
        let e = Image::new(
            vec![
                seg(0x1000, 0x100, SegmentFlags::TEXT),
                seg(0x10F0, 0x10, SegmentFlags::DATA),
            ],
            0x1000,
            BTreeMap::new(),
        );
        assert!(matches!(e, Err(ImageError::Overlap { .. })));
    }

    #[test]
    fn accepts_adjacent_segments_and_sorts() {
        let img = Image::new(
            vec![
                seg(0x2000, 0x100, SegmentFlags::DATA),
                seg(0x1000, 0x1000, SegmentFlags::TEXT),
            ],
            0x1000,
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(img.segments()[0].vaddr, 0x1000);
        assert_eq!(img.text_base(), 0x1000);
        assert_eq!(img.text_bytes(), 0x1000);
        assert_eq!(img.data_bytes(), 0x100);
    }

    #[test]
    fn bss_tail_allowed() {
        let s = Segment {
            vaddr: 0x3000,
            data: vec![1, 2, 3],
            mem_size: 0x100,
            flags: SegmentFlags::DATA,
        };
        let img = Image::new(vec![s], 0x3000, BTreeMap::new()).unwrap();
        assert_eq!(img.segments()[0].end(), 0x3100);
    }

    #[test]
    fn symbolize_finds_nearest_below() {
        let mut syms = BTreeMap::new();
        syms.insert(0x1000, "main".to_string());
        syms.insert(0x1040, "loop".to_string());
        let img = Image::new(vec![seg(0x1000, 0x100, SegmentFlags::TEXT)], 0x1000, syms).unwrap();
        assert_eq!(img.symbolize(0x1044), Some(("loop", 4)));
        assert_eq!(img.symbolize(0x103C), Some(("main", 0x3C)));
        assert_eq!(img.symbolize(0xFFF), None);
    }
}

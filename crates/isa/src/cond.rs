//! Condition codes.

use std::fmt;

/// A condition code, evaluated against the CPSR `N`/`Z`/`C`/`V` flags.
///
/// Every AR32 instruction carries a condition field in bits `[31:28]`,
/// exactly like classic ARM. An instruction whose condition is false is
/// architecturally a no-op (it still occupies a pipeline slot and an
/// instruction-cache access).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq = 0,
    /// Not equal (`Z == 0`).
    Ne = 1,
    /// Carry set / unsigned higher-or-same (`C == 1`).
    Cs = 2,
    /// Carry clear / unsigned lower (`C == 0`).
    Cc = 3,
    /// Minus / negative (`N == 1`).
    Mi = 4,
    /// Plus / positive or zero (`N == 0`).
    Pl = 5,
    /// Overflow set (`V == 1`).
    Vs = 6,
    /// Overflow clear (`V == 0`).
    Vc = 7,
    /// Unsigned higher (`C == 1 && Z == 0`).
    Hi = 8,
    /// Unsigned lower or same (`C == 0 || Z == 1`).
    Ls = 9,
    /// Signed greater or equal (`N == V`).
    Ge = 10,
    /// Signed less than (`N != V`).
    Lt = 11,
    /// Signed greater than (`Z == 0 && N == V`).
    Gt = 12,
    /// Signed less or equal (`Z == 1 || N != V`).
    Le = 13,
    /// Always.
    Al = 14,
    /// Never. Encodable, architecturally a no-op; the assembler never emits
    /// it but a bit flip in the condition field can produce it.
    Nv = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Cs,
        Cond::Cc,
        Cond::Mi,
        Cond::Pl,
        Cond::Vs,
        Cond::Vc,
        Cond::Hi,
        Cond::Ls,
        Cond::Ge,
        Cond::Lt,
        Cond::Gt,
        Cond::Le,
        Cond::Al,
        Cond::Nv,
    ];

    /// The 4-bit encoding of this condition.
    pub fn bits(self) -> u32 {
        self as u32
    }

    /// Decodes a 4-bit condition field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    pub fn from_bits(bits: u32) -> Cond {
        Cond::ALL[bits as usize]
    }

    /// Evaluates the condition against the four CPSR flags.
    pub fn holds(self, n: bool, z: bool, c: bool, v: bool) -> bool {
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Cs => c,
            Cond::Cc => !c,
            Cond::Mi => n,
            Cond::Pl => !n,
            Cond::Vs => v,
            Cond::Vc => !v,
            Cond::Hi => c && !z,
            Cond::Ls => !c || z,
            Cond::Ge => n == v,
            Cond::Lt => n != v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Al => true,
            Cond::Nv => false,
        }
    }

    /// The logically opposite condition (`Al`/`Nv` map to each other).
    pub fn negate(self) -> Cond {
        Cond::from_bits(self.bits() ^ 1)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Cs => "cs",
            Cond::Cc => "cc",
            Cond::Mi => "mi",
            Cond::Pl => "pl",
            Cond::Vs => "vs",
            Cond::Vc => "vc",
            Cond::Hi => "hi",
            Cond::Ls => "ls",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
            Cond::Nv => "nv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_bits(c.bits()), c);
        }
    }

    #[test]
    fn negation_is_involutive_and_opposite() {
        // For every flag combination, a condition and its negation disagree
        // (except that Al/Nv are the constant pair).
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for bits in 0..16u32 {
                let (n, z, cf, v) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0);
                assert_ne!(c.holds(n, z, cf, v), c.negate().holds(n, z, cf, v), "{c:?}");
            }
        }
    }

    #[test]
    fn signed_comparisons() {
        // n != v means less-than after a SUB that set the flags.
        assert!(Cond::Lt.holds(true, false, false, false));
        assert!(Cond::Ge.holds(false, false, false, false));
        assert!(Cond::Gt.holds(false, false, true, false));
        assert!(!Cond::Gt.holds(true, true, false, true));
    }
}

//! The AR32 instruction model.
//!
//! # Binary encoding overview
//!
//! Every instruction is one 32-bit word:
//!
//! ```text
//! [31:28] cond   [27:24] class   [23:0] class-specific
//! ```
//!
//! | class | group |
//! |-------|-------|
//! | `0x0` | data-processing, register operand |
//! | `0x1` | data-processing, rotated-immediate operand |
//! | `0x2` | multiply / divide |
//! | `0x3` | load/store word/byte/half |
//! | `0x4` | load/store multiple |
//! | `0x5` | branch (B/BL) |
//! | `0x6` | floating point (VFP-like, single precision) |
//! | `0x7` | system (SVC, MRS, MSR, CPS, ERET, BX, NOP, HALT, WFI) |
//! | `0x8` | wide moves (MOVW/MOVT) |
//!
//! Per-class field layouts are documented on the corresponding [`Insn`]
//! variants. The encoding is bijective on the instruction model: `decode`
//! rejects any word that `encode` cannot produce, so the set of valid
//! encodings is exactly the image of [`crate::encode`]. A soft error that
//! flips a bit of an instruction word either yields another valid
//! instruction or an *undefined instruction* fault — the same two outcomes a
//! real core exhibits.

use crate::{Cond, FReg, Reg};

/// Data-processing opcodes (classes `0x0`/`0x1`, bits `[23:20]`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND: `rd = rn & op2`.
    And = 0,
    /// Bitwise exclusive OR: `rd = rn ^ op2`.
    Eor = 1,
    /// Subtract: `rd = rn - op2`.
    Sub = 2,
    /// Reverse subtract: `rd = op2 - rn`.
    Rsb = 3,
    /// Add: `rd = rn + op2`.
    Add = 4,
    /// Add with carry: `rd = rn + op2 + C`.
    Adc = 5,
    /// Subtract with carry: `rd = rn - op2 - !C`.
    Sbc = 6,
    /// Bitwise OR: `rd = rn | op2`.
    Orr = 7,
    /// Move: `rd = op2` (`rn` ignored).
    Mov = 8,
    /// Bit clear: `rd = rn & !op2`.
    Bic = 9,
    /// Move NOT: `rd = !op2` (`rn` ignored).
    Mvn = 10,
    /// Compare: flags from `rn - op2`, no destination.
    Cmp = 11,
    /// Compare negative: flags from `rn + op2`, no destination.
    Cmn = 12,
    /// Test: flags from `rn & op2`, no destination.
    Tst = 13,
    /// Test equivalence: flags from `rn ^ op2`, no destination.
    Teq = 14,
}

impl DpOp {
    /// All data-processing opcodes in encoding order.
    pub const ALL: [DpOp; 15] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Bic,
        DpOp::Mvn,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Tst,
        DpOp::Teq,
    ];

    /// True for the four compare/test opcodes that have no destination and
    /// always update flags.
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Cmp | DpOp::Cmn | DpOp::Tst | DpOp::Teq)
    }

    /// True for `Mov`/`Mvn`, which ignore `rn`.
    pub fn ignores_rn(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }
}

/// Barrel-shifter operation applied to a register operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Shift {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl Shift {
    /// All shift kinds in encoding order.
    pub const ALL: [Shift; 4] = [Shift::Lsl, Shift::Lsr, Shift::Asr, Shift::Ror];

    /// Applies the shift to `value` by `amount`, with ARM boundary
    /// semantics for amounts the encoding itself cannot express (the
    /// immediate field holds `0..=31`, but register-specified shifts on
    /// real ARM reach 32 and beyond): `Lsl`/`Lsr` by 32 or more yield 0,
    /// `Asr` by 32 or more fills with the sign bit, and `Ror` rotates
    /// modulo 32.
    pub fn apply(self, value: u32, amount: u8) -> u32 {
        let amount = amount as u32;
        if amount == 0 {
            return value;
        }
        match self {
            Shift::Lsl => value.checked_shl(amount).unwrap_or(0),
            Shift::Lsr => value.checked_shr(amount).unwrap_or(0),
            Shift::Asr => ((value as i32) >> amount.min(31)) as u32,
            Shift::Ror => value.rotate_right(amount & 31),
        }
    }
}

/// A register operand run through the barrel shifter: `rm SHIFT #amount`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ShiftedReg {
    /// Source register.
    pub rm: Reg,
    /// Shift kind.
    pub shift: Shift,
    /// Shift amount, `0..=31`.
    pub amount: u8,
}

impl ShiftedReg {
    /// A plain, unshifted register operand.
    pub fn plain(rm: Reg) -> ShiftedReg {
        ShiftedReg {
            rm,
            shift: Shift::Lsl,
            amount: 0,
        }
    }
}

/// The flexible second operand of a data-processing instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand2 {
    /// A (possibly shifted) register.
    Reg(ShiftedReg),
    /// An 8-bit value rotated right by `4 × ror4` bits (`ror4` in `0..=7`).
    ///
    /// The materialized value is `(base as u32).rotate_right(4 * ror4)`.
    Imm {
        /// 8-bit payload.
        base: u8,
        /// Rotation selector, `0..=7`; rotation is `4 × ror4` bits.
        ror4: u8,
    },
}

impl Operand2 {
    /// Encodes `value` as a rotated immediate if possible.
    pub fn encode_imm(value: u32) -> Option<Operand2> {
        for ror4 in 0..8u8 {
            let unrotated = value.rotate_left(4 * ror4 as u32);
            if unrotated <= 0xFF {
                return Some(Operand2::Imm {
                    base: unrotated as u8,
                    ror4,
                });
            }
        }
        None
    }

    /// The immediate value this operand materializes, if it is an immediate.
    pub fn imm_value(self) -> Option<u32> {
        match self {
            Operand2::Imm { base, ror4 } => Some((base as u32).rotate_right(4 * ror4 as u32)),
            Operand2::Reg(_) => None,
        }
    }
}

/// Multiply/divide opcodes (class `0x2`, bits `[23:20]`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MulOp {
    /// `rd = rn * rm` (low 32 bits).
    Mul = 0,
    /// `rd = rn * rm + ra`.
    Mla = 1,
    /// Unsigned long multiply: `ra:rd = rn * rm` (`rd` low, `ra` high).
    Umull = 2,
    /// Signed long multiply: `ra:rd = rn * rm`.
    Smull = 3,
    /// Unsigned divide: `rd = rn / rm`, zero if `rm == 0` (as ARMv7-R UDIV).
    Udiv = 4,
    /// Signed divide: `rd = rn / rm`, zero if `rm == 0`.
    Sdiv = 5,
    /// Unsigned remainder: `rd = rn % rm`, zero if `rm == 0`.
    Urem = 6,
    /// Signed remainder: `rd = rn % rm`, zero if `rm == 0`.
    Srem = 7,
    /// Variable logical shift left: `rd = rn << (rm & 31)`.
    Lslv = 8,
    /// Variable logical shift right: `rd = rn >> (rm & 31)`.
    Lsrv = 9,
    /// Variable arithmetic shift right: `rd = (rn as i32) >> (rm & 31)`.
    Asrv = 10,
    /// Variable rotate right: `rd = rn.rotate_right(rm & 31)`.
    Rorv = 11,
}

impl MulOp {
    /// All multiply/divide/variable-shift opcodes in encoding order.
    pub const ALL: [MulOp; 12] = [
        MulOp::Mul,
        MulOp::Mla,
        MulOp::Umull,
        MulOp::Smull,
        MulOp::Udiv,
        MulOp::Sdiv,
        MulOp::Urem,
        MulOp::Srem,
        MulOp::Lslv,
        MulOp::Lsrv,
        MulOp::Asrv,
        MulOp::Rorv,
    ];
}

/// Access size for scalar loads and stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum MemSize {
    /// 32-bit word. Addresses must be 4-byte aligned.
    Word = 0,
    /// 8-bit byte, zero-extended on load.
    Byte = 1,
    /// 16-bit halfword, zero-extended on load. 2-byte aligned.
    Half = 2,
}

impl MemSize {
    /// All access sizes in encoding order.
    pub const ALL: [MemSize; 3] = [MemSize::Word, MemSize::Byte, MemSize::Half];

    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Word => 4,
            MemSize::Byte => 1,
            MemSize::Half => 2,
        }
    }
}

/// Addressing-mode control bits for scalar loads/stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddrMode {
    /// Pre-index (`true`): the offset applies before the access.
    /// Post-index (`false`): the access uses `rn` as-is, then `rn` is
    /// updated (post-index implies writeback).
    pub pre: bool,
    /// Write the computed address back to `rn`.
    pub writeback: bool,
    /// Offset direction: `true` adds, `false` subtracts.
    pub up: bool,
}

impl AddrMode {
    /// Plain `[rn, #+off]` addressing without writeback.
    pub fn offset() -> AddrMode {
        AddrMode {
            pre: true,
            writeback: false,
            up: true,
        }
    }

    /// Pre-indexed with writeback: `[rn, #+off]!`.
    pub fn pre_wb() -> AddrMode {
        AddrMode {
            pre: true,
            writeback: true,
            up: true,
        }
    }

    /// Post-indexed: `[rn], #+off`.
    pub fn post() -> AddrMode {
        AddrMode {
            pre: false,
            writeback: true,
            up: true,
        }
    }

    /// Flips the offset direction to subtraction.
    pub fn down(mut self) -> AddrMode {
        self.up = false;
        self
    }
}

/// Offset operand of a scalar load/store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemOffset {
    /// Unscaled immediate byte offset, `0..=511`.
    Imm(u16),
    /// Register offset shifted left by `0..=7`: `rm << shl`.
    Reg {
        /// Offset register.
        rm: Reg,
        /// Left-shift amount applied to `rm`, `0..=7`.
        shl: u8,
    },
}

/// System registers readable via `MRS`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum SysReg {
    /// Current program status register (flags, mode, IRQ mask).
    Cpsr = 0,
    /// Saved program status register of supervisor mode.
    Spsr = 1,
    /// Free-running cycle counter (low 32 bits).
    Cycles = 2,
    /// Exception link register of supervisor mode (preferred return address).
    Elr = 3,
    /// Exception syndrome: cause of the most recent exception.
    Esr = 4,
    /// Faulting address register (for aborts).
    Far = 5,
    /// Page-table base register.
    Ttbr = 6,
    /// The user-mode stack pointer, accessible from supervisor mode
    /// (AR32 banks `sp` per privilege level, like ARM's `SP_usr`).
    SpUsr = 7,
    /// Cache maintenance: writing `1` cleans (writes back) and invalidates
    /// all caches; writing `2` invalidates the TLBs. Reads as zero.
    CacheOp = 8,
}

impl SysReg {
    /// All system registers in encoding order.
    pub const ALL: [SysReg; 9] = [
        SysReg::Cpsr,
        SysReg::Spsr,
        SysReg::Cycles,
        SysReg::Elr,
        SysReg::Esr,
        SysReg::Far,
        SysReg::Ttbr,
        SysReg::SpUsr,
        SysReg::CacheOp,
    ];
}

/// FP arithmetic ops with two source registers (class `0x6`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FpArithOp {
    /// `sd = sn + sm`.
    Add = 0,
    /// `sd = sn - sm`.
    Sub = 1,
    /// `sd = sn * sm`.
    Mul = 2,
    /// `sd = sn / sm`.
    Div = 3,
    /// Fused-ish multiply-accumulate: `sd = sd + sn * sm` (rounded per step).
    Mac = 4,
    /// `sd = min(sn, sm)` (IEEE minNum).
    Min = 5,
    /// `sd = max(sn, sm)` (IEEE maxNum).
    Max = 6,
}

impl FpArithOp {
    /// All two-source FP ops in encoding order.
    pub const ALL: [FpArithOp; 7] = [
        FpArithOp::Add,
        FpArithOp::Sub,
        FpArithOp::Mul,
        FpArithOp::Div,
        FpArithOp::Mac,
        FpArithOp::Min,
        FpArithOp::Max,
    ];
}

/// FP ops with one source register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FpUnaryOp {
    /// `sd = |sm|`.
    Abs = 0,
    /// `sd = -sm`.
    Neg = 1,
    /// `sd = sqrt(sm)`.
    Sqrt = 2,
    /// `sd = sm` (register move).
    Mov = 3,
}

impl FpUnaryOp {
    /// All one-source FP ops in encoding order.
    pub const ALL: [FpUnaryOp; 4] = [
        FpUnaryOp::Abs,
        FpUnaryOp::Neg,
        FpUnaryOp::Sqrt,
        FpUnaryOp::Mov,
    ];
}

/// One decoded AR32 instruction.
///
/// Field layouts below use `A = [18:15]`, `B = [14:11]`, `C = [10:7]` for
/// 4-bit register fields and `FA = [18:14]`, `FB = [13:9]`, `FC = [8:4]` for
/// 5-bit FP register fields unless stated otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// Data processing (class `0x0` register / `0x1` immediate).
    ///
    /// Layout: `[23:20] op, [19] S, A rd, B rn`, then either
    /// `C rm, [6:5] shift, [4:0] amount` (class 0) or
    /// `[10:3] imm8, [2:0] ror4` (class 1).
    Dp {
        /// Condition.
        cond: Cond,
        /// Operation.
        op: DpOp,
        /// Update CPSR flags.
        s: bool,
        /// Destination (ignored and encoded as `r0` for compares).
        rd: Reg,
        /// First operand (ignored and encoded as `r0` for `Mov`/`Mvn`).
        rn: Reg,
        /// Flexible second operand.
        op2: Operand2,
    },
    /// Wide move (class `0x8`): `[23] top, [22:19] rd, [15:0] imm16`.
    ///
    /// `top == false` (`MOVW`): `rd = imm16` (upper half zeroed).
    /// `top == true` (`MOVT`): `rd[31:16] = imm16` (lower half kept).
    MovW {
        /// Condition.
        cond: Cond,
        /// Write the top halfword instead of the bottom.
        top: bool,
        /// Destination register.
        rd: Reg,
        /// 16-bit immediate.
        imm: u16,
    },
    /// Multiply/divide (class `0x2`).
    ///
    /// Layout: `[23:20] op, [19] S, A rd, B rn, C rm, [6:3] ra`.
    /// For long multiplies `rd` is the low word, `ra` the high word.
    Mul {
        /// Condition.
        cond: Cond,
        /// Operation.
        op: MulOp,
        /// Update `N`/`Z` from the (low-word) result.
        s: bool,
        /// Destination / low result.
        rd: Reg,
        /// First source.
        rn: Reg,
        /// Second source.
        rm: Reg,
        /// Accumulator (`Mla`) or high result (`Umull`/`Smull`); encoded as
        /// `r0` when unused.
        ra: Reg,
    },
    /// Scalar load/store (class `0x3`).
    ///
    /// Layout: `[23:22] size, [21] L, [20] U, [19] P, [18] W,
    /// [17:14] rd, [13:10] rn, [9] regoff`, then
    /// `[8:0] imm9` or `[8:5] rm, [4:2] shl`.
    Mem {
        /// Condition.
        cond: Cond,
        /// `true` for load, `false` for store.
        load: bool,
        /// Access size.
        size: MemSize,
        /// Data register.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset operand.
        offset: MemOffset,
        /// Index/writeback mode.
        mode: AddrMode,
    },
    /// Load/store multiple (class `0x4`).
    ///
    /// Layout: `[23] L, [22] W, [21] U, [20] P, [19:16] rn, [15:0] regs`.
    /// Registers transfer in ascending index order from the lowest address,
    /// as on ARM. `PUSH` is `STM db wb sp`, `POP` is `LDM ia wb sp`.
    MemMulti {
        /// Condition.
        cond: Cond,
        /// `true` for load.
        load: bool,
        /// Base register.
        rn: Reg,
        /// Write final address back to `rn`.
        writeback: bool,
        /// Ascending (`true`) or descending (`false`) addresses.
        up: bool,
        /// Adjust the address before (`true`) or after (`false`) each access.
        before: bool,
        /// Bitmask of registers to transfer (bit *i* = `r<i>`).
        regs: u16,
    },
    /// Branch (class `0x5`): `[23] link, [22:0] signed word offset`.
    ///
    /// Target is `address_of_branch + 4 + 4 × offset`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Save the return address in `lr`.
        link: bool,
        /// Signed offset in words relative to the next instruction.
        offset: i32,
    },
    /// Branch to register (class `0x7`, op `0x8`): `A rm`.
    Bx {
        /// Condition.
        cond: Cond,
        /// Target-address register.
        rm: Reg,
    },
    /// FP two-source arithmetic (class `0x6`, sub-op `[23:19]` in `0..=6`).
    ///
    /// All FP variants pack their register fields into three 5-bit slots
    /// `A = [14:10]`, `B = [9:5]`, `C = [4:0]`. Here `sd = A`, `sn = B`,
    /// `sm = C`.
    FpArith {
        /// Condition.
        cond: Cond,
        /// Operation.
        op: FpArithOp,
        /// Destination.
        sd: FReg,
        /// First source.
        sn: FReg,
        /// Second source.
        sm: FReg,
    },
    /// FP one-source op (class `0x6`, sub-op `8 + op`): `sd = A`, `sm = C`.
    FpUnary {
        /// Condition.
        cond: Cond,
        /// Operation.
        op: FpUnaryOp,
        /// Destination.
        sd: FReg,
        /// Source.
        sm: FReg,
    },
    /// FP compare (class `0x6`, sub `12`): sets CPSR `N`/`Z`/`C`/`V` from
    /// the IEEE comparison of `sn` and `sm` the way `VCMP`+`VMRS` would:
    /// unordered sets `C` and `V`; less sets `N`; equal sets `Z` and `C`;
    /// greater sets `C`.
    FpCmp {
        /// Condition.
        cond: Cond,
        /// Left operand.
        sn: FReg,
        /// Right operand.
        sm: FReg,
    },
    /// Convert f32 → i32, round toward zero (class `0x6`, sub-op `13`):
    /// `rd = A[3:0]`, `sm = C`. NaN converts to 0; out-of-range saturates.
    FpToInt {
        /// Condition.
        cond: Cond,
        /// Integer destination.
        rd: Reg,
        /// FP source.
        sm: FReg,
    },
    /// Convert i32 → f32, round to nearest (class `0x6`, sub-op `14`):
    /// `sd = A`, `rm = B[3:0]`.
    IntToFp {
        /// Condition.
        cond: Cond,
        /// FP destination.
        sd: FReg,
        /// Integer source.
        rm: Reg,
    },
    /// Move FP register to core register, bit pattern preserved (class
    /// `0x6`, sub-op `15`): `rd = A[3:0]`, `sn = C`.
    FpToCore {
        /// Condition.
        cond: Cond,
        /// Integer destination.
        rd: Reg,
        /// FP source.
        sn: FReg,
    },
    /// Move core register to FP register, bit pattern preserved (class
    /// `0x6`, sub-op `16`): `sd = A`, `rn = B[3:0]`.
    CoreToFp {
        /// Condition.
        cond: Cond,
        /// FP destination.
        sd: FReg,
        /// Integer source.
        rn: Reg,
    },
    /// FP load/store (class `0x6`, sub-op `17` load / `18` store):
    /// `sd = A`, `rn = B[3:0]`, word offset `imm6 = C + ([16:15] << 5)`…
    /// concretely the byte address is `rn + 4 × imm6` and accesses are
    /// always word sized. `imm6` is encoded in `C` plus bit `[15]`.
    FpMem {
        /// Condition.
        cond: Cond,
        /// `true` for load.
        load: bool,
        /// FP data register.
        sd: FReg,
        /// Base register.
        rn: Reg,
        /// Word offset, `0..=63` (byte offset `4 × imm6`).
        imm6: u8,
    },
    /// Supervisor call (class `0x7`, op `0x0`): `[15:0] imm16` is the
    /// syscall-number hint (also passed in `r7` by convention).
    Svc {
        /// Condition.
        cond: Cond,
        /// Immediate comment field.
        imm: u16,
    },
    /// Read a system register (class `0x7`, op `0x3`): `A rd, [2:0] sys`.
    /// Reading privileged registers (everything but `Cycles`) from user mode
    /// raises an undefined-instruction fault.
    Mrs {
        /// Condition.
        cond: Cond,
        /// Destination register.
        rd: Reg,
        /// Source system register.
        sys: SysReg,
    },
    /// Write a system register (class `0x7`, op `0x4`): `A rn, [2:0] sys`.
    /// Privileged.
    Msr {
        /// Condition.
        cond: Cond,
        /// Destination system register.
        sys: SysReg,
        /// Source register.
        rn: Reg,
    },
    /// Change IRQ mask (class `0x7`, op `0x6` disable / `0x7` enable).
    /// Privileged.
    Cps {
        /// Condition.
        cond: Cond,
        /// `true` enables IRQs, `false` disables them.
        enable_irq: bool,
    },
    /// Exception return (class `0x7`, op `0x5`): `pc ← ELR`, `CPSR ← SPSR`.
    /// Privileged.
    Eret {
        /// Condition.
        cond: Cond,
    },
    /// No operation (class `0x7`, op `0x1`).
    Nop {
        /// Condition.
        cond: Cond,
    },
    /// Stop the simulation (class `0x7`, op `0x2`). Privileged; used only by
    /// the kernel's final power-off path. In user mode it raises an
    /// undefined-instruction fault.
    Halt {
        /// Condition.
        cond: Cond,
    },
    /// Wait for interrupt (class `0x7`, op `0x9`). The core idles until an
    /// IRQ is pending. Privileged.
    Wfi {
        /// Condition.
        cond: Cond,
    },
}

impl Insn {
    /// The condition code of this instruction.
    pub fn cond(&self) -> Cond {
        match *self {
            Insn::Dp { cond, .. }
            | Insn::MovW { cond, .. }
            | Insn::Mul { cond, .. }
            | Insn::Mem { cond, .. }
            | Insn::MemMulti { cond, .. }
            | Insn::Branch { cond, .. }
            | Insn::Bx { cond, .. }
            | Insn::FpArith { cond, .. }
            | Insn::FpUnary { cond, .. }
            | Insn::FpCmp { cond, .. }
            | Insn::FpToInt { cond, .. }
            | Insn::IntToFp { cond, .. }
            | Insn::FpToCore { cond, .. }
            | Insn::CoreToFp { cond, .. }
            | Insn::FpMem { cond, .. }
            | Insn::Svc { cond, .. }
            | Insn::Mrs { cond, .. }
            | Insn::Msr { cond, .. }
            | Insn::Cps { cond, .. }
            | Insn::Eret { cond }
            | Insn::Nop { cond }
            | Insn::Halt { cond }
            | Insn::Wfi { cond } => cond,
        }
    }

    /// True if this instruction may redirect control flow when executed.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Branch { .. } | Insn::Bx { .. } | Insn::Svc { .. } | Insn::Eret { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u32; 7] = [
        0,
        1,
        0x8000_0000,
        0x8000_0001,
        0x7FFF_FFFF,
        0xFFFF_FFFF,
        0xDEAD_BEEF,
    ];

    #[test]
    fn lsl_lsr_saturate_at_32_and_beyond() {
        for v in SAMPLES {
            for amount in 32..=255u8 {
                assert_eq!(Shift::Lsl.apply(v, amount), 0, "lsl {v:#x} by {amount}");
                assert_eq!(Shift::Lsr.apply(v, amount), 0, "lsr {v:#x} by {amount}");
            }
        }
    }

    #[test]
    fn asr_fills_with_sign_at_32_and_beyond() {
        for v in SAMPLES {
            let sign = if v & 0x8000_0000 != 0 { u32::MAX } else { 0 };
            for amount in 32..=255u8 {
                assert_eq!(Shift::Asr.apply(v, amount), sign, "asr {v:#x} by {amount}");
            }
        }
    }

    #[test]
    fn ror_rotates_modulo_32() {
        for v in SAMPLES {
            for amount in 1..=255u8 {
                assert_eq!(
                    Shift::Ror.apply(v, amount),
                    v.rotate_right(amount as u32 % 32),
                    "ror {v:#x} by {amount}"
                );
            }
        }
    }

    #[test]
    fn amount_zero_is_identity_for_every_kind() {
        for v in SAMPLES {
            for kind in [Shift::Lsl, Shift::Lsr, Shift::Asr, Shift::Ror] {
                assert_eq!(kind.apply(v, 0), v);
            }
        }
    }

    #[test]
    fn in_encoding_range_amounts_match_plain_shifts() {
        for v in SAMPLES {
            for amount in 1..=31u8 {
                let n = amount as u32;
                assert_eq!(Shift::Lsl.apply(v, amount), v << n);
                assert_eq!(Shift::Lsr.apply(v, amount), v >> n);
                assert_eq!(Shift::Asr.apply(v, amount), ((v as i32) >> n) as u32);
                assert_eq!(Shift::Ror.apply(v, amount), v.rotate_right(n));
            }
        }
    }
}

//! Disassembly: `Display` for [`Insn`].

use std::fmt;

use crate::insn::{DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, Shift};

impl fmt::Display for Shift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Shift::Lsl => "lsl",
            Shift::Lsr => "lsr",
            Shift::Asr => "asr",
            Shift::Ror => "ror",
        })
    }
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand2::Reg(sr) => {
                if sr.amount == 0 {
                    write!(f, "{}", sr.rm)
                } else {
                    write!(f, "{}, {} #{}", sr.rm, sr.shift, sr.amount)
                }
            }
            Operand2::Imm { .. } => write!(f, "#{:#x}", self.imm_value().unwrap()),
        }
    }
}

fn dp_mnemonic(op: DpOp) -> &'static str {
    match op {
        DpOp::And => "and",
        DpOp::Eor => "eor",
        DpOp::Sub => "sub",
        DpOp::Rsb => "rsb",
        DpOp::Add => "add",
        DpOp::Adc => "adc",
        DpOp::Sbc => "sbc",
        DpOp::Orr => "orr",
        DpOp::Mov => "mov",
        DpOp::Bic => "bic",
        DpOp::Mvn => "mvn",
        DpOp::Cmp => "cmp",
        DpOp::Cmn => "cmn",
        DpOp::Tst => "tst",
        DpOp::Teq => "teq",
    }
}

fn mul_mnemonic(op: MulOp) -> &'static str {
    match op {
        MulOp::Mul => "mul",
        MulOp::Mla => "mla",
        MulOp::Umull => "umull",
        MulOp::Smull => "smull",
        MulOp::Udiv => "udiv",
        MulOp::Sdiv => "sdiv",
        MulOp::Urem => "urem",
        MulOp::Srem => "srem",
        MulOp::Lslv => "lslv",
        MulOp::Lsrv => "lsrv",
        MulOp::Asrv => "asrv",
        MulOp::Rorv => "rorv",
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.cond();
        match *self {
            Insn::Dp {
                op, s, rd, rn, op2, ..
            } => {
                let sfx = if s && !op.is_compare() { "s" } else { "" };
                let m = dp_mnemonic(op);
                if op.is_compare() {
                    write!(f, "{m}{c} {rn}, {op2}")
                } else if op.ignores_rn() {
                    write!(f, "{m}{c}{sfx} {rd}, {op2}")
                } else {
                    write!(f, "{m}{c}{sfx} {rd}, {rn}, {op2}")
                }
            }
            Insn::MovW { top, rd, imm, .. } => {
                write!(
                    f,
                    "{}{c} {rd}, #{imm:#x}",
                    if top { "movt" } else { "movw" }
                )
            }
            Insn::Mul {
                op,
                s,
                rd,
                rn,
                rm,
                ra,
                ..
            } => {
                let sfx = if s { "s" } else { "" };
                let m = mul_mnemonic(op);
                match op {
                    MulOp::Mla => write!(f, "{m}{c}{sfx} {rd}, {rn}, {rm}, {ra}"),
                    MulOp::Umull | MulOp::Smull => {
                        write!(f, "{m}{c}{sfx} {rd}, {ra}, {rn}, {rm}")
                    }
                    _ => write!(f, "{m}{c}{sfx} {rd}, {rn}, {rm}"),
                }
            }
            Insn::Mem {
                load,
                size,
                rd,
                rn,
                offset,
                mode,
                ..
            } => {
                let m = if load { "ldr" } else { "str" };
                let sz = match size {
                    MemSize::Word => "",
                    MemSize::Byte => "b",
                    MemSize::Half => "h",
                };
                let sign = if mode.up { "" } else { "-" };
                let off = |f: &mut fmt::Formatter<'_>| match offset {
                    MemOffset::Imm(i) => write!(f, "#{sign}{i}"),
                    MemOffset::Reg { rm, shl: 0 } => write!(f, "{sign}{rm}"),
                    MemOffset::Reg { rm, shl } => write!(f, "{sign}{rm}, lsl #{shl}"),
                };
                write!(f, "{m}{c}{sz} {rd}, [{rn}")?;
                if mode.pre {
                    write!(f, ", ")?;
                    off(f)?;
                    write!(f, "]{}", if mode.writeback { "!" } else { "" })
                } else {
                    write!(f, "], ")?;
                    off(f)
                }
            }
            Insn::MemMulti {
                load,
                rn,
                writeback,
                up,
                before,
                regs,
                ..
            } => {
                let m = if load { "ldm" } else { "stm" };
                let am = match (up, before) {
                    (true, false) => "ia",
                    (true, true) => "ib",
                    (false, false) => "da",
                    (false, true) => "db",
                };
                let wb = if writeback { "!" } else { "" };
                write!(f, "{m}{am}{c} {rn}{wb}, {{")?;
                let mut first = true;
                for i in 0..16 {
                    if regs & (1 << i) != 0 {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", crate::Reg::from_index(i))?;
                        first = false;
                    }
                }
                write!(f, "}}")
            }
            Insn::Branch { link, offset, .. } => {
                write!(
                    f,
                    "b{}{c} .{:+}",
                    if link { "l" } else { "" },
                    (offset + 1) * 4
                )
            }
            Insn::Bx { rm, .. } => write!(f, "bx{c} {rm}"),
            Insn::FpArith { op, sd, sn, sm, .. } => {
                let m = match op {
                    FpArithOp::Add => "vadd.f32",
                    FpArithOp::Sub => "vsub.f32",
                    FpArithOp::Mul => "vmul.f32",
                    FpArithOp::Div => "vdiv.f32",
                    FpArithOp::Mac => "vmla.f32",
                    FpArithOp::Min => "vmin.f32",
                    FpArithOp::Max => "vmax.f32",
                };
                write!(f, "{m}{c} {sd}, {sn}, {sm}")
            }
            Insn::FpUnary { op, sd, sm, .. } => {
                let m = match op {
                    FpUnaryOp::Abs => "vabs.f32",
                    FpUnaryOp::Neg => "vneg.f32",
                    FpUnaryOp::Sqrt => "vsqrt.f32",
                    FpUnaryOp::Mov => "vmov.f32",
                };
                write!(f, "{m}{c} {sd}, {sm}")
            }
            Insn::FpCmp { sn, sm, .. } => write!(f, "vcmp.f32{c} {sn}, {sm}"),
            Insn::FpToInt { rd, sm, .. } => write!(f, "vcvt.s32.f32{c} {rd}, {sm}"),
            Insn::IntToFp { sd, rm, .. } => write!(f, "vcvt.f32.s32{c} {sd}, {rm}"),
            Insn::FpToCore { rd, sn, .. } => write!(f, "vmov{c} {rd}, {sn}"),
            Insn::CoreToFp { sd, rn, .. } => write!(f, "vmov{c} {sd}, {rn}"),
            Insn::FpMem {
                load, sd, rn, imm6, ..
            } => {
                let m = if load { "vldr" } else { "vstr" };
                write!(f, "{m}{c} {sd}, [{rn}, #{}]", imm6 as u32 * 4)
            }
            Insn::Svc { imm, .. } => write!(f, "svc{c} #{imm}"),
            Insn::Mrs { rd, sys, .. } => write!(f, "mrs{c} {rd}, {sys:?}"),
            Insn::Msr { sys, rn, .. } => write!(f, "msr{c} {sys:?}, {rn}"),
            Insn::Cps { enable_irq, .. } => {
                write!(f, "cps{}{c}", if enable_irq { "ie" } else { "id" })
            }
            Insn::Eret { .. } => write!(f, "eret{c}"),
            Insn::Nop { .. } => write!(f, "nop{c}"),
            Insn::Halt { .. } => write!(f, "halt{c}"),
            Insn::Wfi { .. } => write!(f, "wfi{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddrMode, Cond, Reg};

    #[test]
    fn disassembles_common_forms() {
        let i = Insn::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: true,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Operand2::encode_imm(4).unwrap(),
        };
        assert_eq!(i.to_string(), "adds r0, r1, #0x4");

        let i = Insn::Mem {
            cond: Cond::Ne,
            load: true,
            size: MemSize::Word,
            rd: Reg::R2,
            rn: Reg::Sp,
            offset: MemOffset::Imm(8),
            mode: AddrMode::offset(),
        };
        assert_eq!(i.to_string(), "ldrne r2, [sp, #8]");

        let i = Insn::MemMulti {
            cond: Cond::Al,
            load: false,
            rn: Reg::Sp,
            writeback: true,
            up: false,
            before: true,
            regs: 0b0100_0000_0000_0001,
        };
        assert_eq!(i.to_string(), "stmdb sp!, {r0, lr}");
    }
}

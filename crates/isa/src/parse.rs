//! Parsing textual AR32 assembly.
//!
//! The grammar is exactly the disassembler's output language (plus
//! whitespace tolerance and case-insensitive mnemonics), so
//! `parse_insn(insn.to_string())` is a total inverse of `Display` — a
//! property the test suite enforces over the whole instruction space.
//! Branches are parsed with their relative word offset (`b .+8` form);
//! label resolution is the programmatic assembler's job.

use std::fmt;

use crate::insn::{
    AddrMode, DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, Shift,
    ShiftedReg, SysReg,
};
use crate::{Cond, FReg, Reg};

/// Error produced when text does not parse as an AR32 instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn parse_cond(s: &str) -> Option<(Cond, &str)> {
    const TABLE: [(&str, Cond); 15] = [
        ("eq", Cond::Eq),
        ("ne", Cond::Ne),
        ("cs", Cond::Cs),
        ("cc", Cond::Cc),
        ("mi", Cond::Mi),
        ("pl", Cond::Pl),
        ("vs", Cond::Vs),
        ("vc", Cond::Vc),
        ("hi", Cond::Hi),
        ("ls", Cond::Ls),
        ("ge", Cond::Ge),
        ("lt", Cond::Lt),
        ("gt", Cond::Gt),
        ("le", Cond::Le),
        ("nv", Cond::Nv),
    ];
    for (name, cond) in TABLE {
        if let Some(rest) = s.strip_prefix(name) {
            return Some((cond, rest));
        }
    }
    None
}

fn take_cond(s: &str) -> (Cond, &str) {
    parse_cond(s).unwrap_or((Cond::Al, s))
}

fn parse_reg(tok: &str) -> Result<Reg> {
    match tok {
        "sp" => Ok(Reg::Sp),
        "lr" => Ok(Reg::Lr),
        "pc" => Ok(Reg::Pc),
        _ => {
            let n: u32 = tok
                .strip_prefix('r')
                .ok_or_else(|| ParseError::new(format!("expected register, got `{tok}`")))?
                .parse()
                .map_err(|_| ParseError::new(format!("bad register `{tok}`")))?;
            if n > 15 {
                return Err(ParseError::new(format!("register out of range `{tok}`")));
            }
            Ok(Reg::from_index(n))
        }
    }
}

fn parse_freg(tok: &str) -> Result<FReg> {
    let n: u32 = tok
        .strip_prefix('s')
        .ok_or_else(|| ParseError::new(format!("expected FP register, got `{tok}`")))?
        .parse()
        .map_err(|_| ParseError::new(format!("bad FP register `{tok}`")))?;
    if n > 31 {
        return Err(ParseError::new(format!("FP register out of range `{tok}`")));
    }
    Ok(FReg::new(n))
}

fn parse_imm(tok: &str) -> Result<i64> {
    let t = tok
        .strip_prefix('#')
        .ok_or_else(|| ParseError::new(format!("expected immediate, got `{tok}`")))?;
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse()
    }
    .map_err(|_| ParseError::new(format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn parse_shift_kind(tok: &str) -> Result<Shift> {
    match tok {
        "lsl" => Ok(Shift::Lsl),
        "lsr" => Ok(Shift::Lsr),
        "asr" => Ok(Shift::Asr),
        "ror" => Ok(Shift::Ror),
        _ => Err(ParseError::new(format!("expected shift, got `{tok}`"))),
    }
}

/// Splits the operand field on top-level commas (brackets/braces bind).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '[' | '{' => {
                depth += 1;
                cur.push(ch);
            }
            ']' | '}' => {
                depth -= 1;
                cur.push(ch);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses an op2 spanning one or two operand tokens (`r3` or `r3, lsl #4`
/// or `#0x1f0`).
fn parse_op2(toks: &[String]) -> Result<Operand2> {
    match toks {
        [one] if one.starts_with('#') => {
            let v = parse_imm(one)? as u32;
            Operand2::encode_imm(v)
                .ok_or_else(|| ParseError::new(format!("immediate {v:#x} not encodable")))
        }
        [one] => Ok(Operand2::Reg(ShiftedReg::plain(parse_reg(one)?))),
        [reg, shift] => {
            let rm = parse_reg(reg)?;
            let mut it = shift.split_whitespace();
            let kind = parse_shift_kind(it.next().unwrap_or(""))?;
            let amount = parse_imm(it.next().unwrap_or(""))? as u8;
            if amount > 31 {
                return Err(ParseError::new("shift amount out of range"));
            }
            Ok(Operand2::Reg(ShiftedReg {
                rm,
                shift: kind,
                amount,
            }))
        }
        _ => Err(ParseError::new("malformed flexible operand")),
    }
}

fn dp_op(base: &str) -> Option<DpOp> {
    Some(match base {
        "and" => DpOp::And,
        "eor" => DpOp::Eor,
        "sub" => DpOp::Sub,
        "rsb" => DpOp::Rsb,
        "add" => DpOp::Add,
        "adc" => DpOp::Adc,
        "sbc" => DpOp::Sbc,
        "orr" => DpOp::Orr,
        "mov" => DpOp::Mov,
        "bic" => DpOp::Bic,
        "mvn" => DpOp::Mvn,
        "cmp" => DpOp::Cmp,
        "cmn" => DpOp::Cmn,
        "tst" => DpOp::Tst,
        "teq" => DpOp::Teq,
        _ => return None,
    })
}

fn mul_op(base: &str) -> Option<MulOp> {
    Some(match base {
        "mul" => MulOp::Mul,
        "mla" => MulOp::Mla,
        "umull" => MulOp::Umull,
        "smull" => MulOp::Smull,
        "udiv" => MulOp::Udiv,
        "sdiv" => MulOp::Sdiv,
        "urem" => MulOp::Urem,
        "srem" => MulOp::Srem,
        "lslv" => MulOp::Lslv,
        "lsrv" => MulOp::Lsrv,
        "asrv" => MulOp::Asrv,
        "rorv" => MulOp::Rorv,
        _ => return None,
    })
}

fn sys_reg(tok: &str) -> Result<SysReg> {
    match tok.to_ascii_lowercase().as_str() {
        "cpsr" => Ok(SysReg::Cpsr),
        "spsr" => Ok(SysReg::Spsr),
        "cycles" => Ok(SysReg::Cycles),
        "elr" => Ok(SysReg::Elr),
        "esr" => Ok(SysReg::Esr),
        "far" => Ok(SysReg::Far),
        "ttbr" => Ok(SysReg::Ttbr),
        "spusr" => Ok(SysReg::SpUsr),
        "cacheop" => Ok(SysReg::CacheOp),
        _ => Err(ParseError::new(format!("unknown system register `{tok}`"))),
    }
}

fn parse_mem(cond: Cond, load: bool, rest: &str, ops: &[String]) -> Result<Insn> {
    // rest: "", "b", "h" (size); ops: rd + address expression.
    let size = match rest {
        "" => MemSize::Word,
        "b" => MemSize::Byte,
        "h" => MemSize::Half,
        _ => return Err(ParseError::new(format!("bad load/store suffix `{rest}`"))),
    };
    if ops.len() < 2 {
        return Err(ParseError::new(
            "load/store needs a register and an address",
        ));
    }
    let rd = parse_reg(operand(ops, 0)?)?;
    // Address forms: "[rn, off]" | "[rn, off]!" | "[rn]" | "[rn], off".
    let addr = ops[1..].join(", ");
    let (pre, writeback, inner, tail) = if let Some(stripped) = addr.strip_suffix('!') {
        let inner = stripped
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| ParseError::new("malformed pre-indexed address"))?;
        (true, true, inner.to_string(), None)
    } else if let Some(end) = addr.find(']') {
        let inner = addr[..end]
            .strip_prefix('[')
            .ok_or_else(|| ParseError::new("malformed address"))?
            .to_string();
        let after = addr[end + 1..].trim().to_string();
        if after.is_empty() {
            (true, false, inner, None)
        } else {
            let tail = after
                .strip_prefix(',')
                .ok_or_else(|| ParseError::new("malformed post-index"))?
                .trim()
                .to_string();
            (false, true, inner, Some(tail))
        }
    } else {
        return Err(ParseError::new("missing bracketed address"));
    };

    let parts: Vec<String> = if let Some(t) = tail {
        let mut v = vec![inner.clone()];
        v.extend(split_operands(&t));
        v
    } else {
        split_operands(&inner)
    };
    let rn = parse_reg(parts[0].trim())?;
    let (offset, up) = match parts.len() {
        1 => (MemOffset::Imm(0), true),
        2 => {
            let t = parts[1].trim();
            if t.starts_with('#') {
                let v = parse_imm(t)?;
                (MemOffset::Imm(v.unsigned_abs() as u16), v >= 0)
            } else {
                let (neg, t) = match t.strip_prefix('-') {
                    Some(rest) => (true, rest),
                    None => (false, t),
                };
                (
                    MemOffset::Reg {
                        rm: parse_reg(t.trim())?,
                        shl: 0,
                    },
                    !neg,
                )
            }
        }
        3 => {
            let t = parts[1].trim();
            let (neg, t) = match t.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, t),
            };
            let rm = parse_reg(t.trim())?;
            let mut it = parts[2].split_whitespace();
            let kind = parse_shift_kind(it.next().unwrap_or(""))?;
            if kind != Shift::Lsl {
                return Err(ParseError::new("memory offsets shift with lsl only"));
            }
            let shl = parse_imm(it.next().unwrap_or(""))? as u8;
            (MemOffset::Reg { rm, shl }, !neg)
        }
        _ => return Err(ParseError::new("malformed address expression")),
    };
    Ok(Insn::Mem {
        cond,
        load,
        size,
        rd,
        rn,
        offset,
        mode: AddrMode { pre, writeback, up },
    })
}

fn parse_reg_list(tok: &str) -> Result<u16> {
    let inner = tok
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| ParseError::new("expected register list"))?;
    let mut mask = 0u16;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        mask |= 1 << parse_reg(part)?.index();
    }
    if mask == 0 {
        return Err(ParseError::new("empty register list"));
    }
    Ok(mask)
}

fn operand(ops: &[String], i: usize) -> Result<&str> {
    ops.get(i)
        .map(String::as_str)
        .ok_or_else(|| ParseError::new("missing operand"))
}

/// Parses one instruction from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first problem found.
#[allow(clippy::too_many_lines)]
pub fn parse_insn(text: &str) -> Result<Insn> {
    let text = text.trim().to_ascii_lowercase();
    let (mnemonic, operands) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text.as_str(), ""),
    };
    let ops = split_operands(operands);

    // ---- FP family (vxxx.f32 / vmov / vldr / vstr) ----
    if let Some(rest) = mnemonic.strip_prefix("vcmp.f32") {
        let (cond, rest) = take_cond(rest);
        if !rest.is_empty() {
            return Err(ParseError::new("trailing characters on vcmp"));
        }
        return Ok(Insn::FpCmp {
            cond,
            sn: parse_freg(operand(&ops, 0)?)?,
            sm: parse_freg(operand(&ops, 1)?)?,
        });
    }
    if let Some(rest) = mnemonic.strip_prefix("vcvt.s32.f32") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::FpToInt {
            cond,
            rd: parse_reg(operand(&ops, 0)?)?,
            sm: parse_freg(operand(&ops, 1)?)?,
        });
    }
    if let Some(rest) = mnemonic.strip_prefix("vcvt.f32.s32") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::IntToFp {
            cond,
            sd: parse_freg(operand(&ops, 0)?)?,
            rm: parse_reg(operand(&ops, 1)?)?,
        });
    }
    for (name, op) in [
        ("vadd.f32", FpArithOp::Add),
        ("vsub.f32", FpArithOp::Sub),
        ("vmul.f32", FpArithOp::Mul),
        ("vdiv.f32", FpArithOp::Div),
        ("vmla.f32", FpArithOp::Mac),
        ("vmin.f32", FpArithOp::Min),
        ("vmax.f32", FpArithOp::Max),
    ] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, _) = take_cond(rest);
            return Ok(Insn::FpArith {
                cond,
                op,
                sd: parse_freg(operand(&ops, 0)?)?,
                sn: parse_freg(operand(&ops, 1)?)?,
                sm: parse_freg(operand(&ops, 2)?)?,
            });
        }
    }
    for (name, op) in [
        ("vabs.f32", FpUnaryOp::Abs),
        ("vneg.f32", FpUnaryOp::Neg),
        ("vsqrt.f32", FpUnaryOp::Sqrt),
        ("vmov.f32", FpUnaryOp::Mov),
    ] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, _) = take_cond(rest);
            return Ok(Insn::FpUnary {
                cond,
                op,
                sd: parse_freg(operand(&ops, 0)?)?,
                sm: parse_freg(operand(&ops, 1)?)?,
            });
        }
    }
    for (name, load) in [("vldr", true), ("vstr", false)] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, _) = take_cond(rest);
            let sd = parse_freg(operand(&ops, 0)?)?;
            let inner = ops[1]
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| ParseError::new("vldr/vstr need [rn, #off]"))?;
            let parts = split_operands(inner);
            let rn = parse_reg(parts[0].trim())?;
            let byte_off = if parts.len() > 1 {
                parse_imm(parts[1].trim())?
            } else {
                0
            };
            if byte_off % 4 != 0 || !(0..256).contains(&byte_off) {
                return Err(ParseError::new(
                    "vldr/vstr offset must be 4-aligned, 0..=252",
                ));
            }
            return Ok(Insn::FpMem {
                cond,
                load,
                sd,
                rn,
                imm6: (byte_off / 4) as u8,
            });
        }
    }
    if let Some(rest) = mnemonic.strip_prefix("vmov") {
        // Core↔FP moves: one operand is rX, the other sY.
        let (cond, _) = take_cond(rest);
        if ops.len() == 2 {
            if ops[0].starts_with('s') && ops[0] != "sp" {
                return Ok(Insn::CoreToFp {
                    cond,
                    sd: parse_freg(operand(&ops, 0)?)?,
                    rn: parse_reg(operand(&ops, 1)?)?,
                });
            }
            return Ok(Insn::FpToCore {
                cond,
                rd: parse_reg(operand(&ops, 0)?)?,
                sn: parse_freg(operand(&ops, 1)?)?,
            });
        }
        return Err(ParseError::new("malformed vmov"));
    }

    // ---- loads/stores ----
    for (name, load) in [("ldm", true), ("stm", false)] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (up, before, rest) = match &rest.get(..2) {
                Some("ia") => (true, false, &rest[2..]),
                Some("ib") => (true, true, &rest[2..]),
                Some("da") => (false, false, &rest[2..]),
                Some("db") => (false, true, &rest[2..]),
                _ => return Err(ParseError::new("ldm/stm need an addressing mode")),
            };
            let (cond, rest) = take_cond(rest);
            if !rest.is_empty() {
                return Err(ParseError::new("trailing characters on ldm/stm"));
            }
            let (base, writeback) = match ops[0].strip_suffix('!') {
                Some(b) => (b.trim(), true),
                None => (ops[0].as_str(), false),
            };
            return Ok(Insn::MemMulti {
                cond,
                load,
                rn: parse_reg(base)?,
                writeback,
                up,
                before,
                regs: parse_reg_list(operand(&ops, 1)?)?,
            });
        }
    }
    for (name, load) in [("ldr", true), ("str", false)] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, rest) = take_cond(rest);
            return parse_mem(cond, load, rest, &ops);
        }
    }

    // ---- multiply / divide / variable shifts ----
    // (checked before DP so `mul` does not fall into `mu`+garbage.)
    for base in [
        "umull", "smull", "udiv", "sdiv", "urem", "srem", "lslv", "lsrv", "asrv", "rorv", "mul",
        "mla",
    ] {
        if let Some(rest) = mnemonic.strip_prefix(base) {
            let op = mul_op(base).unwrap();
            let (cond, rest) = take_cond(rest);
            let s = rest == "s";
            if !rest.is_empty() && !s {
                continue;
            }
            return Ok(match op {
                MulOp::Mla => Insn::Mul {
                    cond,
                    op,
                    s,
                    rd: parse_reg(operand(&ops, 0)?)?,
                    rn: parse_reg(operand(&ops, 1)?)?,
                    rm: parse_reg(operand(&ops, 2)?)?,
                    ra: parse_reg(operand(&ops, 3)?)?,
                },
                MulOp::Umull | MulOp::Smull => Insn::Mul {
                    cond,
                    op,
                    s,
                    rd: parse_reg(operand(&ops, 0)?)?,
                    ra: parse_reg(operand(&ops, 1)?)?,
                    rn: parse_reg(operand(&ops, 2)?)?,
                    rm: parse_reg(operand(&ops, 3)?)?,
                },
                _ => Insn::Mul {
                    cond,
                    op,
                    s,
                    rd: parse_reg(operand(&ops, 0)?)?,
                    rn: parse_reg(operand(&ops, 1)?)?,
                    rm: parse_reg(operand(&ops, 2)?)?,
                    ra: Reg::R0,
                },
            });
        }
    }

    // ---- wide moves ----
    for (name, top) in [("movw", false), ("movt", true)] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, rest) = take_cond(rest);
            if !rest.is_empty() {
                return Err(ParseError::new("trailing characters on movw/movt"));
            }
            let imm = parse_imm(operand(&ops, 1)?)?;
            return Ok(Insn::MovW {
                cond,
                top,
                rd: parse_reg(operand(&ops, 0)?)?,
                imm: imm as u16,
            });
        }
    }

    // ---- system ----
    if let Some(rest) = mnemonic.strip_prefix("svc") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::Svc {
            cond,
            imm: parse_imm(operand(&ops, 0)?)? as u16,
        });
    }
    if let Some(rest) = mnemonic.strip_prefix("mrs") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::Mrs {
            cond,
            rd: parse_reg(operand(&ops, 0)?)?,
            sys: sys_reg(operand(&ops, 1)?)?,
        });
    }
    if let Some(rest) = mnemonic.strip_prefix("msr") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::Msr {
            cond,
            sys: sys_reg(operand(&ops, 0)?)?,
            rn: parse_reg(operand(&ops, 1)?)?,
        });
    }
    for (name, enable) in [("cpsie", true), ("cpsid", false)] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, _) = take_cond(rest);
            return Ok(Insn::Cps {
                cond,
                enable_irq: enable,
            });
        }
    }
    for (name, make) in [
        ("eret", Insn::Eret { cond: Cond::Al }),
        ("nop", Insn::Nop { cond: Cond::Al }),
        ("halt", Insn::Halt { cond: Cond::Al }),
        ("wfi", Insn::Wfi { cond: Cond::Al }),
    ] {
        if let Some(rest) = mnemonic.strip_prefix(name) {
            let (cond, rest) = take_cond(rest);
            if !rest.is_empty() {
                continue;
            }
            return Ok(match make {
                Insn::Eret { .. } => Insn::Eret { cond },
                Insn::Nop { .. } => Insn::Nop { cond },
                Insn::Halt { .. } => Insn::Halt { cond },
                Insn::Wfi { .. } => Insn::Wfi { cond },
                _ => unreachable!(),
            });
        }
    }
    if let Some(rest) = mnemonic.strip_prefix("bx") {
        let (cond, _) = take_cond(rest);
        return Ok(Insn::Bx {
            cond,
            rm: parse_reg(operand(&ops, 0)?)?,
        });
    }

    // ---- branches: `b{l}{cond} .+N` ----
    if let Some(rest) = mnemonic.strip_prefix('b') {
        let (link, rest) = match rest.strip_prefix('l') {
            // Careful: "ble"/"bls"/"blt" are conditional b, not bl.
            Some(after)
                if parse_cond(rest).is_none()
                    || after.is_empty()
                    || parse_cond(after).is_some() =>
            {
                // Decide: if `rest` itself is a valid cond ("le", "ls", "lt"),
                // treat as conditional branch without link.
                if parse_cond(rest)
                    .map(|(_, tail)| tail.is_empty())
                    .unwrap_or(false)
                {
                    (false, rest)
                } else {
                    (true, after)
                }
            }
            _ => (false, rest),
        };
        let (cond, rest) = take_cond(rest);
        if rest.is_empty() {
            let target = ops
                .first()
                .ok_or_else(|| ParseError::new("branch needs a target"))?;
            let t = target
                .strip_prefix('.')
                .ok_or_else(|| ParseError::new("branch target must be .+N"))?;
            let bytes: i64 = t
                .parse()
                .map_err(|_| ParseError::new(format!("bad branch target `{target}`")))?;
            if bytes % 4 != 0 {
                return Err(ParseError::new("branch target must be word aligned"));
            }
            return Ok(Insn::Branch {
                cond,
                link,
                offset: (bytes / 4 - 1) as i32,
            });
        }
    }

    // ---- data processing (last: shortest mnemonics) ----
    for base in [
        "and", "eor", "sub", "rsb", "add", "adc", "sbc", "orr", "mov", "bic", "mvn", "cmp", "cmn",
        "tst", "teq",
    ] {
        if let Some(rest) = mnemonic.strip_prefix(base) {
            let op = dp_op(base).unwrap();
            let (cond, rest) = take_cond(rest);
            let s = rest == "s";
            if !rest.is_empty() && !s {
                continue;
            }
            let s = s || op.is_compare();
            return Ok(if op.is_compare() {
                Insn::Dp {
                    cond,
                    op,
                    s,
                    rd: Reg::R0,
                    rn: parse_reg(operand(&ops, 0)?)?,
                    op2: parse_op2(&ops[1..])?,
                }
            } else if op.ignores_rn() {
                Insn::Dp {
                    cond,
                    op,
                    s,
                    rd: parse_reg(operand(&ops, 0)?)?,
                    rn: Reg::R0,
                    op2: parse_op2(&ops[1..])?,
                }
            } else {
                Insn::Dp {
                    cond,
                    op,
                    s,
                    rd: parse_reg(operand(&ops, 0)?)?,
                    rn: parse_reg(operand(&ops, 1)?)?,
                    op2: parse_op2(&ops[2..])?,
                }
            });
        }
    }

    Err(ParseError::new(format!("unknown mnemonic `{mnemonic}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        parse_insn(text).unwrap().to_string()
    }

    #[test]
    fn parses_dp_forms() {
        assert_eq!(roundtrip("adds r0, r1, #0x4"), "adds r0, r1, #0x4");
        assert_eq!(roundtrip("mov r2, r3"), "mov r2, r3");
        assert_eq!(
            roundtrip("orrne r1, r2, r3, lsl #4"),
            "orrne r1, r2, r3, lsl #4"
        );
        assert_eq!(roundtrip("cmp r1, #0x10"), "cmp r1, #0x10");
        assert_eq!(roundtrip("mvn r0, r0"), "mvn r0, r0");
    }

    #[test]
    fn parses_branch_spellings() {
        // `ble` is branch-if-less-or-equal, not bl+garbage.
        assert!(matches!(
            parse_insn("ble .+8").unwrap(),
            Insn::Branch {
                link: false,
                cond: Cond::Le,
                offset: 1
            }
        ));
        assert!(matches!(
            parse_insn("bl .+8").unwrap(),
            Insn::Branch {
                link: true,
                cond: Cond::Al,
                offset: 1
            }
        ));
        assert!(matches!(
            parse_insn("blle .-4").unwrap(),
            Insn::Branch {
                link: true,
                cond: Cond::Le,
                offset: -2
            }
        ));
        assert!(matches!(
            parse_insn("b .+0"),
            Ok(Insn::Branch {
                link: false,
                cond: Cond::Al,
                offset: -1
            })
        ));
    }

    #[test]
    fn parses_memory_forms() {
        assert_eq!(roundtrip("ldrne r2, [sp, #8]"), "ldrne r2, [sp, #8]");
        assert_eq!(roundtrip("strb r0, [r1, r2]"), "strb r0, [r1, r2]");
        assert_eq!(roundtrip("ldr r0, [r1, #-4]!"), "ldr r0, [r1, #-4]!");
        assert_eq!(roundtrip("ldr r0, [r1], #4"), "ldr r0, [r1], #4");
        assert_eq!(
            roundtrip("ldr r0, [r1, r2, lsl #2]"),
            "ldr r0, [r1, r2, lsl #2]"
        );
        assert_eq!(roundtrip("stmdb sp!, {r0, lr}"), "stmdb sp!, {r0, lr}");
        assert_eq!(
            roundtrip("ldmia sp!, {r0, r1, r2}"),
            "ldmia sp!, {r0, r1, r2}"
        );
    }

    #[test]
    fn parses_fp_and_system() {
        assert_eq!(roundtrip("vadd.f32 s1, s2, s3"), "vadd.f32 s1, s2, s3");
        assert_eq!(roundtrip("vldr s4, [r2, #8]"), "vldr s4, [r2, #8]");
        assert_eq!(roundtrip("vmov r1, s2"), "vmov r1, s2");
        assert_eq!(roundtrip("vmov s3, r4"), "vmov s3, r4");
        assert_eq!(roundtrip("svc #42"), "svc #42");
        assert_eq!(
            roundtrip("mrs r1, Cycles".to_lowercase().as_str()),
            "mrs r1, Cycles"
        );
        assert_eq!(roundtrip("cpsie"), "cpsie");
        assert_eq!(roundtrip("wfi"), "wfi");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_insn("frobnicate r0").is_err());
        assert!(parse_insn("add r0").is_err());
        assert!(parse_insn("ldr r0, r1").is_err());
        assert!(parse_insn("mov r99, #1").is_err());
        assert!(parse_insn("").is_err());
    }
}

//! Binary encoding of AR32 instructions.

use crate::insn::{AddrMode, Insn, MemOffset, Operand2};

const fn cls(class: u32) -> u32 {
    class << 24
}

fn reg4(r: crate::Reg) -> u32 {
    r.index() as u32
}

fn freg5(r: crate::FReg) -> u32 {
    r.index() as u32
}

/// Encodes one instruction into its 32-bit binary form.
///
/// The encoding is total on [`Insn`]: every representable instruction value
/// encodes, and [`crate::decode`] inverts it exactly.
///
/// # Panics
///
/// Panics if a field is out of its documented range (e.g. a shift amount
/// above 31, a branch offset that does not fit in 23 bits, or an FP memory
/// offset above 63). The assembler validates these before calling.
pub fn encode(insn: &Insn) -> u32 {
    let cond = insn.cond().bits() << 28;
    cond | match *insn {
        Insn::Dp {
            op,
            s,
            rd,
            rn,
            op2,
            cond: _,
        } => {
            let common =
                ((op as u32) << 20) | ((s as u32) << 19) | (reg4(rd) << 15) | (reg4(rn) << 11);
            match op2 {
                Operand2::Reg(sr) => {
                    assert!(sr.amount < 32, "shift amount out of range: {}", sr.amount);
                    cls(0x0)
                        | common
                        | (reg4(sr.rm) << 7)
                        | ((sr.shift as u32) << 5)
                        | (sr.amount as u32)
                }
                Operand2::Imm { base, ror4 } => {
                    assert!(ror4 < 8, "immediate rotation out of range: {ror4}");
                    cls(0x1) | common | ((base as u32) << 3) | (ror4 as u32)
                }
            }
        }
        Insn::MovW {
            top,
            rd,
            imm,
            cond: _,
        } => cls(0x8) | ((top as u32) << 23) | (reg4(rd) << 19) | (imm as u32),
        Insn::Mul {
            op,
            s,
            rd,
            rn,
            rm,
            ra,
            cond: _,
        } => {
            cls(0x2)
                | ((op as u32) << 20)
                | ((s as u32) << 19)
                | (reg4(rd) << 15)
                | (reg4(rn) << 11)
                | (reg4(rm) << 7)
                | (reg4(ra) << 3)
        }
        Insn::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            mode,
            cond: _,
        } => {
            let AddrMode { pre, writeback, up } = mode;
            let common = cls(0x3)
                | ((size as u32) << 22)
                | ((load as u32) << 21)
                | ((up as u32) << 20)
                | ((pre as u32) << 19)
                | ((writeback as u32) << 18)
                | (reg4(rd) << 14)
                | (reg4(rn) << 10);
            match offset {
                MemOffset::Imm(imm) => {
                    assert!(imm < 512, "memory immediate offset out of range: {imm}");
                    common | (imm as u32)
                }
                MemOffset::Reg { rm, shl } => {
                    assert!(shl < 8, "memory register-offset shift out of range: {shl}");
                    common | (1 << 9) | (reg4(rm) << 5) | ((shl as u32) << 2)
                }
            }
        }
        Insn::MemMulti {
            load,
            rn,
            writeback,
            up,
            before,
            regs,
            cond: _,
        } => {
            cls(0x4)
                | ((load as u32) << 23)
                | ((writeback as u32) << 22)
                | ((up as u32) << 21)
                | ((before as u32) << 20)
                | (reg4(rn) << 16)
                | (regs as u32)
        }
        Insn::Branch {
            link,
            offset,
            cond: _,
        } => {
            assert!(
                (-(1 << 22)..(1 << 22)).contains(&offset),
                "branch offset out of range: {offset}"
            );
            cls(0x5) | ((link as u32) << 23) | ((offset as u32) & 0x7F_FFFF)
        }
        Insn::Bx { rm, cond: _ } => cls(0x7) | (0x8 << 20) | (reg4(rm) << 15),
        Insn::FpArith {
            op,
            sd,
            sn,
            sm,
            cond: _,
        } => cls(0x6) | ((op as u32) << 19) | (freg5(sd) << 10) | (freg5(sn) << 5) | freg5(sm),
        Insn::FpUnary {
            op,
            sd,
            sm,
            cond: _,
        } => cls(0x6) | ((8 + op as u32) << 19) | (freg5(sd) << 10) | freg5(sm),
        Insn::FpCmp { sn, sm, cond: _ } => cls(0x6) | (12 << 19) | (freg5(sn) << 5) | freg5(sm),
        Insn::FpToInt { rd, sm, cond: _ } => cls(0x6) | (13 << 19) | (reg4(rd) << 10) | freg5(sm),
        Insn::IntToFp { sd, rm, cond: _ } => {
            cls(0x6) | (14 << 19) | (freg5(sd) << 10) | (reg4(rm) << 5)
        }
        Insn::FpToCore { rd, sn, cond: _ } => cls(0x6) | (15 << 19) | (reg4(rd) << 10) | freg5(sn),
        Insn::CoreToFp { sd, rn, cond: _ } => {
            cls(0x6) | (16 << 19) | (freg5(sd) << 10) | (reg4(rn) << 5)
        }
        Insn::FpMem {
            load,
            sd,
            rn,
            imm6,
            cond: _,
        } => {
            assert!(imm6 < 64, "FP memory offset out of range: {imm6}");
            let sub = if load { 17 } else { 18 };
            cls(0x6)
                | (sub << 19)
                | (((imm6 as u32) >> 5) << 15)
                | (freg5(sd) << 10)
                | ((reg4(rn)) << 5)
                | ((imm6 as u32) & 0x1F)
        }
        Insn::Svc { imm, cond: _ } => cls(0x7) | (imm as u32),
        Insn::Nop { cond: _ } => cls(0x7) | (0x1 << 20),
        Insn::Halt { cond: _ } => cls(0x7) | (0x2 << 20),
        Insn::Mrs { rd, sys, cond: _ } => cls(0x7) | (0x3 << 20) | (reg4(rd) << 15) | (sys as u32),
        Insn::Msr { sys, rn, cond: _ } => cls(0x7) | (0x4 << 20) | (reg4(rn) << 15) | (sys as u32),
        Insn::Eret { cond: _ } => cls(0x7) | (0x5 << 20),
        Insn::Cps {
            enable_irq,
            cond: _,
        } => cls(0x7) | (if enable_irq { 0x7 } else { 0x6 } << 20),
        Insn::Wfi { cond: _ } => cls(0x7) | (0x9 << 20),
    }
}

//! Binary decoding of AR32 instructions.

use std::fmt;

use crate::insn::{
    AddrMode, DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, Shift,
    ShiftedReg, SysReg,
};
use crate::{Cond, FReg, Reg};

/// Error returned when a 32-bit word is not a valid AR32 instruction.
///
/// On the simulated core this surfaces as an *undefined instruction*
/// exception, exactly like executing a corrupted opcode on real hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn bit(word: u32, n: u32) -> bool {
    (word >> n) & 1 == 1
}

fn reg(word: u32, lo: u32) -> Reg {
    Reg::from_index(bits(word, lo + 3, lo))
}

/// Decodes a 32-bit word into an instruction.
///
/// Decoding is *strict*: any word outside the exact image of
/// [`crate::encode`] is rejected, including words with nonzero must-be-zero
/// fields. This makes encode/decode a bijection, which the property tests
/// verify, and gives bit flips in instruction memory realistic semantics
/// (mutate into another valid instruction, or fault).
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid instruction.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let err = Err(DecodeError { word });
    let cond = Cond::from_bits(bits(word, 31, 28));
    let class = bits(word, 27, 24);
    match class {
        0x0 | 0x1 => {
            let opbits = bits(word, 23, 20);
            if opbits > 14 {
                return err;
            }
            let op = DpOp::ALL[opbits as usize];
            let s = bit(word, 19);
            let rd = reg(word, 15);
            let rn = reg(word, 11);
            // Compares always set flags and have no destination; Mov/Mvn
            // have no first operand. Enforce canonical zero fields.
            if op.is_compare() && (!s || rd != Reg::R0) {
                return err;
            }
            if op.ignores_rn() && rn != Reg::R0 {
                return err;
            }
            let op2 = if class == 0x0 {
                Operand2::Reg(ShiftedReg {
                    rm: reg(word, 7),
                    shift: Shift::ALL[bits(word, 6, 5) as usize],
                    amount: bits(word, 4, 0) as u8,
                })
            } else {
                Operand2::Imm {
                    base: bits(word, 10, 3) as u8,
                    ror4: bits(word, 2, 0) as u8,
                }
            };
            Ok(Insn::Dp {
                cond,
                op,
                s,
                rd,
                rn,
                op2,
            })
        }
        0x2 => {
            let opbits = bits(word, 23, 20);
            if opbits > 11 || bits(word, 2, 0) != 0 {
                return err;
            }
            let op = MulOp::ALL[opbits as usize];
            let ra = reg(word, 3);
            // ra is meaningful only for MLA and long multiplies.
            if !matches!(op, MulOp::Mla | MulOp::Umull | MulOp::Smull) && ra != Reg::R0 {
                return err;
            }
            Ok(Insn::Mul {
                cond,
                op,
                s: bit(word, 19),
                rd: reg(word, 15),
                rn: reg(word, 11),
                rm: reg(word, 7),
                ra,
            })
        }
        0x3 => {
            let sizebits = bits(word, 23, 22);
            if sizebits > 2 {
                return err;
            }
            let size = MemSize::ALL[sizebits as usize];
            let mode = AddrMode {
                up: bit(word, 20),
                pre: bit(word, 19),
                writeback: bit(word, 18),
            };
            // Post-index implies writeback; a post-index encoding without
            // writeback is not canonical.
            if !mode.pre && !mode.writeback {
                return err;
            }
            let offset = if bit(word, 9) {
                if bits(word, 1, 0) != 0 {
                    return err;
                }
                MemOffset::Reg {
                    rm: reg(word, 5),
                    shl: bits(word, 4, 2) as u8,
                }
            } else {
                MemOffset::Imm(bits(word, 8, 0) as u16)
            };
            Ok(Insn::Mem {
                cond,
                load: bit(word, 21),
                size,
                rd: reg(word, 14),
                rn: reg(word, 10),
                offset,
                mode,
            })
        }
        0x4 => {
            let regs = bits(word, 15, 0) as u16;
            if regs == 0 {
                return err;
            }
            Ok(Insn::MemMulti {
                cond,
                load: bit(word, 23),
                writeback: bit(word, 22),
                up: bit(word, 21),
                before: bit(word, 20),
                rn: reg(word, 16),
                regs,
            })
        }
        0x5 => {
            let raw = bits(word, 22, 0);
            // Sign-extend the 23-bit offset.
            let offset = ((raw << 9) as i32) >> 9;
            Ok(Insn::Branch {
                cond,
                link: bit(word, 23),
                offset,
            })
        }
        0x6 => {
            let sub = bits(word, 23, 19);
            let a5 = bits(word, 14, 10);
            let b5 = bits(word, 9, 5);
            let c5 = bits(word, 4, 0);
            let zero15_18 = bits(word, 18, 15) == 0;
            match sub {
                0..=6 => {
                    if !zero15_18 {
                        return err;
                    }
                    Ok(Insn::FpArith {
                        cond,
                        op: FpArithOp::ALL[sub as usize],
                        sd: FReg::new(a5),
                        sn: FReg::new(b5),
                        sm: FReg::new(c5),
                    })
                }
                8..=11 => {
                    if !zero15_18 || b5 != 0 {
                        return err;
                    }
                    Ok(Insn::FpUnary {
                        cond,
                        op: FpUnaryOp::ALL[(sub - 8) as usize],
                        sd: FReg::new(a5),
                        sm: FReg::new(c5),
                    })
                }
                12 => {
                    if !zero15_18 || a5 != 0 {
                        return err;
                    }
                    Ok(Insn::FpCmp {
                        cond,
                        sn: FReg::new(b5),
                        sm: FReg::new(c5),
                    })
                }
                13 => {
                    if !zero15_18 || a5 > 15 || b5 != 0 {
                        return err;
                    }
                    Ok(Insn::FpToInt {
                        cond,
                        rd: Reg::from_index(a5),
                        sm: FReg::new(c5),
                    })
                }
                14 => {
                    if !zero15_18 || b5 > 15 || c5 != 0 {
                        return err;
                    }
                    Ok(Insn::IntToFp {
                        cond,
                        sd: FReg::new(a5),
                        rm: Reg::from_index(b5),
                    })
                }
                15 => {
                    if !zero15_18 || a5 > 15 || b5 != 0 {
                        return err;
                    }
                    Ok(Insn::FpToCore {
                        cond,
                        rd: Reg::from_index(a5),
                        sn: FReg::new(c5),
                    })
                }
                16 => {
                    if !zero15_18 || b5 > 15 || c5 != 0 {
                        return err;
                    }
                    Ok(Insn::CoreToFp {
                        cond,
                        sd: FReg::new(a5),
                        rn: Reg::from_index(b5),
                    })
                }
                17 | 18 => {
                    if bits(word, 18, 16) != 0 || b5 > 15 {
                        return err;
                    }
                    let imm6 = (c5 | (bits(word, 15, 15) << 5)) as u8;
                    Ok(Insn::FpMem {
                        cond,
                        load: sub == 17,
                        sd: FReg::new(a5),
                        rn: Reg::from_index(b5),
                        imm6,
                    })
                }
                _ => err,
            }
        }
        0x7 => {
            let op = bits(word, 23, 20);
            let a4 = bits(word, 18, 15);
            let low = bits(word, 14, 0);
            match op {
                0x0 => {
                    if bits(word, 19, 16) != 0 {
                        return err;
                    }
                    Ok(Insn::Svc {
                        cond,
                        imm: bits(word, 15, 0) as u16,
                    })
                }
                0x1 if bits(word, 19, 0) == 0 => Ok(Insn::Nop { cond }),
                0x2 if bits(word, 19, 0) == 0 => Ok(Insn::Halt { cond }),
                0x3 if !bit(word, 19) && low >> 4 == 0 && bits(word, 3, 0) < 9 => Ok(Insn::Mrs {
                    cond,
                    rd: Reg::from_index(a4),
                    sys: SysReg::ALL[bits(word, 3, 0) as usize],
                }),
                0x4 if !bit(word, 19) && low >> 4 == 0 && bits(word, 3, 0) < 9 => Ok(Insn::Msr {
                    cond,
                    sys: SysReg::ALL[bits(word, 3, 0) as usize],
                    rn: Reg::from_index(a4),
                }),
                0x5 if bits(word, 19, 0) == 0 => Ok(Insn::Eret { cond }),
                0x6 if bits(word, 19, 0) == 0 => Ok(Insn::Cps {
                    cond,
                    enable_irq: false,
                }),
                0x7 if bits(word, 19, 0) == 0 => Ok(Insn::Cps {
                    cond,
                    enable_irq: true,
                }),
                0x8 if !bit(word, 19) && low == 0 => Ok(Insn::Bx {
                    cond,
                    rm: Reg::from_index(a4),
                }),
                0x9 if bits(word, 19, 0) == 0 => Ok(Insn::Wfi { cond }),
                _ => err,
            }
        }
        0x8 => {
            if bits(word, 18, 16) != 0 {
                return err;
            }
            Ok(Insn::MovW {
                cond,
                top: bit(word, 23),
                rd: reg(word, 19),
                imm: bits(word, 15, 0) as u16,
            })
        }
        _ => err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn rejects_bad_class() {
        assert!(decode(0xE900_0000).is_err()); // class 0x9
        assert!(decode(0xEF00_0000).is_err()); // class 0xF
    }

    #[test]
    fn rejects_noncanonical_compare() {
        // CMP with S=0 must not decode.
        let w = encode(&Insn::Dp {
            cond: Cond::Al,
            op: DpOp::Cmp,
            s: true,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Operand2::Imm { base: 0, ror4: 0 },
        });
        assert!(decode(w).is_ok());
        assert!(decode(w & !(1 << 19)).is_err());
    }

    #[test]
    fn rejects_empty_register_list() {
        let w = encode(&Insn::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::Sp,
            writeback: true,
            up: true,
            before: false,
            regs: 1,
        });
        assert!(decode(w & !1).is_err());
    }

    #[test]
    fn branch_offset_sign_extension() {
        let insn = Insn::Branch {
            cond: Cond::Al,
            link: false,
            offset: -2,
        };
        assert_eq!(decode(encode(&insn)).unwrap(), insn);
        let insn = Insn::Branch {
            cond: Cond::Al,
            link: true,
            offset: (1 << 22) - 1,
        };
        assert_eq!(decode(encode(&insn)).unwrap(), insn);
        let insn = Insn::Branch {
            cond: Cond::Al,
            link: true,
            offset: -(1 << 22),
        };
        assert_eq!(decode(encode(&insn)).unwrap(), insn);
    }
}

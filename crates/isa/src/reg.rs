//! General-purpose and floating-point register names.

use std::fmt;

/// A general-purpose (integer) register, `r0`–`r15`.
///
/// By software convention (mirroring AAPCS): `r13` is the stack pointer
/// (`sp`), `r14` the link register (`lr`) and `r15` the program counter
/// (`pc`). The hardware treats `pc` specially: it is not a readable/writable
/// operand of ordinary data-processing instructions in AR32 (use branches).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    /// Stack pointer by convention.
    Sp = 13,
    /// Link register by convention.
    Lr = 14,
    /// Program counter.
    Pc = 15,
}

impl Reg {
    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::Sp,
        Reg::Lr,
        Reg::Pc,
    ];

    /// Register index, `0..=15`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn from_index(index: u32) -> Reg {
        Reg::ALL[index as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => write!(f, "sp"),
            Reg::Lr => write!(f, "lr"),
            Reg::Pc => write!(f, "pc"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// A single-precision floating-point register, `s0`–`s31`.
///
/// AR32's FP bank mirrors VFPv3-D16's single-precision view: 32 registers of
/// 32 bits, a separate SRAM array from the integer file (and a separate
/// fault-injection target).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FReg(u8);

impl FReg {
    /// Builds `s<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn new(index: u32) -> FReg {
        assert!(index < 32, "FP register index out of range: {index}");
        FReg(index as u8)
    }

    /// Register index, `0..=31`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Shorthand constructor for FP registers: `s(7)` is `s7`.
///
/// # Panics
///
/// Panics if `index > 31`.
pub fn s(index: u32) -> FReg {
    FReg::new(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u32), r);
        }
    }

    #[test]
    fn reg_display_uses_aliases() {
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!(Reg::Lr.to_string(), "lr");
        assert_eq!(Reg::Pc.to_string(), "pc");
        assert_eq!(Reg::R3.to_string(), "r3");
    }

    #[test]
    fn freg_display() {
        assert_eq!(FReg::new(31).to_string(), "s31");
    }

    #[test]
    #[should_panic]
    fn freg_out_of_range_panics() {
        FReg::new(32);
    }
}

//! # sea-isa — the AR32 instruction set architecture
//!
//! AR32 is a clean 32-bit ARM-class ISA designed for the SEA soft-error
//! assessment framework. It deliberately mirrors the architectural traits of
//! ARMv7-A that matter for microarchitectural reliability studies —
//! conditional execution on every instruction, a barrel shifter, load/store
//! multiple, a VFP-like single-precision register bank, supervisor/user
//! privilege with banked registers, and an SVC-based syscall interface —
//! while using its own fixed-width, fully documented binary encoding.
//!
//! The crate provides:
//!
//! * the instruction model ([`Insn`]) with every operand type,
//! * a bijective binary [`encode`]/[`decode`] pair,
//! * a programmatic assembler ([`Asm`]) with labels, sections and data
//!   directives, producing loadable [`Image`]s,
//! * a disassembler (`Display` on [`Insn`]).
//!
//! # Example
//!
//! ```
//! use sea_isa::{Asm, Reg, Cond};
//!
//! # fn main() -> Result<(), sea_isa::AsmError> {
//! let mut a = Asm::new();
//! let entry = a.label("entry");
//! a.bind(entry)?;
//! a.mov_imm(Reg::R0, 41);
//! a.add_imm(Reg::R0, Reg::R0, 1);
//! a.svc(0); // exit
//! let image = a.finish(entry)?;
//! assert_eq!(image.entry(), image.text_base());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cond;
mod decode;
mod disasm;
mod encode;
mod image;
mod insn;
mod parse;
mod reg;

pub use asm::{reg_mask, Asm, AsmError, Label, Section, DATA_BASE, RODATA_BASE, TEXT_BASE};
pub use cond::Cond;
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use image::{Image, ImageError, Segment, SegmentFlags};
pub use insn::{
    AddrMode, DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, Shift,
    ShiftedReg, SysReg,
};
pub use parse::{parse_insn, ParseError};
pub use reg::{s, FReg, Reg};

/// Size of one AR32 instruction in bytes. All instructions are fixed width.
pub const INSN_BYTES: u32 = 4;

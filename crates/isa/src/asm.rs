//! The programmatic assembler.
//!
//! [`Asm`] builds an [`Image`] from a stream of instructions, data
//! directives, labels and fix-ups. It is used by `sea-workloads` to express
//! every guest benchmark, and by `sea-kernel` to build the supervisor image.
//!
//! The assembler manages four sections at fixed virtual bases (mirroring a
//! conventional static link layout):
//!
//! | section | base | contents |
//! |---------|------|----------|
//! | `.text` | `0x0001_0000` | code |
//! | `.rodata` | `0x0010_0000` | read-only data |
//! | `.data` | `0x0020_0000` | initialized read-write data |
//! | `.bss` | after `.data` | zero-initialized, size-only |
//!
//! Conditional execution is expressed with the modal [`Asm::ifc`], which
//! applies a condition code to the *next* emitted instruction:
//!
//! ```
//! use sea_isa::{Asm, Cond, Reg};
//! let mut a = Asm::new();
//! let l = a.label("start");
//! a.bind(l).unwrap();
//! a.cmp_imm(Reg::R0, 0);
//! a.ifc(Cond::Ne).sub_imm(Reg::R0, Reg::R0, 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::insn::{
    AddrMode, DpOp, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize, MulOp, Operand2, ShiftedReg,
    SysReg,
};
use crate::{encode, Cond, FReg, Image, ImageError, Reg, Segment, SegmentFlags};

/// Default virtual base of `.text`.
pub const TEXT_BASE: u32 = 0x0001_0000;
/// Default virtual base of `.rodata`.
pub const RODATA_BASE: u32 = 0x0010_0000;
/// Default virtual base of `.data`.
pub const DATA_BASE: u32 = 0x0020_0000;

/// An assembler section.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Section {
    /// Executable code.
    Text,
    /// Read-only data.
    Rodata,
    /// Initialized read-write data.
    Data,
    /// Zero-initialized data (size only; emitting bytes here is an error).
    Bss,
}

impl Section {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            Section::Text => 0,
            Section::Rodata => 1,
            Section::Data => 2,
            Section::Bss => 3,
        }
    }
}

/// A label handle created by [`Asm::label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Assembly error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label was used but never bound.
    UnboundLabel {
        /// Label name.
        name: String,
    },
    /// A label was bound twice.
    Rebound {
        /// Label name.
        name: String,
    },
    /// A branch target is out of the ±4 MiB encodable range.
    BranchOutOfRange {
        /// Label name of the target.
        name: String,
    },
    /// Data was emitted into `.bss`.
    DataInBss,
    /// The produced segments are invalid.
    Image(ImageError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { name } => write!(f, "label `{name}` was never bound"),
            AsmError::Rebound { name } => write!(f, "label `{name}` bound twice"),
            AsmError::BranchOutOfRange { name } => {
                write!(f, "branch to `{name}` out of encodable range")
            }
            AsmError::DataInBss => write!(f, "initialized data emitted into .bss"),
            AsmError::Image(e) => write!(f, "invalid image: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ImageError> for AsmError {
    fn from(e: ImageError) -> AsmError {
        AsmError::Image(e)
    }
}

#[derive(Clone, Copy, Debug)]
enum FixupKind {
    /// Patch the 23-bit branch offset of the instruction at the fix-up site.
    Branch,
    /// Write the label's absolute address into the data word at the site.
    AbsWord,
    /// Patch a `movw`+`movt` pair (two consecutive words) with the label's
    /// absolute address.
    MovAddr,
}

#[derive(Clone, Copy, Debug)]
struct Fixup {
    section: Section,
    offset: u32,
    label: Label,
    kind: FixupKind,
}

#[derive(Clone, Debug)]
struct LabelInfo {
    name: String,
    bound: Option<(Section, u32)>,
}

/// The programmatic assembler; see the module-level documentation.
#[derive(Debug)]
pub struct Asm {
    bufs: [Vec<u8>; Section::COUNT],
    bss_size: u32,
    cur: Section,
    labels: Vec<LabelInfo>,
    fixups: Vec<Fixup>,
    pending_cond: Option<Cond>,
    bases: [u32; 3],
}

impl Default for Asm {
    fn default() -> Self {
        Asm::new()
    }
}

impl Asm {
    /// Creates an empty assembler positioned in `.text` with the default
    /// section bases.
    pub fn new() -> Asm {
        Asm {
            bufs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            bss_size: 0,
            cur: Section::Text,
            labels: Vec::new(),
            fixups: Vec::new(),
            pending_cond: None,
            bases: [TEXT_BASE, RODATA_BASE, DATA_BASE],
        }
    }

    // ----- sections, labels, fix-ups -------------------------------------

    /// Switches the current section.
    pub fn section(&mut self, s: Section) -> &mut Asm {
        self.cur = s;
        self
    }

    /// Creates a fresh (unbound) label.
    pub fn label(&mut self, name: &str) -> Label {
        self.labels.push(LabelInfo {
            name: name.to_string(),
            bound: None,
        });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::Rebound`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let here = (self.cur, self.here());
        let info = &mut self.labels[label.0];
        if info.bound.is_some() {
            return Err(AsmError::Rebound {
                name: info.name.clone(),
            });
        }
        info.bound = Some(here);
        Ok(())
    }

    /// Creates a label and immediately binds it here.
    ///
    /// # Panics
    ///
    /// Never panics (fresh labels are unbound).
    pub fn here_label(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Current offset within the current section, in bytes.
    pub fn here(&self) -> u32 {
        if self.cur == Section::Bss {
            self.bss_size
        } else {
            self.bufs[self.cur.index()].len() as u32
        }
    }

    // ----- raw emission ---------------------------------------------------

    /// Emits one instruction, consuming any pending condition from
    /// [`Asm::ifc`].
    ///
    /// # Panics
    ///
    /// Panics if emitting into a non-text section or if a field is out of
    /// range (see [`encode`]).
    pub fn push(&mut self, mut insn: Insn) -> &mut Asm {
        assert_eq!(self.cur, Section::Text, "instructions must go into .text");
        if let Some(c) = self.pending_cond.take() {
            insn = with_cond(insn, c);
        }
        let w = encode(&insn);
        self.bufs[Section::Text.index()].extend_from_slice(&w.to_le_bytes());
        self
    }

    /// Applies `cond` to the next emitted instruction only.
    pub fn ifc(&mut self, cond: Cond) -> &mut Asm {
        self.pending_cond = Some(cond);
        self
    }

    /// Emits one instruction from its textual form (see
    /// [`crate::parse_insn`]); a convenience for porting snippets.
    ///
    /// # Panics
    ///
    /// Panics if the text does not parse — assembly text in source code is
    /// programmer-authored, like the builder calls around it.
    pub fn text(&mut self, line: &str) -> &mut Asm {
        let insn = crate::parse_insn(line).unwrap_or_else(|e| panic!("bad assembly `{line}`: {e}"));
        self.push(insn)
    }

    // ----- data directives --------------------------------------------------

    fn emit_bytes(&mut self, bytes: &[u8]) {
        assert_ne!(self.cur, Section::Bss, "initialized data emitted into .bss");
        self.bufs[self.cur.index()].extend_from_slice(bytes);
    }

    /// Emits raw bytes into the current data section.
    ///
    /// # Panics
    ///
    /// Panics if the current section is `.bss`.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Asm {
        self.emit_bytes(bytes);
        self
    }

    /// Emits one little-endian 32-bit word.
    pub fn word(&mut self, w: u32) -> &mut Asm {
        self.emit_bytes(&w.to_le_bytes());
        self
    }

    /// Emits a slice of words.
    pub fn words(&mut self, ws: &[u32]) -> &mut Asm {
        for &w in ws {
            self.word(w);
        }
        self
    }

    /// Emits one little-endian 16-bit halfword.
    pub fn half(&mut self, h: u16) -> &mut Asm {
        self.emit_bytes(&h.to_le_bytes());
        self
    }

    /// Emits one `f32` as its IEEE-754 bit pattern.
    pub fn float(&mut self, v: f32) -> &mut Asm {
        self.word(v.to_bits())
    }

    /// Emits a slice of floats.
    pub fn floats(&mut self, vs: &[f32]) -> &mut Asm {
        for &v in vs {
            self.float(v);
        }
        self
    }

    /// Emits `n` zero bytes (or reserves them, in `.bss`).
    pub fn zero(&mut self, n: u32) -> &mut Asm {
        if self.cur == Section::Bss {
            self.bss_size += n;
        } else {
            let idx = self.cur.index();
            self.bufs[idx].resize(self.bufs[idx].len() + n as usize, 0);
        }
        self
    }

    /// Pads the current section to an `n`-byte boundary (n a power of two).
    pub fn align(&mut self, n: u32) -> &mut Asm {
        debug_assert!(n.is_power_of_two());
        let here = self.here();
        let pad = here.next_multiple_of(n) - here;
        self.zero(pad)
    }

    /// Emits a data word that will hold the absolute address of `label`.
    pub fn word_label(&mut self, label: Label) -> &mut Asm {
        let fix = Fixup {
            section: self.cur,
            offset: self.here(),
            label,
            kind: FixupKind::AbsWord,
        };
        self.word(0);
        self.fixups.push(fix);
        self
    }

    // ----- data processing ----------------------------------------------

    /// Generic data-processing emission.
    pub fn dp(&mut self, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Operand2) -> &mut Asm {
        let s = s || op.is_compare();
        let rd = if op.is_compare() { Reg::R0 } else { rd };
        let rn = if op.ignores_rn() { Reg::R0 } else { rn };
        self.push(Insn::Dp {
            cond: Cond::Al,
            op,
            s,
            rd,
            rn,
            op2,
        })
    }

    fn dp_imm(&mut self, op: DpOp, s: bool, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        let op2 = Operand2::encode_imm(imm)
            .unwrap_or_else(|| panic!("immediate {imm:#x} not encodable; use mov32"));
        self.dp(op, s, rd, rn, op2)
    }

    /// `rd = rm`.
    pub fn mov(&mut self, rd: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = imm` for rotated-encodable immediates.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not encodable; use [`Asm::mov32`] for arbitrary
    /// constants.
    pub fn mov_imm(&mut self, rd: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Mov, false, rd, Reg::R0, imm)
    }

    /// Loads an arbitrary 32-bit constant with a `movw`/`movt` pair (the
    /// `movt` is skipped when the top half is zero).
    pub fn mov32(&mut self, rd: Reg, value: u32) -> &mut Asm {
        self.push(Insn::MovW {
            cond: Cond::Al,
            top: false,
            rd,
            imm: value as u16,
        });
        if value >> 16 != 0 {
            self.push(Insn::MovW {
                cond: Cond::Al,
                top: true,
                rd,
                imm: (value >> 16) as u16,
            });
        }
        self
    }

    /// Loads the absolute address of `label` into `rd` (always a
    /// `movw`+`movt` pair, patched at finish time).
    pub fn addr(&mut self, rd: Reg, label: Label) -> &mut Asm {
        assert_eq!(self.cur, Section::Text);
        assert!(self.pending_cond.is_none(), "addr cannot be conditional");
        let fix = Fixup {
            section: self.cur,
            offset: self.here(),
            label,
            kind: FixupKind::MovAddr,
        };
        self.fixups.push(fix);
        self.push(Insn::MovW {
            cond: Cond::Al,
            top: false,
            rd,
            imm: 0,
        });
        self.push(Insn::MovW {
            cond: Cond::Al,
            top: true,
            rd,
            imm: 0,
        })
    }

    /// `rd = rn + rm`.
    pub fn add(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Add,
            false,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn + imm`.
    pub fn add_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Add, false, rd, rn, imm)
    }

    /// `rd = rn + (rm SHIFT amount)`.
    pub fn add_shifted(&mut self, rd: Reg, rn: Reg, sr: ShiftedReg) -> &mut Asm {
        self.dp(DpOp::Add, false, rd, rn, Operand2::Reg(sr))
    }

    /// `rd = rn - rm`.
    pub fn sub(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Sub,
            false,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn - imm`.
    pub fn sub_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Sub, false, rd, rn, imm)
    }

    /// `rd = rn - imm`, setting flags.
    pub fn subs_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Sub, true, rd, rn, imm)
    }

    /// `rd = imm - rn` (reverse subtract; `rsb rd, rn, #0` negates).
    pub fn rsb_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Rsb, false, rd, rn, imm)
    }

    /// `rd = rn - rm`, setting flags.
    pub fn subs(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Sub,
            true,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn + imm`, setting flags.
    pub fn adds_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Add, true, rd, rn, imm)
    }

    /// `rd = rn & rm`.
    pub fn and(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::And,
            false,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn & imm`.
    pub fn and_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::And, false, rd, rn, imm)
    }

    /// `rd = rn | rm`.
    pub fn orr(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Orr,
            false,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn | imm`.
    pub fn orr_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Orr, false, rd, rn, imm)
    }

    /// `rd = rn | (rm SHIFT amount)`.
    pub fn orr_shifted(&mut self, rd: Reg, rn: Reg, sr: ShiftedReg) -> &mut Asm {
        self.dp(DpOp::Orr, false, rd, rn, Operand2::Reg(sr))
    }

    /// `rd = rn ^ rm`.
    pub fn eor(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Eor,
            false,
            rd,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rn ^ imm`.
    pub fn eor_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Eor, false, rd, rn, imm)
    }

    /// `rd = rn ^ (rm SHIFT amount)`.
    pub fn eor_shifted(&mut self, rd: Reg, rn: Reg, sr: ShiftedReg) -> &mut Asm {
        self.dp(DpOp::Eor, false, rd, rn, Operand2::Reg(sr))
    }

    /// `rd = rn & !imm`.
    pub fn bic_imm(&mut self, rd: Reg, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Bic, false, rd, rn, imm)
    }

    /// `rd = !rm`.
    pub fn mvn(&mut self, rd: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Mvn,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// `rd = rm << amount` (immediate shift).
    pub fn lsl(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Asm {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg {
                rm,
                shift: crate::Shift::Lsl,
                amount,
            }),
        )
    }

    /// `rd = rm >> amount` (immediate logical shift).
    pub fn lsr(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Asm {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg {
                rm,
                shift: crate::Shift::Lsr,
                amount,
            }),
        )
    }

    /// `rd = rm >> amount` (immediate arithmetic shift).
    pub fn asr(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Asm {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg {
                rm,
                shift: crate::Shift::Asr,
                amount,
            }),
        )
    }

    /// `rd = rm ror amount` (immediate rotate).
    pub fn ror(&mut self, rd: Reg, rm: Reg, amount: u8) -> &mut Asm {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R0,
            Operand2::Reg(ShiftedReg {
                rm,
                shift: crate::Shift::Ror,
                amount,
            }),
        )
    }

    /// Flags from `rn - rm`.
    pub fn cmp(&mut self, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Cmp,
            true,
            Reg::R0,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    /// Flags from `rn - imm`.
    pub fn cmp_imm(&mut self, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Cmp, true, Reg::R0, rn, imm)
    }

    /// Flags from `rn & imm`.
    pub fn tst_imm(&mut self, rn: Reg, imm: u32) -> &mut Asm {
        self.dp_imm(DpOp::Tst, true, Reg::R0, rn, imm)
    }

    /// Flags from `rn & rm`.
    pub fn tst(&mut self, rn: Reg, rm: Reg) -> &mut Asm {
        self.dp(
            DpOp::Tst,
            true,
            Reg::R0,
            rn,
            Operand2::Reg(ShiftedReg::plain(rm)),
        )
    }

    // ----- multiply / divide / variable shifts ----------------------------

    fn mul_op(&mut self, op: MulOp, rd: Reg, rn: Reg, rm: Reg, ra: Reg) -> &mut Asm {
        self.push(Insn::Mul {
            cond: Cond::Al,
            op,
            s: false,
            rd,
            rn,
            rm,
            ra,
        })
    }

    /// `rd = rn * rm`.
    pub fn mul(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Mul, rd, rn, rm, Reg::R0)
    }

    /// `rd = rn * rm + ra`.
    pub fn mla(&mut self, rd: Reg, rn: Reg, rm: Reg, ra: Reg) -> &mut Asm {
        self.mul_op(MulOp::Mla, rd, rn, rm, ra)
    }

    /// `hi:lo = rn * rm` (unsigned).
    pub fn umull(&mut self, lo: Reg, hi: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Umull, lo, rn, rm, hi)
    }

    /// `hi:lo = rn * rm` (signed).
    pub fn smull(&mut self, lo: Reg, hi: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Smull, lo, rn, rm, hi)
    }

    /// `rd = rn / rm` (unsigned; 0 on divide-by-zero).
    pub fn udiv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Udiv, rd, rn, rm, Reg::R0)
    }

    /// `rd = rn / rm` (signed; 0 on divide-by-zero).
    pub fn sdiv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Sdiv, rd, rn, rm, Reg::R0)
    }

    /// `rd = rn % rm` (unsigned; 0 on divide-by-zero).
    pub fn urem(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Urem, rd, rn, rm, Reg::R0)
    }

    /// `rd = rn << (rm & 31)`.
    pub fn lslv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Lslv, rd, rn, rm, Reg::R0)
    }

    /// `rd = rn >> (rm & 31)` (logical).
    pub fn lsrv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Lsrv, rd, rn, rm, Reg::R0)
    }

    /// `rd = (rn as i32) >> (rm & 31)`.
    pub fn asrv(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mul_op(MulOp::Asrv, rd, rn, rm, Reg::R0)
    }

    // ----- memory ----------------------------------------------------------

    /// Generic scalar load/store.
    pub fn mem(
        &mut self,
        load: bool,
        size: MemSize,
        rd: Reg,
        rn: Reg,
        offset: MemOffset,
        mode: AddrMode,
    ) -> &mut Asm {
        self.push(Insn::Mem {
            cond: Cond::Al,
            load,
            size,
            rd,
            rn,
            offset,
            mode,
        })
    }

    /// `rd = mem32[rn + off]`.
    pub fn ldr(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            true,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `mem32[rn + off] = rd`.
    pub fn str(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            false,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `rd = mem8[rn + off]` (zero-extended).
    pub fn ldrb(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            true,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `mem8[rn + off] = rd`.
    pub fn strb(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            false,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `rd = mem16[rn + off]` (zero-extended).
    pub fn ldrh(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            true,
            MemSize::Half,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `mem16[rn + off] = rd`.
    pub fn strh(&mut self, rd: Reg, rn: Reg, off: u16) -> &mut Asm {
        self.mem(
            false,
            MemSize::Half,
            rd,
            rn,
            MemOffset::Imm(off),
            AddrMode::offset(),
        )
    }

    /// `rd = mem32[rn + (rm << shl)]`.
    pub fn ldr_idx(&mut self, rd: Reg, rn: Reg, rm: Reg, shl: u8) -> &mut Asm {
        self.mem(
            true,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Reg { rm, shl },
            AddrMode::offset(),
        )
    }

    /// `mem32[rn + (rm << shl)] = rd`.
    pub fn str_idx(&mut self, rd: Reg, rn: Reg, rm: Reg, shl: u8) -> &mut Asm {
        self.mem(
            false,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Reg { rm, shl },
            AddrMode::offset(),
        )
    }

    /// `rd = mem8[rn + rm]`.
    pub fn ldrb_idx(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mem(
            true,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Reg { rm, shl: 0 },
            AddrMode::offset(),
        )
    }

    /// `mem8[rn + rm] = rd`.
    pub fn strb_idx(&mut self, rd: Reg, rn: Reg, rm: Reg) -> &mut Asm {
        self.mem(
            false,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Reg { rm, shl: 0 },
            AddrMode::offset(),
        )
    }

    /// Post-increment word load: `rd = mem32[rn]; rn += step`.
    pub fn ldr_post(&mut self, rd: Reg, rn: Reg, step: u16) -> &mut Asm {
        self.mem(
            true,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Imm(step),
            AddrMode::post(),
        )
    }

    /// Post-increment word store: `mem32[rn] = rd; rn += step`.
    pub fn str_post(&mut self, rd: Reg, rn: Reg, step: u16) -> &mut Asm {
        self.mem(
            false,
            MemSize::Word,
            rd,
            rn,
            MemOffset::Imm(step),
            AddrMode::post(),
        )
    }

    /// Post-increment byte load.
    pub fn ldrb_post(&mut self, rd: Reg, rn: Reg, step: u16) -> &mut Asm {
        self.mem(
            true,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Imm(step),
            AddrMode::post(),
        )
    }

    /// Post-increment byte store.
    pub fn strb_post(&mut self, rd: Reg, rn: Reg, step: u16) -> &mut Asm {
        self.mem(
            false,
            MemSize::Byte,
            rd,
            rn,
            MemOffset::Imm(step),
            AddrMode::post(),
        )
    }

    /// Pushes registers (descending full stack, like ARM `push`).
    pub fn push_regs(&mut self, regs: &[Reg]) -> &mut Asm {
        self.push(Insn::MemMulti {
            cond: Cond::Al,
            load: false,
            rn: Reg::Sp,
            writeback: true,
            up: false,
            before: true,
            regs: reg_mask(regs),
        })
    }

    /// Pops registers (matching [`Asm::push_regs`]).
    pub fn pop_regs(&mut self, regs: &[Reg]) -> &mut Asm {
        self.push(Insn::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::Sp,
            writeback: true,
            up: true,
            before: false,
            regs: reg_mask(regs),
        })
    }

    // ----- control flow ----------------------------------------------------

    fn branch_to(&mut self, label: Label, link: bool) -> &mut Asm {
        assert_eq!(self.cur, Section::Text);
        let cond = self.pending_cond.take().unwrap_or(Cond::Al);
        let fix = Fixup {
            section: self.cur,
            offset: self.here(),
            label,
            kind: FixupKind::Branch,
        };
        self.fixups.push(fix);
        self.push(Insn::Branch {
            cond,
            link,
            offset: 0,
        })
    }

    /// Unconditional (or [`Asm::ifc`]-conditional) branch to `label`.
    pub fn b(&mut self, label: Label) -> &mut Asm {
        self.branch_to(label, false)
    }

    /// Branch with link (call) to `label`.
    pub fn bl(&mut self, label: Label) -> &mut Asm {
        self.branch_to(label, true)
    }

    /// Branch to the address in `rm` (function return: `bx lr`).
    pub fn bx(&mut self, rm: Reg) -> &mut Asm {
        self.push(Insn::Bx { cond: Cond::Al, rm })
    }

    /// Convenience conditional branch: `b<cond> label`.
    pub fn b_if(&mut self, cond: Cond, label: Label) -> &mut Asm {
        self.ifc(cond).b(label)
    }

    // ----- floating point ---------------------------------------------------

    /// Generic two-source FP arithmetic.
    pub fn fp(&mut self, op: FpArithOp, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpArith {
            cond: Cond::Al,
            op,
            sd,
            sn,
            sm,
        })
    }

    /// `sd = sn + sm`.
    pub fn vadd(&mut self, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.fp(FpArithOp::Add, sd, sn, sm)
    }

    /// `sd = sn - sm`.
    pub fn vsub(&mut self, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.fp(FpArithOp::Sub, sd, sn, sm)
    }

    /// `sd = sn * sm`.
    pub fn vmul(&mut self, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.fp(FpArithOp::Mul, sd, sn, sm)
    }

    /// `sd = sn / sm`.
    pub fn vdiv(&mut self, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.fp(FpArithOp::Div, sd, sn, sm)
    }

    /// `sd += sn * sm`.
    pub fn vmla(&mut self, sd: FReg, sn: FReg, sm: FReg) -> &mut Asm {
        self.fp(FpArithOp::Mac, sd, sn, sm)
    }

    /// `sd = sqrt(sm)`.
    pub fn vsqrt(&mut self, sd: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpUnary {
            cond: Cond::Al,
            op: FpUnaryOp::Sqrt,
            sd,
            sm,
        })
    }

    /// `sd = -sm`.
    pub fn vneg(&mut self, sd: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpUnary {
            cond: Cond::Al,
            op: FpUnaryOp::Neg,
            sd,
            sm,
        })
    }

    /// `sd = |sm|`.
    pub fn vabs(&mut self, sd: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpUnary {
            cond: Cond::Al,
            op: FpUnaryOp::Abs,
            sd,
            sm,
        })
    }

    /// `sd = sm`.
    pub fn vmov(&mut self, sd: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpUnary {
            cond: Cond::Al,
            op: FpUnaryOp::Mov,
            sd,
            sm,
        })
    }

    /// FP compare, setting CPSR flags.
    pub fn vcmp(&mut self, sn: FReg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpCmp {
            cond: Cond::Al,
            sn,
            sm,
        })
    }

    /// `rd = (i32) sm` (truncating).
    pub fn vcvt_to_int(&mut self, rd: Reg, sm: FReg) -> &mut Asm {
        self.push(Insn::FpToInt {
            cond: Cond::Al,
            rd,
            sm,
        })
    }

    /// `sd = (f32) rm`.
    pub fn vcvt_from_int(&mut self, sd: FReg, rm: Reg) -> &mut Asm {
        self.push(Insn::IntToFp {
            cond: Cond::Al,
            sd,
            rm,
        })
    }

    /// `rd = bits(sn)`.
    pub fn vmov_to_core(&mut self, rd: Reg, sn: FReg) -> &mut Asm {
        self.push(Insn::FpToCore {
            cond: Cond::Al,
            rd,
            sn,
        })
    }

    /// `sd = bits(rn)`.
    pub fn vmov_from_core(&mut self, sd: FReg, rn: Reg) -> &mut Asm {
        self.push(Insn::CoreToFp {
            cond: Cond::Al,
            sd,
            rn,
        })
    }

    /// `sd = mem32[rn + 4*imm6]`.
    pub fn vldr(&mut self, sd: FReg, rn: Reg, imm6: u8) -> &mut Asm {
        self.push(Insn::FpMem {
            cond: Cond::Al,
            load: true,
            sd,
            rn,
            imm6,
        })
    }

    /// `mem32[rn + 4*imm6] = sd`.
    pub fn vstr(&mut self, sd: FReg, rn: Reg, imm6: u8) -> &mut Asm {
        self.push(Insn::FpMem {
            cond: Cond::Al,
            load: false,
            sd,
            rn,
            imm6,
        })
    }

    // ----- system ------------------------------------------------------------

    /// Supervisor call.
    pub fn svc(&mut self, imm: u16) -> &mut Asm {
        self.push(Insn::Svc {
            cond: Cond::Al,
            imm,
        })
    }

    /// `rd = <system register>`.
    pub fn mrs(&mut self, rd: Reg, sys: SysReg) -> &mut Asm {
        self.push(Insn::Mrs {
            cond: Cond::Al,
            rd,
            sys,
        })
    }

    /// `<system register> = rn`.
    pub fn msr(&mut self, sys: SysReg, rn: Reg) -> &mut Asm {
        self.push(Insn::Msr {
            cond: Cond::Al,
            sys,
            rn,
        })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Asm {
        self.push(Insn::Nop { cond: Cond::Al })
    }

    // ----- finishing -----------------------------------------------------------

    fn addr_of(&self, label: Label) -> Result<u32, AsmError> {
        let info = &self.labels[label.0];
        let (sec, off) = info.bound.ok_or_else(|| AsmError::UnboundLabel {
            name: info.name.clone(),
        })?;
        Ok(self.section_base(sec) + off)
    }

    fn section_base(&self, sec: Section) -> u32 {
        match sec {
            Section::Text => self.bases[0],
            Section::Rodata => self.bases[1],
            Section::Data => self.bases[2],
            // .bss lives immediately after .data, word aligned.
            Section::Bss => {
                (self.bases[2] + self.bufs[Section::Data.index()].len() as u32).next_multiple_of(4)
            }
        }
    }

    /// Overrides the bases of `.text`, `.rodata` and `.data`. Used by the
    /// kernel, which links at a high virtual address.
    pub fn set_bases(&mut self, text: u32, rodata: u32, data: u32) -> &mut Asm {
        self.bases = [text, rodata, data];
        self
    }

    /// Resolves all fix-ups and produces the final [`Image`].
    ///
    /// # Errors
    ///
    /// Returns an error for unbound labels, out-of-range branches, or
    /// overlapping sections.
    pub fn finish(mut self, entry: Label) -> Result<Image, AsmError> {
        let entry_addr = self.addr_of(entry)?;
        for fix in self.fixups.clone() {
            let target = self.addr_of(fix.label)?;
            let site = self.section_base(fix.section) + fix.offset;
            let buf = &mut self.bufs[fix.section.index()];
            let at = fix.offset as usize;
            match fix.kind {
                FixupKind::Branch => {
                    let delta = target.wrapping_sub(site.wrapping_add(4)) as i32;
                    let words = delta / 4;
                    if !(-(1 << 22)..(1 << 22)).contains(&words) {
                        let name = self.labels[fix.label.0].name.clone();
                        return Err(AsmError::BranchOutOfRange { name });
                    }
                    let old = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                    let new = (old & !0x7F_FFFF) | ((words as u32) & 0x7F_FFFF);
                    buf[at..at + 4].copy_from_slice(&new.to_le_bytes());
                }
                FixupKind::AbsWord => {
                    buf[at..at + 4].copy_from_slice(&target.to_le_bytes());
                }
                FixupKind::MovAddr => {
                    let lo = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
                    let hi = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
                    let lo = (lo & !0xFFFF) | (target & 0xFFFF);
                    let hi = (hi & !0xFFFF) | (target >> 16);
                    buf[at..at + 4].copy_from_slice(&lo.to_le_bytes());
                    buf[at + 4..at + 8].copy_from_slice(&hi.to_le_bytes());
                }
            }
        }

        let mut symbols = BTreeMap::new();
        for info in &self.labels {
            if let Some((sec, off)) = info.bound {
                symbols.insert(self.section_base(sec) + off, info.name.clone());
            }
        }

        let mut segments = Vec::new();
        let text = &self.bufs[Section::Text.index()];
        if !text.is_empty() {
            segments.push(Segment {
                vaddr: self.bases[0],
                data: text.clone(),
                mem_size: text.len() as u32,
                flags: SegmentFlags::TEXT,
            });
        }
        let ro = &self.bufs[Section::Rodata.index()];
        if !ro.is_empty() {
            segments.push(Segment {
                vaddr: self.bases[1],
                data: ro.clone(),
                mem_size: ro.len() as u32,
                flags: SegmentFlags::RODATA,
            });
        }
        let data = &self.bufs[Section::Data.index()];
        if !data.is_empty() || self.bss_size > 0 {
            // Fold .bss into the .data segment as a zero-filled tail.
            let mem_size = (data.len() as u32).next_multiple_of(4) + self.bss_size;
            segments.push(Segment {
                vaddr: self.bases[2],
                data: data.clone(),
                mem_size,
                flags: SegmentFlags::DATA,
            });
        }
        Ok(Image::new(segments, entry_addr, symbols)?)
    }
}

/// Builds a 16-bit register mask from a register list.
pub fn reg_mask(regs: &[Reg]) -> u16 {
    let mut m = 0u16;
    for &r in regs {
        m |= 1 << r.index();
    }
    m
}

fn with_cond(insn: Insn, cond: Cond) -> Insn {
    use Insn::*;
    match insn {
        Dp {
            op, s, rd, rn, op2, ..
        } => Dp {
            cond,
            op,
            s,
            rd,
            rn,
            op2,
        },
        MovW { top, rd, imm, .. } => MovW { cond, top, rd, imm },
        Mul {
            op,
            s,
            rd,
            rn,
            rm,
            ra,
            ..
        } => Mul {
            cond,
            op,
            s,
            rd,
            rn,
            rm,
            ra,
        },
        Mem {
            load,
            size,
            rd,
            rn,
            offset,
            mode,
            ..
        } => Mem {
            cond,
            load,
            size,
            rd,
            rn,
            offset,
            mode,
        },
        MemMulti {
            load,
            rn,
            writeback,
            up,
            before,
            regs,
            ..
        } => MemMulti {
            cond,
            load,
            rn,
            writeback,
            up,
            before,
            regs,
        },
        Branch { link, offset, .. } => Branch { cond, link, offset },
        Bx { rm, .. } => Bx { cond, rm },
        FpArith { op, sd, sn, sm, .. } => FpArith {
            cond,
            op,
            sd,
            sn,
            sm,
        },
        FpUnary { op, sd, sm, .. } => FpUnary { cond, op, sd, sm },
        FpCmp { sn, sm, .. } => FpCmp { cond, sn, sm },
        FpToInt { rd, sm, .. } => FpToInt { cond, rd, sm },
        IntToFp { sd, rm, .. } => IntToFp { cond, sd, rm },
        FpToCore { rd, sn, .. } => FpToCore { cond, rd, sn },
        CoreToFp { sd, rn, .. } => CoreToFp { cond, sd, rn },
        FpMem {
            load, sd, rn, imm6, ..
        } => FpMem {
            cond,
            load,
            sd,
            rn,
            imm6,
        },
        Svc { imm, .. } => Svc { cond, imm },
        Mrs { rd, sys, .. } => Mrs { cond, rd, sys },
        Msr { sys, rn, .. } => Msr { cond, sys, rn },
        Cps { enable_irq, .. } => Cps { cond, enable_irq },
        Eret { .. } => Eret { cond },
        Nop { .. } => Nop { cond },
        Halt { .. } => Halt { cond },
        Wfi { .. } => Wfi { cond },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn branch_fixup_resolves_backward_and_forward() {
        let mut a = Asm::new();
        let entry = a.label("entry");
        let fwd = a.label("fwd");
        a.bind(entry).unwrap();
        a.b(fwd); // offset 0: branch to 8
        a.nop(); // offset 4
        a.bind(fwd).unwrap();
        a.b(entry); // offset 8: branch back to 0
        let img = a.finish(entry).unwrap();
        let text = &img.segments()[0].data;
        let w0 = u32::from_le_bytes(text[0..4].try_into().unwrap());
        let w2 = u32::from_le_bytes(text[8..12].try_into().unwrap());
        match decode(w0).unwrap() {
            Insn::Branch { offset, .. } => assert_eq!(offset, 1), // 0+4+4 = 8
            other => panic!("unexpected {other:?}"),
        }
        match decode(w2).unwrap() {
            Insn::Branch { offset, .. } => assert_eq!(offset, -3), // 8+4-12 = 0
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let entry = a.label("entry");
        let nowhere = a.label("nowhere");
        a.bind(entry).unwrap();
        a.b(nowhere);
        assert!(matches!(
            a.finish(entry),
            Err(AsmError::UnboundLabel { .. })
        ));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.label("l");
        a.bind(l).unwrap();
        assert!(matches!(a.bind(l), Err(AsmError::Rebound { .. })));
    }

    #[test]
    fn addr_fixup_patches_movw_movt() {
        let mut a = Asm::new();
        let entry = a.label("entry");
        a.bind(entry).unwrap();
        let datum = a.label("datum");
        a.addr(Reg::R1, datum);
        a.section(Section::Data);
        a.bind(datum).unwrap();
        a.word(0xDEAD_BEEF);
        a.section(Section::Text);
        let img = a.finish(entry).unwrap();
        let text = &img.segments()[0].data;
        let lo = u32::from_le_bytes(text[0..4].try_into().unwrap());
        let hi = u32::from_le_bytes(text[4..8].try_into().unwrap());
        match (decode(lo).unwrap(), decode(hi).unwrap()) {
            (
                Insn::MovW {
                    top: false,
                    imm: lo16,
                    ..
                },
                Insn::MovW {
                    top: true,
                    imm: hi16,
                    ..
                },
            ) => {
                let addr = (lo16 as u32) | ((hi16 as u32) << 16);
                assert_eq!(addr, DATA_BASE);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bss_follows_data_and_is_zero_filled() {
        let mut a = Asm::new();
        let entry = a.label("entry");
        a.bind(entry).unwrap();
        a.nop();
        a.section(Section::Data).word(7);
        let buf = a.label("buf");
        a.section(Section::Bss);
        a.bind(buf).unwrap();
        a.zero(256);
        a.section(Section::Text);
        let img = a.finish(entry).unwrap();
        let data_seg = img.segments().iter().find(|s| s.flags.write).unwrap();
        assert_eq!(data_seg.data.len(), 4);
        assert_eq!(data_seg.mem_size, 4 + 256);
        assert_eq!(img.symbols()[&(DATA_BASE + 4)], "buf");
    }

    #[test]
    fn ifc_applies_to_next_instruction_only() {
        let mut a = Asm::new();
        let entry = a.label("entry");
        a.bind(entry).unwrap();
        a.ifc(Cond::Eq).mov_imm(Reg::R0, 1);
        a.mov_imm(Reg::R0, 2);
        let img = a.finish(entry).unwrap();
        let text = &img.segments()[0].data;
        let w0 = decode(u32::from_le_bytes(text[0..4].try_into().unwrap())).unwrap();
        let w1 = decode(u32::from_le_bytes(text[4..8].try_into().unwrap())).unwrap();
        assert_eq!(w0.cond(), Cond::Eq);
        assert_eq!(w1.cond(), Cond::Al);
    }

    #[test]
    fn text_emission_matches_builder() {
        let mut a = Asm::new();
        let e = a.label("e");
        a.bind(e).unwrap();
        a.text("adds r0, r1, #4");
        a.text("ldrne r2, [sp, #8]");
        let mut b = Asm::new();
        let eb = b.label("e");
        b.bind(eb).unwrap();
        b.adds_imm(Reg::R0, Reg::R1, 4);
        b.ifc(Cond::Ne).ldr(Reg::R2, Reg::Sp, 8);
        assert_eq!(
            a.finish(e).unwrap().segments()[0].data,
            b.finish(eb).unwrap().segments()[0].data
        );
    }

    #[test]
    fn mov32_emits_single_movw_for_small_values() {
        let mut a = Asm::new();
        let e = a.label("e");
        a.bind(e).unwrap();
        a.mov32(Reg::R0, 0x1234);
        a.mov32(Reg::R1, 0x5678_1234);
        let img = a.finish(e).unwrap();
        assert_eq!(img.segments()[0].data.len(), 12); // 1 + 2 instructions
    }
}

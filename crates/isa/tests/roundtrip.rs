//! Property tests: the encode/decode pair is a bijection on the
//! instruction model, and decode never panics on arbitrary words.

use proptest::prelude::*;
use sea_isa::{
    decode, encode, AddrMode, Cond, DpOp, FReg, FpArithOp, FpUnaryOp, Insn, MemOffset, MemSize,
    MulOp, Operand2, Reg, Shift, ShiftedReg, SysReg,
};

fn any_cond() -> impl Strategy<Value = Cond> {
    (0u32..16).prop_map(Cond::from_bits)
}

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u32..16).prop_map(Reg::from_index)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u32..32).prop_map(FReg::new)
}

fn any_op2() -> impl Strategy<Value = Operand2> {
    prop_oneof![
        (any_reg(), 0usize..4, 0u8..32).prop_map(|(rm, sh, amount)| {
            Operand2::Reg(ShiftedReg {
                rm,
                shift: Shift::ALL[sh],
                amount,
            })
        }),
        (any::<u8>(), 0u8..8).prop_map(|(base, ror4)| Operand2::Imm { base, ror4 }),
    ]
}

fn any_insn() -> impl Strategy<Value = Insn> {
    let dp = (
        any_cond(),
        0usize..15,
        any::<bool>(),
        any_reg(),
        any_reg(),
        any_op2(),
    )
        .prop_map(|(cond, op, s, rd, rn, op2)| {
            let op = DpOp::ALL[op];
            // Canonicalize the must-be-zero fields the decoder enforces.
            let s = s || op.is_compare();
            let rd = if op.is_compare() { Reg::R0 } else { rd };
            let rn = if op.ignores_rn() { Reg::R0 } else { rn };
            Insn::Dp {
                cond,
                op,
                s,
                rd,
                rn,
                op2,
            }
        });
    let movw = (any_cond(), any::<bool>(), any_reg(), any::<u16>())
        .prop_map(|(cond, top, rd, imm)| Insn::MovW { cond, top, rd, imm });
    let mul = (
        any_cond(),
        0usize..12,
        any::<bool>(),
        any_reg(),
        any_reg(),
        any_reg(),
        any_reg(),
    )
        .prop_map(|(cond, op, s, rd, rn, rm, ra)| {
            let op = MulOp::ALL[op];
            let ra = if matches!(op, MulOp::Mla | MulOp::Umull | MulOp::Smull) {
                ra
            } else {
                Reg::R0
            };
            Insn::Mul {
                cond,
                op,
                s,
                rd,
                rn,
                rm,
                ra,
            }
        });
    let mem = (
        any_cond(),
        any::<bool>(),
        0usize..3,
        any_reg(),
        any_reg(),
        prop_oneof![
            (0u16..512).prop_map(MemOffset::Imm),
            (any_reg(), 0u8..8).prop_map(|(rm, shl)| MemOffset::Reg { rm, shl }),
        ],
        any::<(bool, bool, bool)>(),
    )
        .prop_map(|(cond, load, size, rd, rn, offset, (pre, wb, up))| {
            // Post-index implies writeback in the canonical encoding.
            let writeback = wb || !pre;
            Insn::Mem {
                cond,
                load,
                size: MemSize::ALL[size],
                rd,
                rn,
                offset,
                mode: AddrMode { pre, writeback, up },
            }
        });
    let memmulti = (
        any_cond(),
        any::<bool>(),
        any_reg(),
        any::<(bool, bool, bool)>(),
        1u16..=u16::MAX,
    )
        .prop_map(
            |(cond, load, rn, (writeback, up, before), regs)| Insn::MemMulti {
                cond,
                load,
                rn,
                writeback,
                up,
                before,
                regs,
            },
        );
    let branch = (any_cond(), any::<bool>(), -(1i32 << 22)..(1 << 22))
        .prop_map(|(cond, link, offset)| Insn::Branch { cond, link, offset });
    let fp = prop_oneof![
        (any_cond(), 0usize..7, any_freg(), any_freg(), any_freg()).prop_map(
            |(cond, op, sd, sn, sm)| Insn::FpArith {
                cond,
                op: FpArithOp::ALL[op],
                sd,
                sn,
                sm
            }
        ),
        (any_cond(), 0usize..4, any_freg(), any_freg()).prop_map(|(cond, op, sd, sm)| {
            Insn::FpUnary {
                cond,
                op: FpUnaryOp::ALL[op],
                sd,
                sm,
            }
        }),
        (any_cond(), any_freg(), any_freg()).prop_map(|(cond, sn, sm)| Insn::FpCmp {
            cond,
            sn,
            sm
        }),
        (any_cond(), any_reg(), any_freg()).prop_map(|(cond, rd, sm)| Insn::FpToInt {
            cond,
            rd,
            sm
        }),
        (any_cond(), any_freg(), any_reg()).prop_map(|(cond, sd, rm)| Insn::IntToFp {
            cond,
            sd,
            rm
        }),
        (any_cond(), any_reg(), any_freg()).prop_map(|(cond, rd, sn)| Insn::FpToCore {
            cond,
            rd,
            sn
        }),
        (any_cond(), any_freg(), any_reg()).prop_map(|(cond, sd, rn)| Insn::CoreToFp {
            cond,
            sd,
            rn
        }),
        (any_cond(), any::<bool>(), any_freg(), any_reg(), 0u8..64).prop_map(
            |(cond, load, sd, rn, imm6)| Insn::FpMem {
                cond,
                load,
                sd,
                rn,
                imm6
            }
        ),
    ];
    let sys = prop_oneof![
        (any_cond(), any::<u16>()).prop_map(|(cond, imm)| Insn::Svc { cond, imm }),
        (any_cond(), any_reg(), 0usize..9).prop_map(|(cond, rd, s)| Insn::Mrs {
            cond,
            rd,
            sys: SysReg::ALL[s]
        }),
        (any_cond(), any_reg(), 0usize..9).prop_map(|(cond, rn, s)| Insn::Msr {
            cond,
            rn,
            sys: SysReg::ALL[s]
        }),
        (any_cond(), any::<bool>()).prop_map(|(cond, enable_irq)| Insn::Cps { cond, enable_irq }),
        (any_cond(), any_reg()).prop_map(|(cond, rm)| Insn::Bx { cond, rm }),
        any_cond().prop_map(|cond| Insn::Eret { cond }),
        any_cond().prop_map(|cond| Insn::Nop { cond }),
        any_cond().prop_map(|cond| Insn::Halt { cond }),
        any_cond().prop_map(|cond| Insn::Wfi { cond }),
    ];
    prop_oneof![dp, movw, mul, mem, memmulti, branch, fp, sys]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// encode → decode is the identity on canonical instructions.
    #[test]
    fn encode_decode_roundtrip(insn in any_insn()) {
        let word = encode(&insn);
        let back = decode(word).expect("encoded instruction must decode");
        prop_assert_eq!(back, insn);
    }

    /// decode → encode is the identity on valid words (bijectivity), and
    /// decode never panics on arbitrary input.
    #[test]
    fn decode_encode_roundtrip(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            prop_assert_eq!(encode(&insn), word);
        }
    }

    /// Disassembly never panics and never produces an empty string.
    #[test]
    fn disasm_total(insn in any_insn()) {
        let s = insn.to_string();
        prop_assert!(!s.is_empty());
    }

    /// A single bit flip in a valid instruction either decodes to a
    /// *different* instruction or faults — it never aliases back to the
    /// original (encoding has no don't-care bits).
    #[test]
    fn bitflip_never_aliases(insn in any_insn(), bit in 0u32..32) {
        let word = encode(&insn);
        let flipped = word ^ (1 << bit);
        if let Ok(mutant) = decode(flipped) {
            prop_assert_ne!(mutant, insn);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// parse(disassemble(insn)) == insn over the whole instruction space
    /// (up to the canonical rotated-immediate encoding: text carries the
    /// immediate's *value*, so equivalent (base, ror4) pairs collapse).
    #[test]
    fn disasm_parse_roundtrip(insn in any_insn()) {
        fn canon(i: Insn) -> Insn {
            // Text carries values, not encodings: collapse the choices the
            // syntax cannot distinguish (rotated-immediate pair, shift kind
            // at amount 0, offset sign at magnitude 0).
            match i {
                Insn::Dp { cond, op, s, rd, rn, op2 } => {
                    let op2 = match op2 {
                        Operand2::Imm { .. } => {
                            Operand2::encode_imm(op2.imm_value().unwrap()).unwrap()
                        }
                        Operand2::Reg(sr) if sr.amount == 0 => {
                            Operand2::Reg(ShiftedReg::plain(sr.rm))
                        }
                        other => other,
                    };
                    Insn::Dp { cond, op, s, rd, rn, op2 }
                }
                Insn::Mem { cond, load, size, rd, rn, offset, mode } => {
                    let up = match offset {
                        MemOffset::Imm(0) => true,
                        _ => mode.up,
                    };
                    Insn::Mem { cond, load, size, rd, rn, offset, mode: AddrMode { up, ..mode } }
                }
                other => other,
            }
        }
        let text = insn.to_string();
        let back = sea_isa::parse_insn(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(canon(back), canon(insn), "text was `{}`", text);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parse_total(text in "\\PC{0,40}") {
        let _ = sea_isa::parse_insn(&text);
    }
}

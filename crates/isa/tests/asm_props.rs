//! Assembler property tests: random programs with random label topologies
//! must assemble into self-consistent images.

use proptest::prelude::*;
use sea_isa::{decode, Asm, Insn, Reg, Section};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random forward/backward branch webs resolve: every assembled branch
    /// lands on an instruction boundary inside the text section.
    #[test]
    fn branch_webs_resolve_in_bounds(
        topology in prop::collection::vec((0usize..16, any::<bool>()), 1..40),
    ) {
        let mut a = Asm::new();
        let entry = a.label("entry");
        a.bind(entry).unwrap();
        // Create 16 labels; emit a mix of nops and branches to them; bind
        // each label at a deterministic point.
        let labels: Vec<_> = (0..16).map(|i| a.label(&format!("l{i}"))).collect();
        let mut bound = [false; 16];
        for (i, &(target, do_bind)) in topology.iter().enumerate() {
            if do_bind && !bound[target] {
                a.bind(labels[target]).unwrap();
                bound[target] = true;
            }
            a.nop();
            a.b(labels[i % 16]);
        }
        // Bind the rest at the end.
        for (i, l) in labels.iter().enumerate() {
            if !bound[i] {
                a.bind(*l).unwrap();
            }
        }
        a.nop();
        let img = a.finish(entry).unwrap();
        let text = &img.segments()[0].data;
        let base = img.text_base();
        let len = text.len() as u32;
        for (i, w) in text.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes(w.try_into().unwrap());
            if let Ok(Insn::Branch { offset, .. }) = decode(word) {
                let site = base + 4 * i as u32;
                let target = site.wrapping_add(4).wrapping_add((offset as u32) << 2);
                prop_assert!(target >= base && target < base + len, "branch escapes text");
                prop_assert_eq!(target % 4, 0);
            }
        }
    }

    /// Data sections lay out without overlap for arbitrary interleavings of
    /// directives, and symbol addresses are strictly increasing per section.
    #[test]
    fn sections_never_overlap(
        chunks in prop::collection::vec((0usize..3, 1u32..64), 1..30),
    ) {
        let mut a = Asm::new();
        let entry = a.label("entry");
        a.bind(entry).unwrap();
        a.nop();
        for &(sec, n) in &chunks {
            match sec {
                0 => { a.section(Section::Rodata).zero(n); }
                1 => { a.section(Section::Data).zero(n); }
                _ => { a.section(Section::Bss).zero(n); }
            }
        }
        a.section(Section::Text);
        a.mov_imm(Reg::R0, 0);
        let img = a.finish(entry).unwrap();
        let mut prev_end = 0u32;
        for seg in img.segments() {
            prop_assert!(seg.vaddr >= prev_end, "segment overlap at {:#x}", seg.vaddr);
            prev_end = seg.end();
        }
    }
}

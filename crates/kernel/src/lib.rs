//! # sea-kernel — a minimal supervisor ("linux-lite") for the SEA machine
//!
//! The paper runs its MiBench workloads on Linux because the OS is part of
//! the fault-propagation surface: kernel text and data live in the same
//! caches as the application, timer interrupts periodically pull kernel
//! state back into the hierarchy, and faults that corrupt kernel state
//! escalate to *System Crashes* rather than Application Crashes. This crate
//! reproduces exactly that surface with a small but real supervisor:
//!
//! * low vector table + exception handlers (undefined, aborts, SVC, IRQ),
//! * a syscall ABI ([`Syscall`]: `exit`, `write`, `sbrk`, `alive`, …),
//! * a timer tick that walks scheduler state on every interrupt,
//! * user/supervisor privilege separation over the MMU,
//! * fault policy mirroring Linux: user fault → fatal signal (Application
//!   Crash at the board), supervisor fault → kernel panic (System Crash).
//!
//! The kernel itself is an AR32 program assembled by [`build_kernel`]; the
//! host-side [`install`] function plays boot ROM: it loads images, builds
//! page tables and leaves the CPU at the reset vector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abi;
mod build;
mod install;
mod layout;
pub mod user;

pub use abi::{mmio, Syscall, ENOSYS, SYSCALL_COUNT};
pub use build::{build_kernel, KernelParams, RUNQ_NODES, RUNQ_NODE_WORDS};
pub use install::{install, BootInfo, InstallError, KernelConfig};
pub use layout::{
    DEVICE_VA, KERNEL_BASE, KERNEL_DATA, KERNEL_RODATA, KERNEL_STACK_TOP, PT_L1_BASE, PT_L2_POOL,
    USER_POOL_BASE, USER_STACK_TOP, USER_VA_BASE, USER_VA_LIMIT,
};

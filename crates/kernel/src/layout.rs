//! Physical and virtual memory layout.
//!
//! ```text
//! physical                          virtual (user process view)
//! 0x0000_0000 kernel image          0x0000_0000 vectors+kernel (svc only)
//! 0x0001_0000 kernel stack top      0x0001_0000 .text   (user rx)
//! 0x0010_0000 L1 page table         0x0010_0000 .rodata (user r)
//! 0x0010_4000 L2 table pool         0x0020_0000 .data/.bss, then heap
//! 0x0040_0000 user page pool        0x7FFF_0000 stack top at 0x8000_0000
//! ...                               0xF000_0000 devices (svc only)
//! ```
//!
//! The kernel runs on an identity mapping (VA == PA) like a classic Linux
//! lowmem linear map; user segments are mapped wherever their image asks,
//! backed by pages bump-allocated from the user pool.

/// Physical/virtual base of the kernel image (vectors first).
pub const KERNEL_BASE: u32 = 0x0000_0000;
/// Kernel text limit / kernel stack top (the stack grows down from here).
pub const KERNEL_STACK_TOP: u32 = 0x0001_0000;
/// Physical address of the L1 page table (16 KB aligned).
pub const PT_L1_BASE: u32 = 0x0010_0000;
/// Physical base of the L2 table pool.
pub const PT_L2_POOL: u32 = 0x0010_4000;
/// Physical base of the user page pool.
pub const USER_POOL_BASE: u32 = 0x0040_0000;
/// Virtual top of the user stack.
pub const USER_STACK_TOP: u32 = 0x8000_0000;
/// Upper bound of user virtual addresses (exclusive).
pub const USER_VA_LIMIT: u32 = 0x8000_0000;
/// Lowest user virtual address (below this is kernel-only).
pub const USER_VA_BASE: u32 = 0x0001_0000;

/// Virtual (and physical) base of the device window, mapped supervisor-only.
pub const DEVICE_VA: u32 = 0xF000_0000;

/// Kernel virtual base for its own .rodata.
pub const KERNEL_RODATA: u32 = 0x0000_8000;
/// Kernel virtual base for its own .data (ticks, brk, process table).
pub const KERNEL_DATA: u32 = 0x0000_A000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_regions_do_not_overlap_user() {
        const {
            assert!(KERNEL_STACK_TOP <= USER_VA_BASE);
            assert!(KERNEL_RODATA < KERNEL_STACK_TOP);
            assert!(KERNEL_DATA < KERNEL_STACK_TOP);
            assert!(
                PT_L1_BASE.is_multiple_of(0x4000),
                "L1 table must be 16 KB aligned"
            );
            assert!(PT_L2_POOL.is_multiple_of(0x400));
            assert!(USER_POOL_BASE > PT_L2_POOL);
        }
    }
}

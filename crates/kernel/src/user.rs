//! Emission helpers for user programs (the guest-side libc, so to speak).
//!
//! By the AAPCS-like convention used here, syscall arguments go in
//! `r0`–`r3`, the number in `r7`, and the result comes back in `r0`.

use sea_isa::{Asm, Label, Reg};

use crate::abi::Syscall;

/// Emits a syscall with the number in `r7`. Arguments must already be in
/// `r0`–`r3`; the result lands in `r0`. Clobbers `r7`.
pub fn syscall(a: &mut Asm, n: Syscall) {
    a.mov_imm(Reg::R7, n as u32);
    a.svc(n as u32 as u16);
}

/// Emits `exit(code)` with the code already in `r0`. Does not return.
pub fn exit(a: &mut Asm) {
    syscall(a, Syscall::Exit);
}

/// Emits `exit(code)` with an immediate code.
pub fn exit_with(a: &mut Asm, code: u32) {
    a.mov32(Reg::R0, code);
    exit(a);
}

/// Emits `write(buf, len)` for a labeled buffer and immediate length.
/// Clobbers `r0`, `r1`, `r7`.
pub fn write_label(a: &mut Asm, buf: Label, len: u32) {
    a.addr(Reg::R0, buf);
    a.mov32(Reg::R1, len);
    syscall(a, Syscall::Write);
}

/// Emits `write(r0, r1)` with buffer/length already in registers.
pub fn write(a: &mut Asm) {
    syscall(a, Syscall::Write);
}

/// Emits `alive()` — the heartbeat the board's crash detector watches.
pub fn alive(a: &mut Asm) {
    syscall(a, Syscall::Alive);
}

/// Emits `sbrk(r0)`; old break returned in `r0`.
pub fn sbrk(a: &mut Asm) {
    syscall(a, Syscall::Sbrk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_isa::{decode, Insn};

    #[test]
    fn syscall_emits_mov_and_svc() {
        let mut a = Asm::new();
        let e = a.label("e");
        a.bind(e).unwrap();
        syscall(&mut a, Syscall::Alive);
        let img = a.finish(e).unwrap();
        let text = &img.segments()[0].data;
        let w0 = decode(u32::from_le_bytes(text[0..4].try_into().unwrap())).unwrap();
        let w1 = decode(u32::from_le_bytes(text[4..8].try_into().unwrap())).unwrap();
        assert!(matches!(w0, Insn::Dp { rd: Reg::R7, .. }));
        assert!(matches!(w1, Insn::Svc { imm: 3, .. }));
    }
}

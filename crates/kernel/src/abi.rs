//! The kernel↔user ABI and the kernel↔board MMIO contract.

/// Syscall numbers, passed in `r7` (arguments in `r0`–`r3`, result in `r0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u32)]
pub enum Syscall {
    /// `exit(code)` — terminate the application, reporting `code`.
    Exit = 0,
    /// `write(buf, len)` — append `len` bytes at `buf` to the board's
    /// output channel (the beam setup's on-line SDC check stream).
    Write = 1,
    /// `sbrk(incr)` — grow the heap; returns the old break, or `-1` when
    /// the premapped heap region is exhausted.
    Sbrk = 2,
    /// `alive()` — send the heartbeat the beam harness watches (§IV-B).
    Alive = 3,
    /// `cycles()` — read the cycle counter.
    Cycles = 4,
    /// `getpid()` — constant 1 (a single user process runs at a time).
    GetPid = 5,
    /// `yield()` — no-op scheduling hint.
    Yield = 6,
}

/// Number of syscalls.
pub const SYSCALL_COUNT: u32 = 7;

/// Result returned for an out-of-range syscall number (matches Linux's
/// `-ENOSYS` convention of a negative return).
pub const ENOSYS: u32 = u32::MAX;

/// MMIO register offsets within the device window (from
/// `sea_microarch::DEVICE_BASE`). The board model in `sea-platform`
/// implements these; the kernel is their only CPU-side user.
pub mod mmio {
    /// UART transmit register (write a byte; console/debug channel).
    pub const UART_TX: u32 = 0x000;
    /// Output channel: write one byte of application output.
    pub const MBOX_OUT: u32 = 0x100;
    /// Heartbeat: any write counts one alive ping.
    pub const MBOX_ALIVE: u32 = 0x104;
    /// Application exit: write the exit code.
    pub const MBOX_EXIT: u32 = 0x108;
    /// Application killed by the kernel: write the signal/ESR code.
    pub const MBOX_SIGNAL: u32 = 0x10C;
    /// Kernel panic: write the panic/ESR code.
    pub const MBOX_PANIC: u32 = 0x110;
    /// Kernel tick heartbeat: written by the timer IRQ handler; the board
    /// uses it to tell "application hung" from "kernel hung".
    pub const MBOX_TICK: u32 = 0x114;
    /// Timer period in cycles.
    pub const TIMER_PERIOD: u32 = 0x180;
    /// Timer control: write 1 to enable.
    pub const TIMER_CTRL: u32 = 0x184;
    /// Timer acknowledge: any write clears the pending IRQ.
    pub const TIMER_ACK: u32 = 0x188;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmio_registers_are_distinct_words() {
        let regs = [
            mmio::UART_TX,
            mmio::MBOX_OUT,
            mmio::MBOX_ALIVE,
            mmio::MBOX_EXIT,
            mmio::MBOX_SIGNAL,
            mmio::MBOX_PANIC,
            mmio::MBOX_TICK,
            mmio::TIMER_PERIOD,
            mmio::TIMER_CTRL,
            mmio::TIMER_ACK,
        ];
        let set: std::collections::BTreeSet<_> = regs.iter().collect();
        assert_eq!(set.len(), regs.len());
        assert!(regs.iter().all(|r| r % 4 == 0));
    }
}

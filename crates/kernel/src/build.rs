//! Assembly of the kernel image.
//!
//! The kernel is a real AR32 program: its text, read-only data and data
//! flow through the simulated cache hierarchy exactly like Linux does on
//! the Zynq, which is what the paper's System-Crash analysis hinges on
//! (kernel state resident in otherwise-unused cache space, §V-A/§VI).

use sea_isa::{reg_mask, Asm, AsmError, Cond, Image, Insn, Reg, Section, SysReg};

use crate::abi::mmio;
use crate::layout::{
    DEVICE_VA, KERNEL_BASE, KERNEL_DATA, KERNEL_RODATA, KERNEL_STACK_TOP, USER_STACK_TOP,
    USER_VA_BASE, USER_VA_LIMIT,
};

/// Compile-time parameters baked into the kernel image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelParams {
    /// Entry point of the user program the kernel will start.
    pub user_entry: u32,
    /// First heap address handed out by `sbrk`.
    pub heap_base: u32,
    /// Heap limit (exclusive).
    pub heap_end: u32,
    /// Timer tick period in cycles.
    pub tick_period: u32,
}

/// Number of nodes in the kernel's run queue, traversed on every timer
/// tick. This is the "kernel data kept warm in the caches" the paper
/// attributes small-workload System-Crash excess to — and, like Linux's
/// scheduler lists, it is *pointer-linked*: a corrupted `next` pointer
/// sends the tick handler into a wild kernel-mode access, which the fault
/// policy escalates to a panic (System Crash), the mechanism §V-A
/// describes.
pub const RUNQ_NODES: u32 = 64;

/// Words per run-queue node: `next`, `prev`, `pid`, `vruntime`.
pub const RUNQ_NODE_WORDS: u32 = 4;

/// Assembles the kernel image for the given parameters.
///
/// # Errors
///
/// Returns an assembler error only on internal inconsistency (all labels
/// are bound by construction).
pub fn build_kernel(p: KernelParams) -> Result<Image, AsmError> {
    let mut a = Asm::new();
    a.set_bases(KERNEL_BASE, KERNEL_RODATA, KERNEL_DATA);

    // ----- labels ---------------------------------------------------------
    let boot = a.label("k_boot");
    let undef_h = a.label("k_undef");
    let svc_h = a.label("k_svc");
    let pabort_h = a.label("k_pabort");
    let dabort_h = a.label("k_dabort");
    let irq_h = a.label("k_irq");
    let fault_common = a.label("k_fault");
    let kpanic = a.label("k_panic");
    let kdead = a.label("k_dead");
    let idle = a.label("k_idle");
    let idle_loop = a.label("k_idle_loop");
    let sys_ret = a.label("k_sys_ret");
    let sys_exit = a.label("k_sys_exit");
    let sys_write = a.label("k_sys_write");
    let sys_sbrk = a.label("k_sys_sbrk");
    let sys_alive = a.label("k_sys_alive");
    let sys_cycles = a.label("k_sys_cycles");
    let sys_getpid = a.label("k_sys_getpid");
    let sys_yield = a.label("k_sys_yield");
    let enosys = a.label("k_enosys");
    let wloop = a.label("k_wloop");
    let wdone = a.label("k_wdone");
    let wfail = a.label("k_wfail");
    let sbrk_fail = a.label("k_sbrk_fail");
    let tick_loop = a.label("k_tick_loop");
    // Kernel data
    let d_ticks = a.label("k_ticks");
    let d_brk = a.label("k_brk");
    let d_kstat = a.label("k_kstat");
    let d_runq = a.label("k_runq");

    // ----- vector table (the first six words of the image) -----------------
    let entry = a.label("k_vectors");
    a.bind(entry)?;
    a.b(boot); // 0x00 reset
    a.b(undef_h); // 0x04 undefined
    a.b(svc_h); // 0x08 svc
    a.b(pabort_h); // 0x0C prefetch abort
    a.b(dabort_h); // 0x10 data abort
    a.b(irq_h); // 0x14 irq

    // ----- boot -------------------------------------------------------------
    a.bind(boot)?;
    a.mov32(Reg::Sp, KERNEL_STACK_TOP);
    a.mov32(Reg::R0, DEVICE_VA);
    a.mov32(Reg::R1, p.tick_period);
    a.str(Reg::R1, Reg::R0, mmio::TIMER_PERIOD as u16);
    a.mov_imm(Reg::R1, 1);
    a.str(Reg::R1, Reg::R0, mmio::TIMER_CTRL as u16);
    a.mov32(Reg::R1, USER_STACK_TOP);
    a.msr(SysReg::SpUsr, Reg::R1);
    // SPSR: user mode (0x10), IRQs enabled.
    a.mov_imm(Reg::R1, 0x10);
    a.msr(SysReg::Spsr, Reg::R1);
    a.mov32(Reg::R1, p.user_entry);
    a.msr(SysReg::Elr, Reg::R1);
    a.push(Insn::Eret { cond: Cond::Al });

    // ----- SVC: syscall dispatch -------------------------------------------
    a.bind(svc_h)?;
    a.push(Insn::MemMulti {
        cond: Cond::Al,
        load: false,
        rn: Reg::Sp,
        writeback: true,
        up: false,
        before: true,
        regs: reg_mask(&[
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::Lr,
        ]),
    });
    a.cmp_imm(Reg::R7, 0);
    a.b_if(Cond::Eq, sys_exit);
    a.cmp_imm(Reg::R7, 1);
    a.b_if(Cond::Eq, sys_write);
    a.cmp_imm(Reg::R7, 2);
    a.b_if(Cond::Eq, sys_sbrk);
    a.cmp_imm(Reg::R7, 3);
    a.b_if(Cond::Eq, sys_alive);
    a.cmp_imm(Reg::R7, 4);
    a.b_if(Cond::Eq, sys_cycles);
    a.cmp_imm(Reg::R7, 5);
    a.b_if(Cond::Eq, sys_getpid);
    a.cmp_imm(Reg::R7, 6);
    a.b_if(Cond::Eq, sys_yield);
    a.bind(enosys)?;
    a.mov_imm(Reg::R0, 0);
    a.mvn(Reg::R0, Reg::R0); // r0 = 0xFFFF_FFFF (ENOSYS)
    a.b(sys_ret);

    // Common syscall return: write the result over the saved r0 slot.
    a.bind(sys_ret)?;
    a.str(Reg::R0, Reg::Sp, 0);
    a.push(Insn::MemMulti {
        cond: Cond::Al,
        load: true,
        rn: Reg::Sp,
        writeback: true,
        up: true,
        before: false,
        regs: reg_mask(&[
            Reg::R0,
            Reg::R1,
            Reg::R2,
            Reg::R3,
            Reg::R4,
            Reg::R5,
            Reg::R6,
            Reg::R7,
            Reg::R8,
            Reg::R9,
            Reg::R10,
            Reg::R11,
            Reg::R12,
            Reg::Lr,
        ]),
    });
    a.push(Insn::Eret { cond: Cond::Al });

    // exit(code): report and idle.
    a.bind(sys_exit)?;
    a.mov32(Reg::R1, DEVICE_VA);
    a.str(Reg::R0, Reg::R1, mmio::MBOX_EXIT as u16);
    a.b(idle);

    // write(buf, len): bounds-check, then stream bytes to the mailbox.
    a.bind(sys_write)?;
    a.mov32(Reg::R2, USER_VA_BASE);
    a.cmp(Reg::R0, Reg::R2);
    a.b_if(Cond::Cc, wfail); // buf < USER_VA_BASE
    a.add(Reg::R3, Reg::R0, Reg::R1);
    a.cmp(Reg::R3, Reg::R0);
    a.b_if(Cond::Cc, wfail); // wrapped
    a.mov32(Reg::R2, USER_VA_LIMIT);
    a.cmp(Reg::R3, Reg::R2);
    a.b_if(Cond::Hi, wfail); // buf+len > USER_VA_LIMIT
    a.mov32(Reg::R2, DEVICE_VA);
    a.cmp_imm(Reg::R1, 0);
    a.b_if(Cond::Eq, wdone);
    a.bind(wloop)?;
    a.ldrb_post(Reg::R3, Reg::R0, 1);
    a.strb(Reg::R3, Reg::R2, mmio::MBOX_OUT as u16);
    a.subs_imm(Reg::R1, Reg::R1, 1);
    a.b_if(Cond::Ne, wloop);
    a.bind(wdone)?;
    // Account the syscall in kernel statistics (kernel data traffic).
    a.addr(Reg::R2, d_kstat);
    a.ldr(Reg::R3, Reg::R2, 0);
    a.add_imm(Reg::R3, Reg::R3, 1);
    a.str(Reg::R3, Reg::R2, 0);
    a.mov_imm(Reg::R0, 0);
    a.b(sys_ret);
    a.bind(wfail)?;
    a.mov_imm(Reg::R0, 0);
    a.mvn(Reg::R0, Reg::R0);
    a.b(sys_ret);

    // sbrk(incr): bump the break within the premapped heap window.
    a.bind(sys_sbrk)?;
    a.addr(Reg::R1, d_brk);
    a.ldr(Reg::R2, Reg::R1, 0);
    a.add(Reg::R3, Reg::R2, Reg::R0);
    a.mov32(Reg::R12, p.heap_end);
    a.cmp(Reg::R3, Reg::R12);
    a.b_if(Cond::Hi, sbrk_fail);
    a.mov32(Reg::R12, p.heap_base);
    a.cmp(Reg::R3, Reg::R12);
    a.b_if(Cond::Cc, sbrk_fail);
    a.str(Reg::R3, Reg::R1, 0);
    a.mov(Reg::R0, Reg::R2);
    a.b(sys_ret);
    a.bind(sbrk_fail)?;
    a.mov_imm(Reg::R0, 0);
    a.mvn(Reg::R0, Reg::R0);
    a.b(sys_ret);

    // alive(): heartbeat to the board.
    a.bind(sys_alive)?;
    a.mov32(Reg::R1, DEVICE_VA);
    a.str(Reg::R0, Reg::R1, mmio::MBOX_ALIVE as u16);
    a.mov_imm(Reg::R0, 0);
    a.b(sys_ret);

    // cycles(): cycle counter (also directly readable via MRS in user mode).
    a.bind(sys_cycles)?;
    a.mrs(Reg::R0, SysReg::Cycles);
    a.b(sys_ret);

    a.bind(sys_getpid)?;
    a.mov_imm(Reg::R0, 1);
    a.b(sys_ret);

    a.bind(sys_yield)?;
    a.mov_imm(Reg::R0, 0);
    a.b(sys_ret);

    // ----- faults -------------------------------------------------------------
    a.bind(undef_h)?;
    a.b(fault_common);
    a.bind(pabort_h)?;
    a.b(fault_common);
    a.bind(dabort_h)?;
    a.b(fault_common);

    a.bind(fault_common)?;
    // Faults from supervisor mode are kernel bugs/corruption → panic.
    a.mrs(Reg::R0, SysReg::Spsr);
    a.and_imm(Reg::R1, Reg::R0, 3);
    a.cmp_imm(Reg::R1, 3);
    a.b_if(Cond::Eq, kpanic);
    // User fault: deliver the fatal signal (the board logs an app crash).
    a.mrs(Reg::R0, SysReg::Esr);
    a.mov32(Reg::R1, DEVICE_VA);
    a.str(Reg::R0, Reg::R1, mmio::MBOX_SIGNAL as u16);
    a.b(idle);

    a.bind(kpanic)?;
    a.mrs(Reg::R0, SysReg::Esr);
    a.mov32(Reg::R1, DEVICE_VA);
    a.str(Reg::R0, Reg::R1, mmio::MBOX_PANIC as u16);
    a.push(Insn::Cps {
        cond: Cond::Al,
        enable_irq: false,
    });
    a.bind(kdead)?;
    a.b(kdead); // ticks stop: the board will see a dead kernel

    // ----- timer IRQ -------------------------------------------------------------
    a.bind(irq_h)?;
    a.push_regs(&[
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::Lr,
    ]);
    a.mov32(Reg::R0, DEVICE_VA);
    a.str(Reg::R0, Reg::R0, mmio::TIMER_ACK as u16);
    // ticks += 1; publish the tick heartbeat.
    a.addr(Reg::R1, d_ticks);
    a.ldr(Reg::R2, Reg::R1, 0);
    a.add_imm(Reg::R2, Reg::R2, 1);
    a.str(Reg::R2, Reg::R1, 0);
    a.str(Reg::R2, Reg::R0, mmio::MBOX_TICK as u16);
    // Scheduler bookkeeping: traverse the pointer-linked run queue
    // (kernel data the paper's small-footprint workloads leave resident in
    // the caches). A corrupted link makes the next load a wild kernel
    // access — data abort in supervisor mode — which the fault policy
    // turns into a panic, exactly Linux's oops-on-corrupted-list behavior.
    a.addr(Reg::R3, d_runq);
    a.mov_imm(Reg::R4, RUNQ_NODES);
    a.bind(tick_loop)?;
    a.ldr(Reg::R5, Reg::R3, 12); // vruntime
    a.add_imm(Reg::R5, Reg::R5, 1);
    a.str(Reg::R5, Reg::R3, 12);
    a.ldr(Reg::R3, Reg::R3, 0); // follow next
    a.subs_imm(Reg::R4, Reg::R4, 1);
    a.b_if(Cond::Ne, tick_loop);
    a.pop_regs(&[
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::Lr,
    ]);
    a.push(Insn::Eret { cond: Cond::Al });

    // ----- idle (application finished or was killed) ----------------------------
    a.bind(idle)?;
    a.push(Insn::Cps {
        cond: Cond::Al,
        enable_irq: true,
    });
    a.bind(idle_loop)?;
    a.push(Insn::Wfi { cond: Cond::Al });
    a.b(idle_loop);

    // ----- kernel data ------------------------------------------------------------
    a.section(Section::Data);
    a.bind(d_ticks)?;
    a.word(0);
    a.bind(d_brk)?;
    a.word(p.heap_base);
    a.bind(d_kstat)?;
    a.word(0);
    a.bind(d_runq)?;
    // Circular doubly-linked run queue; node addresses are known at
    // assembly time (data base + fixed offsets).
    let runq_base = KERNEL_DATA + 3 * 4; // after ticks, brk, kstat
    for i in 0..RUNQ_NODES {
        let node = |j: u32| runq_base + (j % RUNQ_NODES) * RUNQ_NODE_WORDS * 4;
        a.word(node(i + 1)); // next
        a.word(node(i + RUNQ_NODES - 1)); // prev
        a.word(i + 1); // pid
        a.word(0); // vruntime
    }
    a.section(Section::Text);

    // Entry is the reset vector (text offset 0).
    a.finish(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_isa::decode;

    fn params() -> KernelParams {
        KernelParams {
            user_entry: 0x0001_0000,
            heap_base: 0x0030_0000,
            heap_end: 0x0040_0000,
            tick_period: 20_000,
        }
    }

    #[test]
    fn kernel_assembles_and_fits_the_layout() {
        let img = build_kernel(params()).unwrap();
        assert_eq!(img.entry(), KERNEL_BASE);
        assert!(
            img.text_bytes() < KERNEL_RODATA,
            "kernel text overflows its region"
        );
        // Data segment: ticks + brk + kstat + run queue.
        assert_eq!(
            img.data_bytes(),
            4 + 4 + 4 + RUNQ_NODES * RUNQ_NODE_WORDS * 4
        );
    }

    #[test]
    fn vector_slots_are_branches() {
        let img = build_kernel(params()).unwrap();
        let text = &img.segments()[0].data;
        for slot in 0..6 {
            let w = u32::from_le_bytes(text[slot * 4..slot * 4 + 4].try_into().unwrap());
            let insn = decode(w).expect("vector slot must decode");
            assert!(
                matches!(insn, sea_isa::Insn::Branch { .. }),
                "vector {slot} is not a branch: {insn}"
            );
        }
    }

    #[test]
    fn brk_is_initialized_to_heap_base() {
        let img = build_kernel(params()).unwrap();
        let data = img.segments().iter().find(|s| s.flags.write).unwrap();
        let brk = u32::from_le_bytes(data.data[4..8].try_into().unwrap());
        assert_eq!(brk, params().heap_base);
    }
}

//! Host-side firmware: loads the kernel + user program and builds the page
//! tables, leaving the machine at the reset vector ready to boot.
//!
//! Everything here happens *before* the simulated clock starts (it models
//! the board's boot ROM + U-Boot stage), so it writes physical memory
//! directly. Everything after reset — syscalls, ticks, faults — is real
//! guest code from [`crate::build_kernel`] running through the caches.

use std::fmt;

use sea_isa::{Image, MemSize};
use sea_microarch::{l1_entry, pte, Device, System, PAGE_BYTES, PTE_EXEC, PTE_USER, PTE_WRITE};

use crate::build::{build_kernel, KernelParams};
use crate::layout::{
    DEVICE_VA, KERNEL_STACK_TOP, PT_L1_BASE, PT_L2_POOL, USER_POOL_BASE, USER_STACK_TOP,
};

/// Tunable kernel/boot parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelConfig {
    /// Timer tick period in cycles.
    pub tick_period: u32,
    /// User stack size in bytes (page multiple).
    pub user_stack_bytes: u32,
    /// Premapped heap size in bytes (page multiple).
    pub heap_bytes: u32,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            tick_period: 20_000,
            user_stack_bytes: 64 * 1024,
            heap_bytes: 1024 * 1024,
        }
    }
}

/// Result of a successful install.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BootInfo {
    /// User program entry point.
    pub user_entry: u32,
    /// First heap address.
    pub heap_base: u32,
    /// Heap limit (exclusive).
    pub heap_end: u32,
    /// Physical pages allocated for user mappings.
    pub user_pages: u32,
    /// Kernel text bytes (diagnostics; correlates with I-cache residency).
    pub kernel_text_bytes: u32,
}

/// Install-time error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InstallError {
    /// The kernel failed to assemble (internal bug).
    Kernel(String),
    /// Physical memory exhausted while mapping user pages.
    OutOfMemory,
    /// A user segment lies outside the user virtual range.
    BadSegment {
        /// Segment start.
        vaddr: u32,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Kernel(e) => write!(f, "kernel assembly failed: {e}"),
            InstallError::OutOfMemory => write!(f, "physical memory exhausted"),
            InstallError::BadSegment { vaddr } => {
                write!(f, "user segment at {vaddr:#x} outside user range")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Simple page-table writer over physical memory.
struct Tables<'m, D> {
    sys: &'m mut System<D>,
    next_l2: u32,
    next_user_page: u32,
}

impl<D: Device> Tables<'_, D> {
    fn l2_for(&mut self, va: u32) -> u32 {
        let l1a = PT_L1_BASE + (va >> 20) * 4;
        let l1e = self.sys.mem.phys.read(l1a, MemSize::Word);
        if l1e & 1 != 0 {
            return l1e & !0x3FF;
        }
        let l2 = self.next_l2;
        self.next_l2 += 0x400;
        self.sys.mem.phys.write(l1a, MemSize::Word, l1_entry(l2));
        l2
    }

    fn map_page(&mut self, va: u32, pa: u32, flags: u32) {
        let l2 = self.l2_for(va);
        let idx = (va >> 12) & 0xFF;
        self.sys
            .mem
            .phys
            .write(l2 + idx * 4, MemSize::Word, pte(pa >> 12, flags));
    }

    fn alloc_user_page(&mut self) -> Result<u32, InstallError> {
        let pa = self.next_user_page;
        if pa + PAGE_BYTES > self.sys.mem.phys.size() {
            return Err(InstallError::OutOfMemory);
        }
        self.next_user_page += PAGE_BYTES;
        Ok(pa)
    }

    /// Maps `[va, va+len)` onto freshly allocated user pages with `flags`.
    fn map_user_range(&mut self, va: u32, len: u32, flags: u32) -> Result<(), InstallError> {
        let start = va & !(PAGE_BYTES - 1);
        let end = (va + len).next_multiple_of(PAGE_BYTES);
        let mut page = start;
        while page < end {
            let pa = self.alloc_user_page()?;
            self.map_page(page, pa, flags);
            page += PAGE_BYTES;
        }
        Ok(())
    }

    /// Translates a user VA through the just-built tables (install-time
    /// only, for copying segment data).
    fn resolve(&self, va: u32) -> u32 {
        let l1e = self
            .sys
            .mem
            .phys
            .read(PT_L1_BASE + (va >> 20) * 4, MemSize::Word);
        let l2 = l1e & !0x3FF;
        let raw = self
            .sys
            .mem
            .phys
            .read(l2 + ((va >> 12) & 0xFF) * 4, MemSize::Word);
        (raw & !0xFFF) | (va & 0xFFF)
    }
}

/// Loads the kernel and `user` into `sys`, builds the page tables, and
/// leaves the CPU at the reset vector in supervisor mode.
///
/// # Errors
///
/// Returns an error if physical memory is exhausted or a user segment is
/// outside the user address range.
pub fn install<D: Device>(
    sys: &mut System<D>,
    user: &Image,
    cfg: &KernelConfig,
) -> Result<BootInfo, InstallError> {
    // Heap placement: first page boundary after the highest user segment.
    let seg_end = user
        .segments()
        .iter()
        .map(|s| s.end())
        .max()
        .unwrap_or(0x0020_0000);
    let heap_base = seg_end.next_multiple_of(PAGE_BYTES);
    let heap_end = heap_base + cfg.heap_bytes;

    let kernel = build_kernel(KernelParams {
        user_entry: user.entry(),
        heap_base,
        heap_end,
        tick_period: cfg.tick_period,
    })
    .map_err(|e| InstallError::Kernel(e.to_string()))?;

    // Kernel segments load at their (identity) addresses.
    for seg in kernel.segments() {
        sys.mem.phys.write_bytes(seg.vaddr, &seg.data);
    }

    let mut t = Tables {
        sys,
        next_l2: PT_L2_POOL,
        next_user_page: USER_POOL_BASE,
    };

    // Kernel identity map: [0, KERNEL_STACK_TOP), supervisor rwx.
    let mut va = 0;
    while va < KERNEL_STACK_TOP {
        t.map_page(va, va, PTE_WRITE | PTE_EXEC);
        va += PAGE_BYTES;
    }
    // Device window: 16 pages, supervisor rw.
    for i in 0..16 {
        let a = DEVICE_VA + i * PAGE_BYTES;
        t.map_page(a, a, PTE_WRITE);
    }
    // User segments.
    for seg in user.segments() {
        if seg.vaddr < crate::layout::USER_VA_BASE || seg.end() > crate::layout::USER_VA_LIMIT {
            return Err(InstallError::BadSegment { vaddr: seg.vaddr });
        }
        let mut flags = PTE_USER;
        if seg.flags.write {
            flags |= PTE_WRITE;
        }
        if seg.flags.execute {
            flags |= PTE_EXEC;
        }
        t.map_user_range(seg.vaddr, seg.mem_size, flags)?;
        // Copy initialized bytes through the new mapping.
        for (i, &b) in seg.data.iter().enumerate() {
            let pa = t.resolve(seg.vaddr + i as u32);
            t.sys.mem.phys.write(pa, MemSize::Byte, b as u32);
        }
    }
    // Heap + stack.
    t.map_user_range(heap_base, cfg.heap_bytes, PTE_USER | PTE_WRITE)?;
    t.map_user_range(
        USER_STACK_TOP - cfg.user_stack_bytes,
        cfg.user_stack_bytes,
        PTE_USER | PTE_WRITE,
    )?;

    let user_pages = (t.next_user_page - USER_POOL_BASE) / PAGE_BYTES;
    sys.cpu.ttbr = PT_L1_BASE;
    sys.cpu.pc = kernel.entry();

    Ok(BootInfo {
        user_entry: user.entry(),
        heap_base,
        heap_end,
        user_pages,
        kernel_text_bytes: kernel.text_bytes(),
    })
}

//! Loader edge cases: the firmware must reject images it cannot place
//! rather than corrupt the machine.

use sea_isa::{Asm, Image, Section, Segment, SegmentFlags};
use sea_kernel::{install, InstallError, KernelConfig, USER_VA_BASE, USER_VA_LIMIT};
use sea_microarch::{MachineConfig, NullDevice, System};

fn tiny_image_at(vaddr: u32) -> Image {
    Image::new(
        vec![Segment {
            vaddr,
            data: vec![0u8; 16],
            mem_size: 16,
            flags: SegmentFlags::TEXT,
        }],
        vaddr,
        Default::default(),
    )
    .unwrap()
}

#[test]
fn segment_below_user_base_is_rejected() {
    let mut sys = System::new(MachineConfig::cortex_a9_scaled(), NullDevice);
    let img = tiny_image_at(USER_VA_BASE - 0x1000);
    match install(&mut sys, &img, &KernelConfig::default()) {
        Err(InstallError::BadSegment { vaddr }) => assert_eq!(vaddr, USER_VA_BASE - 0x1000),
        other => panic!("expected BadSegment, got {other:?}"),
    }
}

#[test]
fn segment_above_user_limit_is_rejected() {
    let mut sys = System::new(MachineConfig::cortex_a9_scaled(), NullDevice);
    let img = tiny_image_at(USER_VA_LIMIT - 8); // spills past the limit
    assert!(matches!(
        install(&mut sys, &img, &KernelConfig::default()),
        Err(InstallError::BadSegment { .. })
    ));
}

#[test]
fn oversized_heap_exhausts_physical_memory() {
    let mut cfg = MachineConfig::cortex_a9_scaled();
    cfg.mem_bytes = 8 * 1024 * 1024;
    let mut sys = System::new(cfg, NullDevice);
    let img = tiny_image_at(USER_VA_BASE);
    let kc = KernelConfig {
        heap_bytes: 32 * 1024 * 1024,
        ..KernelConfig::default()
    };
    assert!(matches!(
        install(&mut sys, &img, &kc),
        Err(InstallError::OutOfMemory)
    ));
}

#[test]
fn install_reports_boot_info_consistently() {
    let mut sys = System::new(MachineConfig::cortex_a9_scaled(), NullDevice);
    let mut a = Asm::new();
    let e = a.label("e");
    a.bind(e).unwrap();
    a.nop();
    a.section(Section::Data);
    a.word(7);
    a.section(Section::Text);
    let img = a.finish(e).unwrap();
    let info = install(&mut sys, &img, &KernelConfig::default()).unwrap();
    assert_eq!(info.user_entry, img.entry());
    assert!(info.heap_base >= img.segments().iter().map(|s| s.end()).max().unwrap());
    assert_eq!(
        info.heap_end - info.heap_base,
        KernelConfig::default().heap_bytes
    );
    assert!(info.user_pages > 0);
    assert!(info.kernel_text_bytes > 0);
    // The CPU is parked at the reset vector in supervisor mode.
    assert_eq!(sys.cpu.pc, sea_kernel::KERNEL_BASE);
    assert_eq!(sys.cpu.ttbr, sea_kernel::PT_L1_BASE);
}

//! The hang split: budget expiry is attributed to the app or the kernel
//! by the tick heartbeat — the simulator equivalent of the beam harness
//! asking "is the board still reachable?" — and the wall-clock watchdog
//! feeds the same classification.

use sea_isa::{Asm, Image};
use sea_kernel::KernelConfig;
use sea_microarch::MachineConfig;
use sea_platform::{boot, run, AppCrashKind, RunLimits, RunOutcome, SysCrashKind};

fn spin_forever() -> Image {
    let mut a = Asm::new();
    let e = a.label("main");
    a.bind(e).unwrap();
    let lp = a.label("lp");
    a.bind(lp).unwrap();
    a.b(lp);
    a.finish(e).unwrap()
}

#[test]
fn spinning_app_under_a_live_kernel_is_an_app_hang() {
    let kernel = KernelConfig::default();
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &spin_forever(), &kernel).unwrap();
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: 500_000,
            tick_window: 10 * kernel.tick_period as u64,
            wall_ms: 0,
        },
    );
    assert!(sys.dev.tick_count() > 0, "the kernel heartbeat kept going");
    assert_eq!(out, RunOutcome::AppCrash(AppCrashKind::Hang));
}

#[test]
fn spinning_app_under_a_silent_kernel_is_a_kernel_hang() {
    // Same program, but the timer is configured so slow the kernel never
    // ticks inside the budget: the heartbeat is silent, and the very same
    // budget expiry must now be charged to the system.
    let kernel = KernelConfig {
        tick_period: 1 << 30,
        ..KernelConfig::default()
    };
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &spin_forever(), &kernel).unwrap();
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: 500_000,
            tick_window: 200_000,
            wall_ms: 0,
        },
    );
    assert_eq!(sys.dev.tick_count(), 0, "the kernel never got to tick");
    assert_eq!(out, RunOutcome::SysCrash(SysCrashKind::KernelHang));
}

#[test]
fn wall_clock_watchdog_ends_a_run_the_cycle_budget_would_not() {
    // A cycle budget far beyond what the host can simulate in this test:
    // only the wall-clock watchdog can end the run, and it must classify
    // through the same heartbeat split (the kernel is ticking, so this is
    // an app hang).
    let kernel = KernelConfig::default();
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &spin_forever(), &kernel).unwrap();
    let t0 = std::time::Instant::now();
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: u64::MAX / 4,
            tick_window: 10 * kernel.tick_period as u64,
            wall_ms: 200,
        },
    );
    let elapsed = t0.elapsed();
    assert_eq!(out, RunOutcome::AppCrash(AppCrashKind::Hang));
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "watchdog fired at {elapsed:?}, not anywhere near the cycle budget"
    );
}

//! Full-system integration: boot the real kernel on the board model, run
//! user programs through the syscall interface, and hit every outcome
//! class the paper's harness distinguishes.

use sea_isa::{Asm, Cond, Image, Reg};
use sea_kernel::{user, KernelConfig};
use sea_microarch::{
    MachineConfig, ESR_CLASS_DATA_ABORT, ESR_CLASS_PREFETCH_ABORT, ESR_CLASS_UNDEFINED,
};
use sea_platform::{
    boot, classify, golden_run, run, AppCrashKind, FaultClass, RunLimits, RunOutcome, SysCrashKind,
};

fn build_user(body: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new();
    let e = a.label("main");
    a.bind(e).unwrap();
    body(&mut a);
    a.finish(e).unwrap()
}

fn limits() -> RunLimits {
    RunLimits {
        max_cycles: 3_000_000,
        tick_window: 200_000,
        wall_ms: 0,
    }
}

#[test]
fn hello_exits_cleanly_with_output() {
    let img = build_user(|a| {
        let msg = a.label("msg");
        user::alive(a);
        user::write_label(a, msg, 13);
        user::exit_with(a, 0);
        a.section(sea_isa::Section::Rodata);
        a.bind(msg).unwrap();
        a.bytes(b"hello, world\n");
        a.section(sea_isa::Section::Text);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    let out = run(&mut sys, limits());
    match &out {
        RunOutcome::Exited {
            code,
            output,
            overflow,
        } => {
            assert_eq!(*code, 0);
            assert_eq!(output.as_slice(), b"hello, world\n");
            assert!(!overflow);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert_eq!(classify(&out, b"hello, world\n"), FaultClass::Masked);
    assert_eq!(classify(&out, b"hello, worlD\n"), FaultClass::Sdc);
    assert_eq!(sys.dev.alive_count(), 1);
}

#[test]
fn golden_run_captures_counters_and_cycles() {
    let img = build_user(|a| {
        let msg = a.label("m");
        user::write_label(a, msg, 4);
        user::exit_with(a, 0);
        a.section(sea_isa::Section::Rodata);
        a.bind(msg).unwrap();
        a.bytes(b"data");
        a.section(sea_isa::Section::Text);
    });
    let g = golden_run(
        MachineConfig::cortex_a9(),
        &img,
        &KernelConfig::default(),
        3_000_000,
    )
    .unwrap();
    assert_eq!(g.output, b"data");
    assert!(g.cycles > 0 && g.instructions > 0);
    assert!(g.counters.l1i_miss > 0, "cold caches must miss");
    assert!(g.boot.heap_base >= 0x0010_0000);
}

#[test]
fn timer_ticks_arrive_during_long_runs() {
    // Spin long enough for several 20k-cycle ticks, then exit.
    let img = build_user(|a| {
        let lp = a.label("lp");
        a.mov32(Reg::R4, 60_000);
        a.bind(lp).unwrap();
        a.subs_imm(Reg::R4, Reg::R4, 1);
        a.b_if(Cond::Ne, lp);
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    let out = run(&mut sys, limits());
    assert!(matches!(out, RunOutcome::Exited { code: 0, .. }));
    assert!(
        sys.dev.tick_count() >= 3,
        "expected several scheduler ticks, got {}",
        sys.dev.tick_count()
    );
}

#[test]
fn wild_store_is_an_app_crash_with_data_abort() {
    let img = build_user(|a| {
        a.mov32(Reg::R1, 0x6000_0000); // unmapped user-range address
        a.str(Reg::R0, Reg::R1, 0);
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::AppCrash(AppCrashKind::Signal(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_DATA_ABORT);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn kernel_pointer_dereference_is_an_app_crash() {
    // Touching kernel memory from user mode must fault with a permission
    // abort, not corrupt the kernel.
    let img = build_user(|a| {
        a.mov_imm(Reg::R1, 0);
        a.str(Reg::R0, Reg::R1, 16); // vector table!
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::AppCrash(AppCrashKind::Signal(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_DATA_ABORT);
            assert_eq!(esr & 0xFFFF, 2, "expected a permission fault");
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn undefined_instruction_is_an_app_crash() {
    let img = build_user(|a| {
        a.word(0xE900_0000); // invalid class
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::AppCrash(AppCrashKind::Signal(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_UNDEFINED);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn wild_jump_is_an_app_crash_with_prefetch_abort() {
    let img = build_user(|a| {
        a.mov32(Reg::R1, 0x7000_0000);
        a.bx(Reg::R1);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::AppCrash(AppCrashKind::Signal(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_PREFETCH_ABORT);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn infinite_loop_is_an_app_hang_not_a_system_crash() {
    let img = build_user(|a| {
        let lp = a.label("lp");
        a.bind(lp).unwrap();
        a.b(lp);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: 500_000,
            tick_window: 200_000,
            wall_ms: 0,
        },
    );
    // The kernel keeps ticking under the spinning app, so the watchdog
    // attributes the hang to the application.
    assert_eq!(out, RunOutcome::AppCrash(AppCrashKind::Hang));
    assert!(sys.dev.tick_count() > 0);
    assert_eq!(classify(&out, b""), FaultClass::AppCrash);
}

#[test]
fn privileged_instruction_from_user_is_killed() {
    let img = build_user(|a| {
        a.push(sea_isa::Insn::Halt { cond: Cond::Al }); // privileged
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::AppCrash(AppCrashKind::Signal(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_UNDEFINED);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn sbrk_grows_heap_and_fails_past_limit() {
    let img = build_user(|a| {
        // r4 = sbrk(4096); write a marker; exit(marker readback == 0x77).
        a.mov32(Reg::R0, 4096);
        user::sbrk(a);
        a.mov(Reg::R4, Reg::R0);
        a.mov_imm(Reg::R5, 0x77);
        a.str(Reg::R5, Reg::R4, 0);
        a.ldr(Reg::R6, Reg::R4, 0);
        // exit(r6 == 0x77 ? 0 : 1)
        a.cmp_imm(Reg::R6, 0x77);
        a.mov_imm(Reg::R0, 1);
        a.ifc(Cond::Eq).mov_imm(Reg::R0, 0);
        user::exit(a);
    });
    let (mut sys, info) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::Exited { code, .. } => assert_eq!(code, 0),
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert!(info.heap_base < info.heap_end);
}

#[test]
fn unknown_syscall_returns_enosys_and_continues() {
    let img = build_user(|a| {
        a.mov_imm(Reg::R7, 99);
        a.svc(99);
        // r0 must be ENOSYS (0xFFFF_FFFF): exit(r0 == -1 ? 0 : 2)
        a.cmp_imm(Reg::R0, 0);
        a.mov_imm(Reg::R1, 0);
        a.mvn(Reg::R1, Reg::R1);
        a.cmp(Reg::R0, Reg::R1);
        a.mov_imm(Reg::R0, 2);
        a.ifc(Cond::Eq).mov_imm(Reg::R0, 0);
        user::exit(a);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::Exited { code, .. } => assert_eq!(code, 0),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn write_with_kernel_pointer_fails_cleanly() {
    // write(kernel_addr, len) must be rejected by the kernel's range check
    // (returning -1), not panic the kernel.
    let img = build_user(|a| {
        a.mov_imm(Reg::R0, 0); // kernel address
        a.mov_imm(Reg::R1, 16);
        user::write(a);
        // exit(0) if r0 == -1
        a.mov_imm(Reg::R1, 0);
        a.mvn(Reg::R1, Reg::R1);
        a.cmp(Reg::R0, Reg::R1);
        a.mov_imm(Reg::R0, 3);
        a.ifc(Cond::Eq).mov_imm(Reg::R0, 0);
        user::exit(a);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::Exited { code, output, .. } => {
            assert_eq!(code, 0);
            assert!(output.is_empty(), "no bytes may leak from kernel space");
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}

#[test]
fn corrupted_kernel_text_escalates_to_system_crash() {
    // Corrupt the SVC dispatch path in kernel text (physical memory), then
    // make a syscall: the kernel must die, not the app.
    let img = build_user(|a| {
        user::alive(a);
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    // Clobber a word in the middle of kernel text (past the vectors and
    // boot code) with garbage that faults in supervisor mode.
    for off in (0x100..0x400u32).step_by(4) {
        sys.mem.phys.write(off, sea_isa::MemSize::Word, 0xE900_0000);
    }
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: 2_000_000,
            tick_window: 200_000,
            wall_ms: 0,
        },
    );
    match out {
        RunOutcome::SysCrash(SysCrashKind::Panic(_) | SysCrashKind::KernelHang) => {}
        other => panic!("expected a system crash, got {other:?}"),
    }
}

#[test]
fn corrupted_runqueue_pointer_panics_the_kernel() {
    // The kernel's run queue is pointer-linked (like Linux's scheduler
    // lists); corrupting a `next` pointer must surface as a kernel panic on
    // the next tick — the paper's §V-A System-Crash mechanism.
    let img = build_user(|a| {
        // Spin long enough for several ticks.
        let lp = a.label("lp");
        a.mov32(Reg::R4, 200_000);
        a.bind(lp).unwrap();
        a.subs_imm(Reg::R4, Reg::R4, 1);
        a.b_if(Cond::Ne, lp);
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    // Node 0's `next` word lives at KERNEL_DATA + 12 bytes (after ticks,
    // brk, kstat); point it at an unmapped kernel address.
    let next_addr = sea_kernel::KERNEL_DATA + 12;
    sys.mem
        .phys
        .write(next_addr, sea_isa::MemSize::Word, 0x00F0_0000);
    let out = run(
        &mut sys,
        RunLimits {
            max_cycles: 3_000_000,
            tick_window: 200_000,
            wall_ms: 0,
        },
    );
    match out {
        RunOutcome::SysCrash(SysCrashKind::Panic(esr)) => {
            assert_eq!(
                esr >> 24,
                ESR_CLASS_DATA_ABORT,
                "panic cause should be a data abort"
            );
        }
        other => panic!("expected kernel panic, got {other:?}"),
    }
}

#[test]
fn postmortem_reports_crash_state_and_trace() {
    let img = build_user(|a| {
        a.mov32(Reg::R1, 0x6000_0000);
        a.str(Reg::R0, Reg::R1, 0); // fatal store
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    sys.cpu.enable_trace(16);
    let out = run(&mut sys, limits());
    assert!(matches!(out, RunOutcome::AppCrash(_)));
    let report = sea_platform::postmortem(&sys);
    assert!(report.contains("far=0x60000000"), "report: {report}");
    assert!(report.contains("signal=Some"), "report: {report}");
    assert!(
        report.contains("trace:"),
        "trace must be present when enabled"
    );
}

#[test]
fn write_of_unmapped_user_range_is_a_kernel_panic_by_design() {
    // The kernel's write() range check admits any user-range pointer; a
    // pointer into an unmapped hole faults *in supervisor mode* during the
    // copy loop. Linux would return EFAULT; linux-lite oopses — a
    // documented simplification that slightly inflates SysCrash, noted in
    // DESIGN.md. This test pins the behavior so a future copy_from_user
    // implementation shows up as an intentional change.
    let img = build_user(|a| {
        a.mov32(Reg::R0, 0x4000_0000); // user-range but unmapped
        a.mov_imm(Reg::R1, 8);
        user::write(a);
        user::exit_with(a, 0);
    });
    let (mut sys, _) = boot(MachineConfig::cortex_a9(), &img, &KernelConfig::default()).unwrap();
    match run(&mut sys, limits()) {
        RunOutcome::SysCrash(SysCrashKind::Panic(esr)) => {
            assert_eq!(esr >> 24, ESR_CLASS_DATA_ABORT);
        }
        other => panic!("expected kernel panic (documented behavior), got {other:?}"),
    }
}

#[test]
fn output_overflow_is_flagged_and_never_masked() {
    // A runaway writer hits the board's output cap; the run still exits
    // but can never be Masked. Every captured byte matches the golden
    // prefix, so this is a runaway app (AppCrash), not data corruption.
    let img = build_user(|a| {
        let lp = a.label("lp");
        let buf = a.label("buf");
        a.mov32(Reg::R4, 64); // 64 × 64 B = 4 KiB of output
        a.bind(lp).unwrap();
        user::write_label(a, buf, 64);
        a.subs_imm(Reg::R4, Reg::R4, 1);
        a.b_if(Cond::Ne, lp);
        user::exit_with(a, 0);
        a.section(sea_isa::Section::Rodata);
        a.bind(buf).unwrap();
        a.zero(64);
        a.section(sea_isa::Section::Text);
    });
    let mut sys = sea_microarch::System::new(
        MachineConfig::cortex_a9(),
        sea_platform::Board::with_output_cap(512),
    );
    sea_kernel::install(&mut sys, &img, &KernelConfig::default()).unwrap();
    let out = run(&mut sys, limits());
    match &out {
        RunOutcome::Exited {
            overflow, output, ..
        } => {
            assert!(*overflow);
            assert_eq!(output.len(), 512);
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
    assert_eq!(classify(&out, &vec![0u8; 4096]), FaultClass::AppCrash);
    // A deviating byte inside the truncated capture is still corruption.
    if let RunOutcome::Exited {
        output,
        overflow,
        code,
    } = out
    {
        let mut corrupted = output;
        corrupted[17] ^= 0x40;
        let tampered = RunOutcome::Exited {
            code,
            output: corrupted,
            overflow,
        };
        assert_eq!(classify(&tampered, &vec![0u8; 4096]), FaultClass::Sdc);
    }
}

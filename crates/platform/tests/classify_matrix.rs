//! Exhaustive classification matrix: every RunOutcome × golden-output
//! combination maps to the paper's intended class.

use sea_platform::{classify, AppCrashKind, ClassCounts, FaultClass, RunOutcome, SysCrashKind};

#[test]
fn exit_zero_matching_output_is_masked() {
    let out = RunOutcome::Exited {
        code: 0,
        output: b"ok".to_vec(),
        overflow: false,
    };
    assert_eq!(classify(&out, b"ok"), FaultClass::Masked);
}

#[test]
fn any_output_deviation_is_sdc() {
    for out in [
        RunOutcome::Exited {
            code: 0,
            output: b"bad".to_vec(),
            overflow: false,
        },
        RunOutcome::Exited {
            code: 1,
            output: b"ok".to_vec(),
            overflow: false,
        },
        RunOutcome::Exited {
            code: 0,
            output: b"oops".to_vec(),
            overflow: true,
        },
        RunOutcome::Exited {
            code: 0,
            output: Vec::new(),
            overflow: false,
        },
    ] {
        assert_eq!(classify(&out, b"ok"), FaultClass::Sdc, "{out:?}");
    }
}

#[test]
fn overflow_with_correct_bytes_is_app_crash_not_sdc() {
    // Runaway writer: the board cap truncated the stream, but every byte
    // captured matches the golden prefix. No corruption evidence — the
    // paper's beam harness restarts such apps, it does not count an SDC.
    let truncated = RunOutcome::Exited {
        code: 0,
        output: b"ok".to_vec(),
        overflow: true,
    };
    assert_eq!(classify(&truncated, b"okok"), FaultClass::AppCrash);
    // Symmetric case: the run emitted *more* correct output than golden
    // before hitting the cap (e.g. the loop bound was corrupted upward).
    let extended = RunOutcome::Exited {
        code: 0,
        output: b"okokok".to_vec(),
        overflow: true,
    };
    assert_eq!(classify(&extended, b"okok"), FaultClass::AppCrash);
}

#[test]
fn overflow_with_deviating_bytes_stays_sdc() {
    let out = RunOutcome::Exited {
        code: 0,
        output: b"oXok".to_vec(),
        overflow: true,
    };
    assert_eq!(classify(&out, b"okok"), FaultClass::Sdc);
    // Nonzero exit code disqualifies the runaway-output carve-out.
    let bad_exit = RunOutcome::Exited {
        code: 1,
        output: b"ok".to_vec(),
        overflow: true,
    };
    assert_eq!(classify(&bad_exit, b"okok"), FaultClass::Sdc);
}

#[test]
fn unexpected_halt_is_sys_crash() {
    let out = RunOutcome::SysCrash(SysCrashKind::UnexpectedHalt);
    assert_eq!(classify(&out, b"ok"), FaultClass::SysCrash);
}

#[test]
fn app_hang_and_kernel_hang_land_in_different_classes() {
    // §IV-D: an application stuck while the kernel tick still fires is an
    // application crash (the workload can be restarted); a dead kernel
    // heartbeat is a system crash (the board needs a power cycle).
    let app = RunOutcome::AppCrash(AppCrashKind::Hang);
    let kernel = RunOutcome::SysCrash(SysCrashKind::KernelHang);
    assert_eq!(classify(&app, b"ok"), FaultClass::AppCrash);
    assert_eq!(classify(&kernel, b"ok"), FaultClass::SysCrash);
    assert_ne!(classify(&app, b"ok"), classify(&kernel, b"ok"));
}

#[test]
fn crash_kinds_map_to_their_classes() {
    for kind in [AppCrashKind::Signal(7), AppCrashKind::Hang] {
        assert_eq!(
            classify(&RunOutcome::AppCrash(kind), b""),
            FaultClass::AppCrash
        );
    }
    for kind in [
        SysCrashKind::Panic(1),
        SysCrashKind::KernelHang,
        SysCrashKind::LockedUp,
        SysCrashKind::UnexpectedHalt,
    ] {
        assert_eq!(
            classify(&RunOutcome::SysCrash(kind), b""),
            FaultClass::SysCrash
        );
    }
}

#[test]
fn class_counts_bookkeeping() {
    let mut c = ClassCounts::default();
    for class in FaultClass::ALL {
        c.add(class);
        c.add(class);
    }
    assert_eq!(c.total(), 8);
    assert_eq!(c.avf(), 0.75);
    for class in FaultClass::ALL {
        assert_eq!(c.count(class), 2);
        assert_eq!(c.rate(class), 0.25);
    }
}

#[test]
fn empty_counts_have_zero_avf_and_rates() {
    let c = ClassCounts::default();
    assert_eq!(c.avf(), 0.0);
    assert_eq!(c.rate(FaultClass::Sdc), 0.0);
}

//! Exhaustive classification matrix: every RunOutcome × golden-output
//! combination maps to the paper's intended class.

use sea_platform::{classify, AppCrashKind, ClassCounts, FaultClass, RunOutcome, SysCrashKind};

#[test]
fn exit_zero_matching_output_is_masked() {
    let out = RunOutcome::Exited { code: 0, output: b"ok".to_vec(), overflow: false };
    assert_eq!(classify(&out, b"ok"), FaultClass::Masked);
}

#[test]
fn any_output_deviation_is_sdc() {
    for out in [
        RunOutcome::Exited { code: 0, output: b"bad".to_vec(), overflow: false },
        RunOutcome::Exited { code: 1, output: b"ok".to_vec(), overflow: false },
        RunOutcome::Exited { code: 0, output: b"ok".to_vec(), overflow: true },
        RunOutcome::Exited { code: 0, output: Vec::new(), overflow: false },
    ] {
        assert_eq!(classify(&out, b"ok"), FaultClass::Sdc, "{out:?}");
    }
}

#[test]
fn crash_kinds_map_to_their_classes() {
    for kind in [AppCrashKind::Signal(7), AppCrashKind::Hang] {
        assert_eq!(classify(&RunOutcome::AppCrash(kind), b""), FaultClass::AppCrash);
    }
    for kind in [
        SysCrashKind::Panic(1),
        SysCrashKind::KernelHang,
        SysCrashKind::LockedUp,
        SysCrashKind::UnexpectedHalt,
    ] {
        assert_eq!(classify(&RunOutcome::SysCrash(kind), b""), FaultClass::SysCrash);
    }
}

#[test]
fn class_counts_bookkeeping() {
    let mut c = ClassCounts::default();
    for class in FaultClass::ALL {
        c.add(class);
        c.add(class);
    }
    assert_eq!(c.total(), 8);
    assert_eq!(c.avf(), 0.75);
    for class in FaultClass::ALL {
        assert_eq!(c.count(class), 2);
        assert_eq!(c.rate(class), 0.25);
    }
}

#[test]
fn empty_counts_have_zero_avf_and_rates() {
    let c = ClassCounts::default();
    assert_eq!(c.avf(), 0.0);
    assert_eq!(c.rate(FaultClass::Sdc), 0.0);
}

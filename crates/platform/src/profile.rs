//! Profiled golden runs.
//!
//! The profiling counterpart of [`golden_run`](crate::golden_run): the
//! same fault-free reference execution, but with `sea-profile` residency
//! trackers and the per-PC sampler attached for its whole duration. The
//! resulting [`ProfileData`] carries the ACE-style predicted AVF per
//! structure and the cycle-attribution profile that `sea-analysis`
//! renders next to the injection-measured AVF.
//!
//! Profiling is attached to a *separate* boot — never to the machine a
//! campaign reuses — so campaign checkpoints and journals stay
//! byte-identical whether or not profiling ran.

use crate::board::Board;
use crate::run::{boot, GoldenError, GoldenRun, RunLimits, RunOutcome};
use sea_kernel::KernelConfig;
use sea_microarch::{MachineConfig, System};
use sea_profile::ProfileData;
use sea_trace::{Level, Subsystem};

/// Runs `user` fault-free to completion with profilers attached,
/// returning both the golden reference and the attribution profile.
///
/// The architectural result (output, exit code, cycle count) is identical
/// to [`golden_run`](crate::golden_run) — the profilers are pure
/// observers — which the `profile` integration test asserts.
///
/// # Errors
///
/// Same failure modes as [`golden_run`](crate::golden_run).
pub fn profiled_golden_run(
    machine: MachineConfig,
    user: &sea_isa::Image,
    kernel: &KernelConfig,
    budget_cycles: u64,
) -> Result<(GoldenRun, ProfileData), GoldenError> {
    let (mut sys, boot) = boot(machine, user, kernel).map_err(GoldenError::Install)?;
    sea_profile::set_enabled(true);
    sys.profile_attach();
    let limits = RunLimits {
        max_cycles: budget_cycles,
        tick_window: u64::MAX,
        wall_ms: 0,
    };
    let span = sea_trace::span(Subsystem::Platform, Level::Info, "platform.golden_profiled");
    let outcome = crate::run::run(&mut sys, limits);
    let profile = detach(&mut sys);
    match outcome {
        RunOutcome::Exited {
            code: 0,
            output,
            overflow: false,
        } => {
            if let Some(mut s) = span {
                s.field("cycles", sys.cycles());
                s.field("hot_pcs", profile.pc.entries.len() as u64);
            }
            Ok((
                GoldenRun {
                    output,
                    exit_code: 0,
                    cycles: sys.cycles(),
                    instructions: sys.cpu.counters.instructions,
                    counters: sys.cpu.counters,
                    boot,
                },
                profile,
            ))
        }
        other => Err(GoldenError::NotClean(other)),
    }
}

fn detach(sys: &mut System<Board>) -> ProfileData {
    let profile = sys.profile_take().unwrap_or_default();
    sea_profile::set_enabled(false);
    profile
}

//! Machine checkpoints: capture, restore, epoch collection, and disk
//! persistence.
//!
//! gem5 — the paper's microarchitectural fault-injection vehicle —
//! amortizes the fault-free boot prefix with checkpoints and restores each
//! injection run from the nearest one. This module is the SEA equivalent:
//! the golden run captures epoch checkpoints as it executes, and every
//! injected run restores the nearest checkpoint at or before its injection
//! cycle instead of re-simulating from reset. Physical memory is
//! copy-on-write ([`sea_snapshot::PageStore`] pages), so hundreds of
//! restored machines share the golden DRAM image and each pays only for
//! the pages it actually dirties.
//!
//! Determinism contract: the simulator is single-threaded and
//! deterministic, so a machine restored at cycle *c* and stepped to cycle
//! *t* is bit-identical to a machine booted from reset and stepped to *t*.
//! The equivalence tests in `sea-injection` hold this to the deep state
//! fingerprint.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sea_microarch::System;
use sea_snapshot::{
    decode_checkpoint, encode_checkpoint, CheckpointMeta, SnapError, SnapReader, SnapWriter,
    Snapshot,
};
use sea_trace::{event, Counter, Level, Subsystem};

use crate::board::Board;

/// Process-wide count of checkpoint captures (trace metric).
static CKPT_SAVES: Counter = Counter::new("snapshot.saves");
/// Process-wide count of checkpoint restores (trace metric).
static CKPT_RESTORES: Counter = Counter::new("snapshot.restores");
/// Process-wide sum of fault-free prefix cycles skipped by restoring
/// instead of re-simulating from reset (trace metric).
static CKPT_PREFIX_SAVED: Counter = Counter::new("snapshot.prefix_cycles_saved");

/// Process-wide checkpoint metrics: `(saves, restores, prefix_cycles_saved)`.
pub fn snapshot_metrics() -> (u64, u64, u64) {
    (
        CKPT_SAVES.get(),
        CKPT_RESTORES.get(),
        CKPT_PREFIX_SAVED.get(),
    )
}

/// One captured machine state: the full [`System`] (CPU, caches, TLBs,
/// board, COW memory) frozen at a cycle boundary of a fault-free run.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    cycle: u64,
    sys: System<Board>,
}

impl Checkpoint {
    /// Captures the machine as it stands. Cloning is cheap where it
    /// matters: DRAM pages are reference-bumped, not copied.
    pub fn capture(sys: &System<Board>) -> Checkpoint {
        CKPT_SAVES.inc();
        Checkpoint {
            cycle: sys.cycles(),
            sys: sys.clone(),
        }
    }

    /// The cycle this checkpoint was captured at.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// A fresh machine identical to the captured one. Each call yields an
    /// independent COW clone; concurrent restored runs never observe each
    /// other's writes.
    pub fn restore(&self) -> System<Board> {
        self.sys.clone()
    }

    /// Serializes into the versioned, hashed checkpoint container,
    /// stamping the campaign provenance into the header.
    pub fn encode(&self, config_hash: u64, golden_hash: u64) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.sys.save(&mut w);
        let meta = CheckpointMeta {
            cycle: self.cycle,
            config_hash,
            golden_hash,
        };
        encode_checkpoint(meta, &w.into_bytes())
    }

    /// Decodes a checkpoint container, rejecting foreign provenance and
    /// internally inconsistent state.
    ///
    /// # Errors
    ///
    /// Container-level rejections ([`SnapError`]) and provenance
    /// mismatches against this campaign's hashes.
    pub fn decode(
        bytes: &[u8],
        config_hash: u64,
        golden_hash: u64,
    ) -> Result<Checkpoint, CheckpointError> {
        let (meta, payload) = decode_checkpoint(bytes).map_err(CheckpointError::Snap)?;
        if meta.config_hash != config_hash {
            return Err(CheckpointError::Provenance {
                field: "config_hash",
                want: config_hash,
                found: meta.config_hash,
            });
        }
        if meta.golden_hash != golden_hash {
            return Err(CheckpointError::Provenance {
                field: "golden_hash",
                want: golden_hash,
                found: meta.golden_hash,
            });
        }
        let mut r = SnapReader::new(payload);
        let sys = System::<Board>::load(&mut r).map_err(CheckpointError::Snap)?;
        if !r.is_exhausted() {
            return Err(CheckpointError::Snap(SnapError::Malformed(
                "trailing bytes after machine state",
            )));
        }
        if sys.cycles() != meta.cycle {
            return Err(CheckpointError::Snap(SnapError::Malformed(
                "header cycle disagrees with machine cycle counter",
            )));
        }
        Ok(Checkpoint {
            cycle: meta.cycle,
            sys,
        })
    }
}

/// Boots a machine from a checkpoint instead of from reset: the
/// restore-side counterpart of [`crate::boot`].
pub fn boot_from_checkpoint(ckpt: &Checkpoint) -> System<Board> {
    ckpt.restore()
}

/// Why a persisted checkpoint was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// Container or payload rejection (magic, version, hash, layout).
    Snap(SnapError),
    /// The checkpoint belongs to a different campaign.
    Provenance {
        /// Which provenance field mismatched.
        field: &'static str,
        /// Hash this campaign expects.
        want: u64,
        /// Hash found in the container.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Snap(e) => write!(f, "checkpoint rejected: {e}"),
            CheckpointError::Provenance { field, want, found } => write!(
                f,
                "checkpoint provenance mismatch: {field} is {found:#018x}, campaign wants {want:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What a [`CheckpointSet`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints held.
    pub epochs: u64,
    /// Restores served.
    pub restores: u64,
    /// Fault-free prefix cycles skipped across all restores.
    pub prefix_cycles_saved: u64,
}

/// The epoch checkpoints of one golden run, shared read-only by every
/// campaign worker.
///
/// Interior mutex: [`System`] holds `Cell`-based provenance watches and is
/// not `Sync`, so the checkpoint list lives behind a lock and restores hand
/// out clones. The critical section is one COW clone — microseconds — so
/// worker contention is negligible next to a run's simulation time.
#[derive(Debug, Default)]
pub struct CheckpointSet {
    inner: Mutex<Vec<Checkpoint>>,
    restores: AtomicU64,
    prefix_cycles_saved: AtomicU64,
}

impl CheckpointSet {
    /// An empty set.
    pub fn new() -> CheckpointSet {
        CheckpointSet::default()
    }

    /// Adds a checkpoint, keeping the set ordered by cycle.
    pub fn push(&self, ckpt: Checkpoint) {
        let mut inner = self.inner.lock().expect("checkpoint set poisoned");
        let at = inner.partition_point(|c| c.cycle <= ckpt.cycle);
        inner.insert(at, ckpt);
    }

    /// Number of checkpoints held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("checkpoint set poisoned").len()
    }

    /// True when no checkpoint has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capture cycles, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        self.inner
            .lock()
            .expect("checkpoint set poisoned")
            .iter()
            .map(|c| c.cycle)
            .collect()
    }

    /// Restores the nearest checkpoint at or before `cycle`, or `None` if
    /// every held checkpoint is later. Accounts the restore and the prefix
    /// cycles it skipped.
    pub fn restore_at(&self, cycle: u64) -> Option<System<Board>> {
        let inner = self.inner.lock().expect("checkpoint set poisoned");
        let at = inner.partition_point(|c| c.cycle <= cycle);
        let ckpt = inner.get(at.checked_sub(1)?)?;
        let sys = ckpt.restore();
        drop(inner);
        self.restores.fetch_add(1, Ordering::Relaxed);
        self.prefix_cycles_saved
            .fetch_add(sys.cycles(), Ordering::Relaxed);
        CKPT_RESTORES.inc();
        CKPT_PREFIX_SAVED.add(sys.cycles());
        Some(sys)
    }

    /// Usage statistics for campaign reporting.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            epochs: self.len() as u64,
            restores: self.restores.load(Ordering::Relaxed),
            prefix_cycles_saved: self.prefix_cycles_saved.load(Ordering::Relaxed),
        }
    }

    /// Writes every checkpoint into `dir` as one container file each,
    /// returning how many were written. Existing checkpoint files in the
    /// directory are replaced.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn persist(
        &self,
        dir: &Path,
        config_hash: u64,
        golden_hash: u64,
    ) -> std::io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        for old in std::fs::read_dir(dir)? {
            let old = old?.path();
            if old.extension().is_some_and(|e| e == "seackpt") {
                std::fs::remove_file(old)?;
            }
        }
        let inner = self.inner.lock().expect("checkpoint set poisoned");
        for ckpt in inner.iter() {
            let path = dir.join(format!("ckpt_{:016x}.seackpt", ckpt.cycle));
            std::fs::write(path, ckpt.encode(config_hash, golden_hash))?;
        }
        event!(Subsystem::Platform, Level::Info, "snapshot.persist";
               "dir" => dir.display().to_string(),
               "epochs" => inner.len() as u64);
        Ok(inner.len())
    }

    /// Loads every `*.seackpt` file in `dir`, validating each against this
    /// campaign's provenance. Any rejected file fails the whole load — a
    /// directory of mixed-campaign checkpoints is a setup error, not
    /// something to paper over.
    ///
    /// # Errors
    ///
    /// I/O failures and per-file [`CheckpointError`] rejections.
    pub fn load_dir(
        dir: &Path,
        config_hash: u64,
        golden_hash: u64,
    ) -> Result<CheckpointSet, CheckpointError> {
        let set = CheckpointSet::new();
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(CheckpointError::Io)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(CheckpointError::Io)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seackpt"))
            .collect();
        files.sort();
        for path in files {
            let bytes = std::fs::read(&path).map_err(CheckpointError::Io)?;
            set.push(Checkpoint::decode(&bytes, config_hash, golden_hash)?);
        }
        event!(Subsystem::Platform, Level::Info, "snapshot.load_dir";
               "dir" => dir.display().to_string(),
               "epochs" => set.len() as u64);
        Ok(set)
    }
}

/// Collects epoch checkpoints while a golden run executes.
///
/// The interval adapts: the run length is unknown up front, so when the
/// set outgrows its cap the recorder drops every other checkpoint and
/// doubles the interval. The result is 17–32 checkpoints spread over the
/// actual run, whatever its length — deterministic, since it depends only
/// on the cycle stream.
pub(crate) struct EpochRecorder {
    interval: u64,
    next: u64,
    cap: usize,
    taken: Vec<Checkpoint>,
}

/// Default initial epoch interval when the caller passes 0 (auto).
const AUTO_INITIAL_INTERVAL: u64 = 8_192;
/// Checkpoints held before the recorder thins and doubles the interval.
const EPOCH_CAP: usize = 32;

impl EpochRecorder {
    pub(crate) fn new(interval: u64) -> EpochRecorder {
        let interval = if interval == 0 {
            AUTO_INITIAL_INTERVAL
        } else {
            interval
        };
        EpochRecorder {
            interval,
            next: interval,
            cap: EPOCH_CAP,
            taken: Vec::new(),
        }
    }

    /// Captures the pre-run machine (cycle 0, right after install): the
    /// floor checkpoint every injection can fall back to.
    pub(crate) fn epoch_zero(&mut self, sys: &System<Board>) {
        debug_assert_eq!(sys.cycles(), 0, "epoch zero must precede the run");
        self.taken.push(Checkpoint::capture(sys));
    }

    /// Called between steps of the golden run; captures when the next
    /// epoch boundary has been crossed.
    pub(crate) fn observe(&mut self, sys: &System<Board>) {
        if sys.cycles() < self.next {
            return;
        }
        self.taken.push(Checkpoint::capture(sys));
        self.next = self.next.saturating_add(self.interval);
        if self.taken.len() > self.cap {
            self.thin();
        }
    }

    /// Keeps every other checkpoint (the cycle-0 floor always survives at
    /// index 0) and doubles the stride going forward.
    fn thin(&mut self) {
        let mut i = 0;
        self.taken.retain(|_| {
            i += 1;
            (i - 1) % 2 == 0
        });
        self.interval = self.interval.saturating_mul(2);
        let last = self.taken.last().map_or(0, Checkpoint::cycle);
        self.next = last.saturating_add(self.interval);
    }

    /// Finishes the collection into a shareable set.
    pub(crate) fn into_set(self) -> CheckpointSet {
        let set = CheckpointSet::new();
        for ckpt in self.taken {
            set.push(ckpt);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_microarch::MachineConfig;

    fn tiny_sys() -> System<Board> {
        let mut cfg = MachineConfig::cortex_a9_scaled();
        cfg.mem_bytes = 1024 * 1024;
        System::new(cfg, Board::new())
    }

    #[test]
    fn restore_at_picks_nearest_at_or_before() {
        let set = CheckpointSet::new();
        let sys = tiny_sys();
        // Fabricate epochs by capturing the same machine; cycles are all 0,
        // so push distinct cycles via capture-then-step is overkill here —
        // exercise ordering with the real capture path instead.
        set.push(Checkpoint::capture(&sys));
        assert_eq!(set.epochs(), vec![0]);
        assert!(set.restore_at(5).is_some());
        let stats = set.stats();
        assert_eq!(stats.restores, 1);
        assert_eq!(stats.prefix_cycles_saved, 0);
    }

    #[test]
    fn encode_decode_round_trip_and_provenance_rejection() {
        let sys = tiny_sys();
        let ckpt = Checkpoint::capture(&sys);
        let bytes = ckpt.encode(0xAB, 0xCD);
        let back = Checkpoint::decode(&bytes, 0xAB, 0xCD).unwrap();
        assert_eq!(back.cycle(), 0);
        assert!(matches!(
            Checkpoint::decode(&bytes, 0xAB, 0xCE),
            Err(CheckpointError::Provenance {
                field: "golden_hash",
                ..
            })
        ));
        assert!(matches!(
            Checkpoint::decode(&bytes, 0xAC, 0xCD),
            Err(CheckpointError::Provenance {
                field: "config_hash",
                ..
            })
        ));
    }

    #[test]
    fn persist_and_load_dir_round_trip() {
        let dir =
            std::env::temp_dir().join(format!("sea_ckpt_test_{}_{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&dir);
        let set = CheckpointSet::new();
        set.push(Checkpoint::capture(&tiny_sys()));
        assert_eq!(set.persist(&dir, 1, 2).unwrap(), 1);
        let back = CheckpointSet::load_dir(&dir, 1, 2).unwrap();
        assert_eq!(back.epochs(), set.epochs());
        // Wrong provenance rejects the whole directory.
        assert!(CheckpointSet::load_dir(&dir, 1, 3).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorder_thins_and_doubles_past_the_cap() {
        let mut rec = EpochRecorder::new(1);
        let sys = tiny_sys();
        rec.epoch_zero(&sys);
        for _ in 0..100 {
            rec.taken.push(Checkpoint::capture(&sys));
            if rec.taken.len() > rec.cap {
                rec.thin();
            }
        }
        assert!(rec.taken.len() <= rec.cap + 1);
        assert!(rec.interval > 1, "stride must have doubled at least once");
        // The cycle-0 floor survives thinning.
        assert_eq!(rec.taken.first().map(Checkpoint::cycle), Some(0));
    }
}

//! # sea-platform — the Zynq-like board model and run harness
//!
//! This crate plays the role of the paper's physical test infrastructure
//! (§IV-B): the Xilinx ZedBoard peripherals the kernel talks to, plus the
//! host-PC harness that watches "Alive" messages, compares outputs against
//! a golden reference, restarts crashed applications, and classifies every
//! run as Masked / SDC / Application Crash / System Crash.
//!
//! * [`Board`] — the memory-mapped device block (UART, mailbox, timer).
//! * [`run`] / [`RunLimits`] — step the machine to a terminal state.
//! * [`classify`] / [`FaultClass`] — the paper's four effect classes.
//! * [`golden_run`] — fault-free reference execution.
//! * [`golden_run_with_checkpoints`] / [`CheckpointSet`] — epoch
//!   checkpoints of the reference run, restored by injection campaigns to
//!   skip the fault-free prefix (the gem5-checkpoint workflow of the
//!   paper's simulation arm).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod board;
mod checkpoint;
mod profile;
mod run;

pub use board::{Board, DEFAULT_OUTPUT_CAP};
pub use checkpoint::{
    boot_from_checkpoint, snapshot_metrics, Checkpoint, CheckpointError, CheckpointSet,
    CheckpointStats,
};
pub use profile::profiled_golden_run;
pub use run::{
    boot, classify, golden_run, golden_run_with_checkpoints, postmortem, run, watchdog_kills,
    AppCrashKind, ClassCounts, FaultClass, GoldenError, GoldenRun, RunLimits, RunOutcome,
    SysCrashKind,
};

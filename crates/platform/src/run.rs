//! The run harness: boots the machine, watches the board, and classifies
//! each run the way the paper's beam harness does (§IV-B).

use std::fmt;

use sea_isa::Image;
use sea_kernel::{install, BootInfo, InstallError, KernelConfig};
use sea_microarch::{MachineConfig, StepOutcome, System};
use sea_trace::{event, Counter, Level, Subsystem};

use crate::board::Board;
use crate::checkpoint::{CheckpointSet, EpochRecorder};

/// Runs killed by the wall-clock watchdog (process-wide, monotone) — one
/// of the supervisor health counters surfaced on `/metrics` and `/status`.
static WALL_TIMEOUTS: Counter = Counter::new("platform.wall_timeouts");

/// How many runs the wall-clock watchdog has killed in this process.
pub fn watchdog_kills() -> u64 {
    WALL_TIMEOUTS.get()
}

/// Why a run counted as an Application Crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppCrashKind {
    /// The kernel delivered a fatal signal (ESR code attached).
    Signal(u32),
    /// The application stopped making progress while the kernel kept
    /// ticking — the beam harness's "board reachable, app restarted" case.
    Hang,
}

/// Why a run counted as a System Crash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SysCrashKind {
    /// The kernel panicked (ESR code attached).
    Panic(u32),
    /// Kernel tick heartbeats stopped — the "no connection to the board"
    /// case.
    KernelHang,
    /// The core could not reach its exception vectors.
    LockedUp,
    /// The machine executed HALT outside the expected power-off path.
    UnexpectedHalt,
}

/// Terminal state of one run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The application exited; payload is the exit code and output.
    Exited {
        /// Exit code passed to `exit()`.
        code: u32,
        /// Collected output bytes.
        output: Vec<u8>,
        /// Whether output exceeded the cap.
        overflow: bool,
    },
    /// Application crash.
    AppCrash(AppCrashKind),
    /// System crash.
    SysCrash(SysCrashKind),
}

/// The paper's four fault-effect classes (§IV-C).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FaultClass {
    /// No observable effect.
    Masked,
    /// Silent data corruption: wrong output with a normal exit.
    Sdc,
    /// Application crash.
    AppCrash,
    /// System crash.
    SysCrash,
}

impl FaultClass {
    /// All classes in reporting order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Masked,
        FaultClass::Sdc,
        FaultClass::AppCrash,
        FaultClass::SysCrash,
    ];

    /// Parse a class from its display name (used when decoding campaign
    /// journals).
    pub fn from_name(s: &str) -> Option<FaultClass> {
        match s {
            "Masked" => Some(FaultClass::Masked),
            "SDC" => Some(FaultClass::Sdc),
            "AppCrash" => Some(FaultClass::AppCrash),
            "SysCrash" => Some(FaultClass::SysCrash),
            _ => None,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Masked => "Masked",
            FaultClass::Sdc => "SDC",
            FaultClass::AppCrash => "AppCrash",
            FaultClass::SysCrash => "SysCrash",
        })
    }
}

/// Per-class tallies of classified runs.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ClassCounts {
    /// No observable effect.
    pub masked: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Application crashes.
    pub app_crash: u64,
    /// System crashes.
    pub sys_crash: u64,
}

impl ClassCounts {
    /// Adds one observation.
    pub fn add(&mut self, class: FaultClass) {
        match class {
            FaultClass::Masked => self.masked += 1,
            FaultClass::Sdc => self.sdc += 1,
            FaultClass::AppCrash => self.app_crash += 1,
            FaultClass::SysCrash => self.sys_crash += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.masked + self.sdc + self.app_crash + self.sys_crash
    }

    /// Architectural vulnerability factor: fraction of non-masked runs.
    pub fn avf(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.total() - self.masked) as f64 / self.total() as f64
    }

    /// Count in one class.
    pub fn count(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::Masked => self.masked,
            FaultClass::Sdc => self.sdc,
            FaultClass::AppCrash => self.app_crash,
            FaultClass::SysCrash => self.sys_crash,
        }
    }

    /// Fraction of runs in one class.
    pub fn rate(&self, class: FaultClass) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.count(class) as f64 / self.total() as f64
    }
}

/// Classifies a finished run against the golden output.
///
/// Output-overflow handling: an exit with overflowed output whose captured
/// bytes never deviated from the golden stream (one is a prefix of the
/// other) shows *runaway output*, not data corruption — the fault broke the
/// application's control flow, so it counts as an application crash, the
/// same bucket the beam harness uses when it must restart a flooding app.
/// Any byte deviation in the captured output is evidence of corruption and
/// stays SDC.
pub fn classify(outcome: &RunOutcome, golden: &[u8]) -> FaultClass {
    match outcome {
        RunOutcome::Exited {
            code,
            output,
            overflow,
        } => {
            if *code == 0 && !*overflow && output == golden {
                FaultClass::Masked
            } else if *code == 0
                && *overflow
                && (output.starts_with(golden) || golden.starts_with(output))
            {
                FaultClass::AppCrash
            } else {
                FaultClass::Sdc
            }
        }
        RunOutcome::AppCrash(_) => FaultClass::AppCrash,
        RunOutcome::SysCrash(_) => FaultClass::SysCrash,
    }
}

/// Watchdog and budget limits for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunLimits {
    /// Hard cycle budget; exceeding it is a hang.
    pub max_cycles: u64,
    /// If the kernel's tick heartbeat is older than this when the budget
    /// expires (or terminal states never arrive), the kernel is dead.
    pub tick_window: u64,
    /// Wall-clock budget in milliseconds, 0 = disabled. Complements the
    /// cycle budget: a run that burns host time without advancing
    /// simulated cycles fast enough cannot stall a campaign worker
    /// forever. Expiry classifies through the same tick-heartbeat split
    /// as cycle-budget exhaustion.
    pub wall_ms: u64,
}

impl RunLimits {
    /// Limits derived from a golden run: budget = `factor`× golden cycles
    /// (+ slack), tick window = 10 tick periods. Saturates instead of
    /// overflowing for budgets near `u64::MAX`.
    pub fn from_golden(golden_cycles: u64, tick_period: u32) -> RunLimits {
        RunLimits {
            max_cycles: golden_cycles.saturating_mul(3).saturating_add(100_000),
            tick_window: 10 * tick_period as u64,
            wall_ms: 0,
        }
    }

    /// The same limits with a wall-clock budget attached.
    pub fn with_wall_ms(mut self, wall_ms: u64) -> RunLimits {
        self.wall_ms = wall_ms;
        self
    }
}

/// Steps the machine until a terminal condition and returns the outcome.
///
/// Terminal conditions, in priority order: kernel panic, fatal signal,
/// application exit, vector lock-up, unexpected halt, cycle budget
/// exhaustion (split into app-hang vs kernel-hang by the tick heartbeat).
pub fn run(sys: &mut System<Board>, limits: RunLimits) -> RunOutcome {
    run_with_epochs(sys, limits, None)
}

/// [`run`] with an optional epoch-checkpoint recorder riding along (the
/// golden run uses this; injected runs never checkpoint).
fn run_with_epochs(
    sys: &mut System<Board>,
    limits: RunLimits,
    epochs: Option<&mut EpochRecorder>,
) -> RunOutcome {
    let outcome = run_inner(sys, limits, epochs);
    event!(Subsystem::Platform, Level::Info, "platform.run_end";
           cycle = sys.cycles();
           "outcome" => outcome_name(&outcome),
           "ticks" => sys.dev.tick_count(),
           "output_bytes" => sys.dev.output().len());
    outcome
}

/// Short stable name of a terminal state (used in trace records).
fn outcome_name(outcome: &RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Exited { .. } => "exited",
        RunOutcome::AppCrash(AppCrashKind::Signal(_)) => "signal",
        RunOutcome::AppCrash(AppCrashKind::Hang) => "hang",
        RunOutcome::SysCrash(SysCrashKind::Panic(_)) => "panic",
        RunOutcome::SysCrash(SysCrashKind::KernelHang) => "kernel_hang",
        RunOutcome::SysCrash(SysCrashKind::LockedUp) => "locked_up",
        RunOutcome::SysCrash(SysCrashKind::UnexpectedHalt) => "unexpected_halt",
    }
}

/// Budget-expiry classification: the kernel tick heartbeat decides
/// app-hang vs kernel-hang, exactly like the beam harness's "board
/// reachable?" check.
fn hang_outcome(sys: &System<Board>, limits: RunLimits, now: u64) -> RunOutcome {
    let kernel_alive =
        sys.dev.tick_count() > 0 && now.saturating_sub(sys.dev.last_tick()) <= limits.tick_window;
    if kernel_alive {
        RunOutcome::AppCrash(AppCrashKind::Hang)
    } else {
        RunOutcome::SysCrash(SysCrashKind::KernelHang)
    }
}

fn run_inner(
    sys: &mut System<Board>,
    limits: RunLimits,
    mut epochs: Option<&mut EpochRecorder>,
) -> RunOutcome {
    let deadline = (limits.wall_ms > 0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_millis(limits.wall_ms));
    let mut steps = 0u32;
    loop {
        let step = sys.step();
        let now = sys.cycles();
        if let Some(code) = sys.dev.panic_code() {
            return RunOutcome::SysCrash(SysCrashKind::Panic(code));
        }
        if let Some(code) = sys.dev.signal_code() {
            return RunOutcome::AppCrash(AppCrashKind::Signal(code));
        }
        if let Some(code) = sys.dev.exit_code() {
            return RunOutcome::Exited {
                code,
                output: sys.dev.output().to_vec(),
                overflow: sys.dev.output_overflowed(),
            };
        }
        match step {
            StepOutcome::LockedUp => return RunOutcome::SysCrash(SysCrashKind::LockedUp),
            StepOutcome::Halted => return RunOutcome::SysCrash(SysCrashKind::UnexpectedHalt),
            StepOutcome::Executed => {}
        }
        if now > limits.max_cycles {
            return hang_outcome(sys, limits, now);
        }
        // Epoch checkpoints are only captured on clean, non-terminal cycle
        // boundaries — a checkpoint of a machine that is about to be
        // declared dead would be useless to restore.
        if let Some(rec) = epochs.as_deref_mut() {
            rec.observe(sys);
        }
        // The wall-clock watchdog only needs coarse resolution; polling
        // the host clock every step would dominate the simulator loop.
        steps = steps.wrapping_add(1);
        if steps & 0x1fff == 0 {
            if let Some(d) = deadline {
                if std::time::Instant::now() >= d {
                    WALL_TIMEOUTS.inc();
                    event!(Subsystem::Platform, Level::Warn, "platform.wall_timeout";
                           cycle = now;
                           "wall_ms" => limits.wall_ms);
                    return hang_outcome(sys, limits, now);
                }
            }
        }
    }
}

/// Builds a machine, installs the kernel and `user`, and returns it ready
/// to run (CPU at the reset vector).
///
/// # Errors
///
/// Propagates [`InstallError`] from the loader.
pub fn boot(
    machine: MachineConfig,
    user: &Image,
    kernel: &KernelConfig,
) -> Result<(System<Board>, BootInfo), InstallError> {
    let mut sys = System::new(machine, Board::new());
    let info = install(&mut sys, user, kernel)?;
    Ok((sys, info))
}

/// Result of a fault-free reference execution.
#[derive(Clone, Debug)]
pub struct GoldenRun {
    /// The reference output.
    pub output: Vec<u8>,
    /// Exit code (must be 0 for a usable golden run).
    pub exit_code: u32,
    /// Total cycles to completion.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Full performance-counter snapshot.
    pub counters: sea_microarch::Counters,
    /// Boot information (heap placement etc.).
    pub boot: BootInfo,
}

/// Errors from a golden (fault-free) run.
#[derive(Clone, Debug)]
pub enum GoldenError {
    /// Install failed.
    Install(InstallError),
    /// The fault-free run did not exit cleanly — the workload is broken.
    NotClean(RunOutcome),
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Install(e) => write!(f, "install failed: {e}"),
            GoldenError::NotClean(o) => write!(f, "golden run did not exit cleanly: {o:?}"),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Runs `user` fault-free to completion and captures the reference data
/// every campaign compares against.
///
/// ```no_run
/// use sea_platform::golden_run;
/// use sea_kernel::KernelConfig;
/// use sea_microarch::MachineConfig;
/// # fn image() -> sea_isa::Image { unimplemented!() }
///
/// # fn main() -> Result<(), sea_platform::GoldenError> {
/// let g = golden_run(MachineConfig::cortex_a9(), &image(), &KernelConfig::default(), 50_000_000)?;
/// println!("{} cycles, {} output bytes", g.cycles, g.output.len());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Fails if the program cannot be installed or does not exit cleanly
/// within `budget_cycles`.
pub fn golden_run(
    machine: MachineConfig,
    user: &Image,
    kernel: &KernelConfig,
    budget_cycles: u64,
) -> Result<GoldenRun, GoldenError> {
    golden_run_observed(machine, user, kernel, budget_cycles, None)
}

/// [`golden_run`] that additionally captures epoch checkpoints while the
/// reference execution runs, for prefix-sharing injection campaigns.
///
/// `interval` is the initial epoch stride in cycles (0 = auto). The stride
/// adapts to the run's actual length, so the set stays small whatever the
/// workload. The returned [`GoldenRun`] is computed by the *same* code
/// path as [`golden_run`] — checkpointing cannot change the reference.
///
/// # Errors
///
/// Same failure modes as [`golden_run`].
pub fn golden_run_with_checkpoints(
    machine: MachineConfig,
    user: &Image,
    kernel: &KernelConfig,
    budget_cycles: u64,
    interval: u64,
) -> Result<(GoldenRun, CheckpointSet), GoldenError> {
    let mut rec = EpochRecorder::new(interval);
    let golden = golden_run_observed(machine, user, kernel, budget_cycles, Some(&mut rec))?;
    Ok((golden, rec.into_set()))
}

fn golden_run_observed(
    machine: MachineConfig,
    user: &Image,
    kernel: &KernelConfig,
    budget_cycles: u64,
    mut epochs: Option<&mut EpochRecorder>,
) -> Result<GoldenRun, GoldenError> {
    let (mut sys, boot) = boot(machine, user, kernel).map_err(GoldenError::Install)?;
    if let Some(rec) = epochs.as_deref_mut() {
        // The post-install, pre-run machine: the floor checkpoint every
        // injection cycle can fall back to.
        rec.epoch_zero(&sys);
    }
    let limits = RunLimits {
        max_cycles: budget_cycles,
        tick_window: u64::MAX,
        wall_ms: 0,
    };
    let span = sea_trace::span(Subsystem::Platform, Level::Info, "platform.golden");
    match run_with_epochs(&mut sys, limits, epochs) {
        RunOutcome::Exited {
            code: 0,
            output,
            overflow: false,
        } => {
            if let Some(mut s) = span {
                s.field("cycles", sys.cycles());
                s.field("instructions", sys.cpu.counters.instructions);
                s.field("output_bytes", output.len());
            }
            Ok(GoldenRun {
                output,
                exit_code: 0,
                cycles: sys.cycles(),
                instructions: sys.cpu.counters.instructions,
                counters: sys.cpu.counters,
                boot,
            })
        }
        other => Err(GoldenError::NotClean(other)),
    }
}

/// Renders a post-mortem report of a stopped machine: core state, fault
/// registers, board observations, and (when tracing is enabled) the final
/// PCs — the view an engineer gets from a debugger after a beam crash.
pub fn postmortem(sys: &System<Board>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let cpu = &sys.cpu;
    let _ = writeln!(out, "== postmortem ==");
    let _ = writeln!(
        out,
        "pc={:#010x} mode={:?} elr={:#010x} esr={:#010x} far={:#010x}",
        cpu.pc, cpu.cpsr.mode, cpu.elr, cpu.esr, cpu.far
    );
    let _ = writeln!(
        out,
        "cycles={} instructions={} ticks={} alive={} last_tick@{}",
        cpu.counters.cycles,
        cpu.counters.instructions,
        sys.dev.tick_count(),
        sys.dev.alive_count(),
        sys.dev.last_tick()
    );
    let _ = writeln!(
        out,
        "exit={:?} signal={:?} panic={:?} output_bytes={}",
        sys.dev.exit_code(),
        sys.dev.signal_code(),
        sys.dev.panic_code(),
        sys.dev.output().len()
    );
    let trace = cpu.trace();
    if !trace.is_empty() {
        let _ = write!(out, "trace:");
        for pc in trace {
            let _ = write!(out, " {pc:#x}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_golden_saturates_instead_of_overflowing() {
        // Small budgets behave exactly as before.
        let l = RunLimits::from_golden(1_000_000, 20_000);
        assert_eq!(l.max_cycles, 3_100_000);
        assert_eq!(l.tick_window, 200_000);
        assert_eq!(l.wall_ms, 0);
        // The boundary: golden_cycles * 3 would overflow u64.
        let boundary = u64::MAX / 3;
        assert_eq!(RunLimits::from_golden(boundary + 1, 1).max_cycles, u64::MAX);
        // Exactly at the multiplication limit, the +100_000 slack saturates.
        assert_eq!(RunLimits::from_golden(boundary, 1).max_cycles, u64::MAX);
        assert_eq!(RunLimits::from_golden(u64::MAX, 1).max_cycles, u64::MAX);
    }

    #[test]
    fn with_wall_ms_sets_only_the_wall_budget() {
        let l = RunLimits::from_golden(500, 10).with_wall_ms(2_000);
        assert_eq!(l.wall_ms, 2_000);
        assert_eq!(l.max_cycles, 101_500);
    }

    #[test]
    fn fault_class_names_round_trip() {
        for c in FaultClass::ALL {
            assert_eq!(FaultClass::from_name(&c.to_string()), Some(c));
        }
        assert_eq!(FaultClass::from_name("Sdc"), None);
    }
}

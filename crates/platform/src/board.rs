//! The Zynq-like board model.
//!
//! [`Board`] implements the machine's memory-mapped device block: UART,
//! the mailbox the kernel reports through (output bytes, alive pings, exit/
//! signal/panic codes, tick heartbeat) and the timer that drives the
//! kernel's scheduler tick. It is the simulation-side equivalent of the
//! paper's host PC + serial/ethernet harness (§IV-B): everything the beam
//! operators could observe about a run is observable here.

use sea_isa::MemSize;
use sea_kernel::mmio;
use sea_microarch::Device;
use sea_snapshot::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Default cap on collected application output (bytes). A corrupted
/// program spewing output past this mark is recorded as an overflow and the
/// surplus discarded, like a full log disk at the beam site.
pub const DEFAULT_OUTPUT_CAP: usize = 1 << 20;

/// The board's device block and observation state.
#[derive(Clone, Debug)]
pub struct Board {
    now: u64,
    // UART console (kernel debug channel).
    uart: Vec<u8>,
    // Application output channel (compared against the golden output).
    out: Vec<u8>,
    out_cap: usize,
    out_overflow: bool,
    // Heartbeats.
    alive_count: u64,
    last_alive: u64,
    tick_count: u64,
    last_tick: u64,
    // Terminal reports.
    exit_code: Option<u32>,
    signal_code: Option<u32>,
    panic_code: Option<u32>,
    // Timer device.
    timer_period: u32,
    timer_enabled: bool,
    timer_next: u64,
    irq_pending: bool,
}

impl Board {
    /// A fresh board with the default output cap.
    pub fn new() -> Board {
        Board::with_output_cap(DEFAULT_OUTPUT_CAP)
    }

    /// A fresh board with a custom output cap.
    pub fn with_output_cap(out_cap: usize) -> Board {
        Board {
            now: 0,
            uart: Vec::new(),
            out: Vec::new(),
            out_cap,
            out_overflow: false,
            alive_count: 0,
            last_alive: 0,
            tick_count: 0,
            last_tick: 0,
            exit_code: None,
            signal_code: None,
            panic_code: None,
            timer_period: 0,
            timer_enabled: false,
            timer_next: u64::MAX,
            irq_pending: false,
        }
    }

    /// Application output collected so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// True if the application wrote more than the cap.
    pub fn output_overflowed(&self) -> bool {
        self.out_overflow
    }

    /// UART console bytes.
    pub fn console(&self) -> &[u8] {
        &self.uart
    }

    /// Exit code reported via `MBOX_EXIT`, if any.
    pub fn exit_code(&self) -> Option<u32> {
        self.exit_code
    }

    /// Fatal-signal code reported via `MBOX_SIGNAL`, if any.
    pub fn signal_code(&self) -> Option<u32> {
        self.signal_code
    }

    /// Kernel-panic code reported via `MBOX_PANIC`, if any.
    pub fn panic_code(&self) -> Option<u32> {
        self.panic_code
    }

    /// Number of alive pings received.
    pub fn alive_count(&self) -> u64 {
        self.alive_count
    }

    /// Cycle of the most recent kernel tick heartbeat.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Number of kernel ticks observed.
    pub fn tick_count(&self) -> u64 {
        self.tick_count
    }

    /// Cycle of the most recent alive ping.
    pub fn last_alive(&self) -> u64 {
        self.last_alive
    }
}

impl Default for Board {
    fn default() -> Self {
        Board::new()
    }
}

fn save_opt_u32(w: &mut SnapWriter, v: Option<u32>) {
    w.bool(v.is_some());
    w.u32(v.unwrap_or(0));
}

fn load_opt_u32(r: &mut SnapReader<'_>) -> Result<Option<u32>, SnapError> {
    let present = r.bool()?;
    let v = r.u32()?;
    Ok(present.then_some(v))
}

impl Snapshot for Board {
    /// Captures the complete device block: console/output buffers, the
    /// heartbeat and terminal-report mailboxes, and the timer comparator.
    /// A restored board must deliver the next timer interrupt at exactly
    /// the cycle the original would have, or restored runs diverge from
    /// from-reset runs at the first scheduler tick.
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"BRD ");
        w.u64(self.now);
        w.bytes(&self.uart);
        w.bytes(&self.out);
        w.u64(self.out_cap as u64);
        w.bool(self.out_overflow);
        w.u64(self.alive_count);
        w.u64(self.last_alive);
        w.u64(self.tick_count);
        w.u64(self.last_tick);
        save_opt_u32(w, self.exit_code);
        save_opt_u32(w, self.signal_code);
        save_opt_u32(w, self.panic_code);
        w.u32(self.timer_period);
        w.bool(self.timer_enabled);
        w.u64(self.timer_next);
        w.bool(self.irq_pending);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Board, SnapError> {
        r.tag(*b"BRD ")?;
        Ok(Board {
            now: r.u64()?,
            uart: r.bytes()?.to_vec(),
            out: r.bytes()?.to_vec(),
            out_cap: r.u64()? as usize,
            out_overflow: r.bool()?,
            alive_count: r.u64()?,
            last_alive: r.u64()?,
            tick_count: r.u64()?,
            last_tick: r.u64()?,
            exit_code: load_opt_u32(r)?,
            signal_code: load_opt_u32(r)?,
            panic_code: load_opt_u32(r)?,
            timer_period: r.u32()?,
            timer_enabled: r.bool()?,
            timer_next: r.u64()?,
            irq_pending: r.bool()?,
        })
    }
}

impl Device for Board {
    fn read(&mut self, offset: u32, _size: MemSize) -> u32 {
        match offset {
            mmio::MBOX_EXIT => self.exit_code.unwrap_or(0),
            mmio::MBOX_TICK => self.tick_count as u32,
            mmio::TIMER_PERIOD => self.timer_period,
            mmio::TIMER_CTRL => self.timer_enabled as u32,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _size: MemSize, value: u32) {
        match offset {
            mmio::UART_TX => self.uart.push(value as u8),
            mmio::MBOX_OUT => {
                if self.out.len() < self.out_cap {
                    self.out.push(value as u8);
                } else {
                    self.out_overflow = true;
                }
            }
            mmio::MBOX_ALIVE => {
                self.alive_count += 1;
                self.last_alive = self.now;
            }
            mmio::MBOX_EXIT => self.exit_code = Some(value),
            mmio::MBOX_SIGNAL => self.signal_code = Some(value),
            mmio::MBOX_PANIC => self.panic_code = Some(value),
            mmio::MBOX_TICK => {
                self.tick_count += 1;
                self.last_tick = self.now;
            }
            mmio::TIMER_PERIOD => self.timer_period = value,
            mmio::TIMER_CTRL => {
                self.timer_enabled = value & 1 != 0;
                if self.timer_enabled && self.timer_period > 0 {
                    self.timer_next = self.now + self.timer_period as u64;
                } else {
                    self.timer_next = u64::MAX;
                }
            }
            mmio::TIMER_ACK => self.irq_pending = false,
            _ => {} // writes to unimplemented registers are ignored
        }
    }

    fn poll_irq(&mut self, now: u64) -> bool {
        self.now = now;
        if self.timer_enabled && !self.irq_pending && now >= self.timer_next {
            self.irq_pending = true;
            // Catch up so a long stall doesn't queue a burst of ticks.
            while self.timer_next <= now {
                self.timer_next += self.timer_period.max(1) as u64;
            }
        }
        self.irq_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_after_period_and_ack_clears() {
        let mut b = Board::new();
        b.write(mmio::TIMER_PERIOD, MemSize::Word, 100);
        b.write(mmio::TIMER_CTRL, MemSize::Word, 1);
        assert!(!b.poll_irq(50));
        assert!(b.poll_irq(100));
        assert!(b.poll_irq(120)); // level-triggered until acked
        b.write(mmio::TIMER_ACK, MemSize::Word, 0);
        assert!(!b.poll_irq(150));
        assert!(b.poll_irq(200));
    }

    #[test]
    fn output_cap_flags_overflow() {
        let mut b = Board::with_output_cap(2);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'a' as u32);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'b' as u32);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'c' as u32);
        assert_eq!(b.output(), b"ab");
        assert!(b.output_overflowed());
    }

    #[test]
    fn snapshot_round_trip_preserves_timer_phase() {
        let mut b = Board::with_output_cap(8);
        b.write(mmio::UART_TX, MemSize::Byte, b'k' as u32);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'x' as u32);
        b.write(mmio::TIMER_PERIOD, MemSize::Word, 100);
        b.write(mmio::TIMER_CTRL, MemSize::Word, 1);
        b.poll_irq(30); // timer armed at cycle 0, next fire at 100
        let mut w = SnapWriter::new();
        b.save(&mut w);
        let buf = w.into_bytes();
        let mut back = Board::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.output(), b"x");
        assert_eq!(back.console(), b"k");
        // The restored timer fires at exactly the original comparator value.
        assert!(!back.poll_irq(99));
        assert!(back.poll_irq(100));
        // Re-saving reproduces the stream (the restored original, still
        // un-fired, must match what was saved).
        let mut w2 = SnapWriter::new();
        Board::load(&mut SnapReader::new(&buf))
            .unwrap()
            .save(&mut w2);
        assert_eq!(w2.into_bytes(), buf);
    }

    #[test]
    fn heartbeats_record_cycles() {
        let mut b = Board::new();
        b.poll_irq(500);
        b.write(mmio::MBOX_TICK, MemSize::Word, 1);
        b.write(mmio::MBOX_ALIVE, MemSize::Word, 0);
        assert_eq!(b.last_tick(), 500);
        assert_eq!(b.last_alive(), 500);
        assert_eq!(b.tick_count(), 1);
        assert_eq!(b.alive_count(), 1);
    }
}

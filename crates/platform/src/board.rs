//! The Zynq-like board model.
//!
//! [`Board`] implements the machine's memory-mapped device block: UART,
//! the mailbox the kernel reports through (output bytes, alive pings, exit/
//! signal/panic codes, tick heartbeat) and the timer that drives the
//! kernel's scheduler tick. It is the simulation-side equivalent of the
//! paper's host PC + serial/ethernet harness (§IV-B): everything the beam
//! operators could observe about a run is observable here.

use sea_isa::MemSize;
use sea_kernel::mmio;
use sea_microarch::Device;

/// Default cap on collected application output (bytes). A corrupted
/// program spewing output past this mark is recorded as an overflow and the
/// surplus discarded, like a full log disk at the beam site.
pub const DEFAULT_OUTPUT_CAP: usize = 1 << 20;

/// The board's device block and observation state.
#[derive(Clone, Debug)]
pub struct Board {
    now: u64,
    // UART console (kernel debug channel).
    uart: Vec<u8>,
    // Application output channel (compared against the golden output).
    out: Vec<u8>,
    out_cap: usize,
    out_overflow: bool,
    // Heartbeats.
    alive_count: u64,
    last_alive: u64,
    tick_count: u64,
    last_tick: u64,
    // Terminal reports.
    exit_code: Option<u32>,
    signal_code: Option<u32>,
    panic_code: Option<u32>,
    // Timer device.
    timer_period: u32,
    timer_enabled: bool,
    timer_next: u64,
    irq_pending: bool,
}

impl Board {
    /// A fresh board with the default output cap.
    pub fn new() -> Board {
        Board::with_output_cap(DEFAULT_OUTPUT_CAP)
    }

    /// A fresh board with a custom output cap.
    pub fn with_output_cap(out_cap: usize) -> Board {
        Board {
            now: 0,
            uart: Vec::new(),
            out: Vec::new(),
            out_cap,
            out_overflow: false,
            alive_count: 0,
            last_alive: 0,
            tick_count: 0,
            last_tick: 0,
            exit_code: None,
            signal_code: None,
            panic_code: None,
            timer_period: 0,
            timer_enabled: false,
            timer_next: u64::MAX,
            irq_pending: false,
        }
    }

    /// Application output collected so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// True if the application wrote more than the cap.
    pub fn output_overflowed(&self) -> bool {
        self.out_overflow
    }

    /// UART console bytes.
    pub fn console(&self) -> &[u8] {
        &self.uart
    }

    /// Exit code reported via `MBOX_EXIT`, if any.
    pub fn exit_code(&self) -> Option<u32> {
        self.exit_code
    }

    /// Fatal-signal code reported via `MBOX_SIGNAL`, if any.
    pub fn signal_code(&self) -> Option<u32> {
        self.signal_code
    }

    /// Kernel-panic code reported via `MBOX_PANIC`, if any.
    pub fn panic_code(&self) -> Option<u32> {
        self.panic_code
    }

    /// Number of alive pings received.
    pub fn alive_count(&self) -> u64 {
        self.alive_count
    }

    /// Cycle of the most recent kernel tick heartbeat.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Number of kernel ticks observed.
    pub fn tick_count(&self) -> u64 {
        self.tick_count
    }

    /// Cycle of the most recent alive ping.
    pub fn last_alive(&self) -> u64 {
        self.last_alive
    }
}

impl Default for Board {
    fn default() -> Self {
        Board::new()
    }
}

impl Device for Board {
    fn read(&mut self, offset: u32, _size: MemSize) -> u32 {
        match offset {
            mmio::MBOX_EXIT => self.exit_code.unwrap_or(0),
            mmio::MBOX_TICK => self.tick_count as u32,
            mmio::TIMER_PERIOD => self.timer_period,
            mmio::TIMER_CTRL => self.timer_enabled as u32,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u32, _size: MemSize, value: u32) {
        match offset {
            mmio::UART_TX => self.uart.push(value as u8),
            mmio::MBOX_OUT => {
                if self.out.len() < self.out_cap {
                    self.out.push(value as u8);
                } else {
                    self.out_overflow = true;
                }
            }
            mmio::MBOX_ALIVE => {
                self.alive_count += 1;
                self.last_alive = self.now;
            }
            mmio::MBOX_EXIT => self.exit_code = Some(value),
            mmio::MBOX_SIGNAL => self.signal_code = Some(value),
            mmio::MBOX_PANIC => self.panic_code = Some(value),
            mmio::MBOX_TICK => {
                self.tick_count += 1;
                self.last_tick = self.now;
            }
            mmio::TIMER_PERIOD => self.timer_period = value,
            mmio::TIMER_CTRL => {
                self.timer_enabled = value & 1 != 0;
                if self.timer_enabled && self.timer_period > 0 {
                    self.timer_next = self.now + self.timer_period as u64;
                } else {
                    self.timer_next = u64::MAX;
                }
            }
            mmio::TIMER_ACK => self.irq_pending = false,
            _ => {} // writes to unimplemented registers are ignored
        }
    }

    fn poll_irq(&mut self, now: u64) -> bool {
        self.now = now;
        if self.timer_enabled && !self.irq_pending && now >= self.timer_next {
            self.irq_pending = true;
            // Catch up so a long stall doesn't queue a burst of ticks.
            while self.timer_next <= now {
                self.timer_next += self.timer_period.max(1) as u64;
            }
        }
        self.irq_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_fires_after_period_and_ack_clears() {
        let mut b = Board::new();
        b.write(mmio::TIMER_PERIOD, MemSize::Word, 100);
        b.write(mmio::TIMER_CTRL, MemSize::Word, 1);
        assert!(!b.poll_irq(50));
        assert!(b.poll_irq(100));
        assert!(b.poll_irq(120)); // level-triggered until acked
        b.write(mmio::TIMER_ACK, MemSize::Word, 0);
        assert!(!b.poll_irq(150));
        assert!(b.poll_irq(200));
    }

    #[test]
    fn output_cap_flags_overflow() {
        let mut b = Board::with_output_cap(2);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'a' as u32);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'b' as u32);
        b.write(mmio::MBOX_OUT, MemSize::Byte, b'c' as u32);
        assert_eq!(b.output(), b"ab");
        assert!(b.output_overflowed());
    }

    #[test]
    fn heartbeats_record_cycles() {
        let mut b = Board::new();
        b.poll_irq(500);
        b.write(mmio::MBOX_TICK, MemSize::Word, 1);
        b.write(mmio::MBOX_ALIVE, MemSize::Word, 0);
        assert_eq!(b.last_tick(), 500);
        assert_eq!(b.last_alive(), 500);
        assert_eq!(b.tick_count(), 1);
        assert_eq!(b.alive_count(), 1);
    }
}

//! Post-hoc convergence curves: error margin vs. sample count.
//!
//! The live counterpart of this view is `sea-injection`'s
//! `ConvergenceTracker` (served at `/status` while a campaign runs); this
//! module replays a *finished* campaign's outcome sequence and reports the
//! adjusted 99%-confidence error margin (§IV-C, Table IV) the campaign
//! had reached at doubling sample-count checkpoints — 1, 2, 4, … — per
//! component. The curve answers the planning question behind
//! `--stop-at-margin`: how many of the samples actually moved the margin,
//! and where the knee is.

use sea_injection::stats::{adjusted_error_margin, Z_99};
use sea_injection::{CampaignResult, ComponentResult};
use std::fmt::Write as _;

use crate::report::bar;

/// One checkpoint on a component's convergence curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergencePoint {
    /// Samples drawn so far (prefix length of the outcome sequence).
    pub samples: u64,
    /// Non-masked fraction over those samples.
    pub avf: f64,
    /// Adjusted 99%-confidence error margin at this point, capped at 1.0
    /// (a margin is a bound on a proportion).
    pub margin: f64,
}

/// The margin checkpoints for one component: every doubling of the sample
/// count (1, 2, 4, …) plus the final count. Outcomes are replayed in
/// spec-index order, the same order the live tracker saw them.
pub fn convergence_curve(r: &ComponentResult) -> Vec<ConvergencePoint> {
    let total = r.outcomes.len() as u64;
    let mut points = Vec::new();
    let mut faulty = 0u64;
    let mut next = 1u64;
    for (k, o) in r.outcomes.iter().enumerate() {
        let n = k as u64 + 1;
        if o.class != sea_platform::FaultClass::Masked {
            faulty += 1;
        }
        if n == next || n == total {
            let avf = faulty as f64 / n as f64;
            points.push(ConvergencePoint {
                samples: n,
                avf,
                margin: adjusted_error_margin(r.bits, n, Z_99, avf).min(1.0),
            });
            while next <= n {
                next *= 2;
            }
        }
    }
    points
}

/// Renders the convergence curves of a finished campaign, one block per
/// component, with a bar per checkpoint (bar length ∝ margin).
pub fn render_convergence(campaign: &CampaignResult) -> String {
    let mut out = format!(
        "convergence — {} (adjusted 99%-confidence margins at doubling checkpoints)\n",
        campaign.workload
    );
    for r in &campaign.per_component {
        let _ = writeln!(
            out,
            "\n  {} ({} samples over {} bits)",
            r.component.short_name(),
            r.outcomes.len(),
            r.bits
        );
        let points = convergence_curve(r);
        if points.is_empty() {
            out.push_str("    (no samples)\n");
            continue;
        }
        for p in &points {
            let _ = writeln!(
                out,
                "    n={:<6} AVF {:5.3}  ±{:6.4} |{:<30}|",
                p.samples,
                p.avf,
                p.margin,
                bar(p.margin, 1.0, 30),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_injection::{InjectionOutcome, InjectionSpec};
    use sea_microarch::{ArrayKind, Component};
    use sea_platform::{ClassCounts, FaultClass};

    fn component_result(classes: &[FaultClass]) -> ComponentResult {
        let mut counts = ClassCounts::default();
        let outcomes = classes
            .iter()
            .enumerate()
            .map(|(i, &class)| {
                counts.add(class);
                InjectionOutcome {
                    spec: InjectionSpec {
                        component: Component::RegFile,
                        bit: i as u64,
                        cycle: i as u64,
                    },
                    array: ArrayKind::Data,
                    was_valid: true,
                    class,
                }
            })
            .collect();
        ComponentResult {
            component: Component::RegFile,
            bits: 1 << 20,
            counts,
            tag_counts: ClassCounts::default(),
            outcomes,
        }
    }

    #[test]
    fn curve_hits_doubling_checkpoints_and_the_final_count() {
        let classes: Vec<FaultClass> = (0..100)
            .map(|i| {
                if i % 5 == 0 {
                    FaultClass::Sdc
                } else {
                    FaultClass::Masked
                }
            })
            .collect();
        let points = convergence_curve(&component_result(&classes));
        let ns: Vec<u64> = points.iter().map(|p| p.samples).collect();
        assert_eq!(ns, vec![1, 2, 4, 8, 16, 32, 64, 100]);
        // The margin narrows as samples accumulate (a much weaker claim
        // than strict monotonicity, which the adjusted margin does not
        // promise point-to-point).
        let first = points.first().expect("points").margin;
        let last = points.last().expect("points").margin;
        assert!(last < first, "margin did not narrow: {first} -> {last}");
        assert!((points.last().expect("points").avf - 0.2).abs() < 1e-12);
    }

    #[test]
    fn render_names_components_and_draws_bars() {
        let campaign = CampaignResult {
            workload: "Synthetic".to_string(),
            golden_cycles: 1000,
            per_component: vec![component_result(&[
                FaultClass::Masked,
                FaultClass::Sdc,
                FaultClass::Masked,
            ])],
            anomalies: Vec::new(),
            supervision: Default::default(),
            checkpoints: None,
            journal: None,
        };
        let out = render_convergence(&campaign);
        assert!(out.contains("Synthetic"), "{out}");
        assert!(out.contains("RF"), "{out}");
        assert!(out.contains("n=1"), "{out}");
        assert!(out.contains("n=3"), "{out}");
    }

    #[test]
    fn empty_component_renders_a_placeholder() {
        let campaign = CampaignResult {
            workload: "Empty".to_string(),
            golden_cycles: 0,
            per_component: vec![component_result(&[])],
            anomalies: Vec::new(),
            supervision: Default::default(),
            checkpoints: None,
            journal: None,
        };
        assert!(render_convergence(&campaign).contains("(no samples)"));
    }
}

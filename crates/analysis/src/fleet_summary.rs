//! One-screen rendering of a fleet daemon's study status document.
//!
//! The daemon's `/studies/<id>` JSON (see `sea-fleet`) carries suite
//! progress, the active workload's live convergence strata and a
//! per-worker telemetry array. This module turns that document into the
//! aligned ASCII block the `fleet submit --watch` loop and the
//! convergence watcher print — so the human-facing view of a fleet
//! matches the in-process campaign's status rendering.

use crate::report::bar;
use sea_trace::json::Json;
use std::fmt::Write as _;

fn s<'a>(j: &'a Json, key: &str) -> &'a str {
    j.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn f(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64).filter(|v| v.is_finite())
}

fn arr<'a>(j: &'a Json, key: &str) -> &'a [Json] {
    match j.get(key) {
        Some(Json::Arr(items)) => items,
        _ => &[],
    }
}

/// Render a fleet study status document as an aligned multi-line block:
/// study header, per-workload suite rows, the active workload's progress
/// and margin, a per-worker table and the live strata margins. Unknown or
/// missing members degrade to omitted lines, so the renderer works
/// against any daemon version that serves a `state` member.
pub fn fleet_summary(doc: &Json) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "study {} — {}", s(doc, "id"), s(doc, "state"));

    for row in arr(doc, "suite") {
        let (done, total) = (u(row, "done"), u(row, "total"));
        let merged = matches!(row.get("merged"), Some(Json::Bool(true)));
        let _ = writeln!(
            out,
            "  {:<10} {:>6}/{:<6} |{}| {}",
            s(row, "workload"),
            done,
            total,
            bar(done as f64, total.max(1) as f64, 24),
            if merged { "merged" } else { "sharded" }
        );
    }

    if let Some(active) = doc.get("active").filter(|a| !matches!(a, Json::Null)) {
        let _ = write!(
            out,
            "  active: {} ({}/{} done, {} outstanding",
            s(active, "workload"),
            u(active, "done"),
            u(active, "total"),
            u(active, "outstanding"),
        );
        if let Some(m) = f(active, "margin_adjusted") {
            let _ = write!(out, ", margin {m:.4}");
        }
        if matches!(active.get("margin_stopped"), Some(Json::Bool(true))) {
            out.push_str(", margin-stopped");
        }
        out.push_str(")\n");
        let strata = arr(active, "strata");
        if !strata.is_empty() {
            out.push_str("  stratum            n      AVF   margin(adj)\n");
            for st in strata {
                let _ = writeln!(
                    out,
                    "    {:<14} {:>6}   {:>6.4}   {:>9.4}",
                    s(st, "label"),
                    u(st, "samples"),
                    f(st, "avf").unwrap_or(0.0),
                    f(st, "margin_adjusted").unwrap_or(1.0),
                );
            }
        }
    }
    match (f(doc, "rate_per_sec"), f(doc, "eta_sec")) {
        (Some(rate), Some(eta)) if rate > 0.0 => {
            let _ = writeln!(out, "  fleet rate {rate:.1} runs/s, eta {eta:.0}s");
        }
        (Some(rate), None) if rate > 0.0 => {
            let _ = writeln!(out, "  fleet rate {rate:.1} runs/s");
        }
        _ => {}
    }

    let workers = arr(doc, "workers");
    if !workers.is_empty() {
        out.push_str("  worker   state      tier         runs   lag(ms)   rate/s\n");
        for w in workers {
            // Older daemons omit `tier`; those workers ran detailed-only.
            let tier = w.get("tier").and_then(Json::as_str).unwrap_or("detailed");
            let _ = writeln!(
                out,
                "    {:<6} {:<9} {:<9} {:>6}   {:>7}   {:>6.1}",
                u(w, "shard"),
                s(w, "state"),
                tier,
                u(w, "runs"),
                u(w, "lag_ms"),
                f(w, "rate_per_sec").unwrap_or(0.0),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_trace::json;

    #[test]
    fn renders_every_section_of_a_live_study_doc() {
        let doc = json::parse(
            r#"{"id":"abc123","state":"running",
                "suite":[{"workload":"crc32","total":240,"done":105,"merged":false}],
                "active":{"workload":"crc32","total":240,"done":105,"outstanding":8,
                          "margin_adjusted":0.41,"margin_stopped":false,
                          "strata":[{"label":"l1d","samples":20,"avf":0.2,
                                     "margin_adjusted":0.31}]},
                "rate_per_sec":12.5,"eta_sec":10.8,
                "workers":[{"shard":0,"state":"alive","tier":"warp","runs":60,
                            "lag_ms":40,"rate_per_sec":6.0},
                           {"shard":1,"state":"dead","runs":45,"lag_ms":900,
                            "rate_per_sec":0.0}]}"#,
        )
        .unwrap();
        let text = fleet_summary(&doc);
        assert!(text.starts_with("study abc123 — running"), "{text}");
        assert!(text.contains("crc32"), "{text}");
        assert!(text.contains("105"), "{text}");
        assert!(text.contains("margin 0.4100"), "{text}");
        assert!(text.contains("l1d"), "{text}");
        assert!(text.contains("fleet rate 12.5 runs/s, eta 11s"), "{text}");
        assert!(text.contains("alive"), "{text}");
        assert!(text.contains("dead"), "{text}");
        // The worker table renders each shard's observed execution tier;
        // a worker without the field (older daemon) shows detailed-only.
        assert!(text.contains("warp"), "{text}");
        assert!(text.contains("detailed"), "{text}");
    }

    #[test]
    fn degrades_gracefully_on_a_minimal_doc() {
        let doc = json::parse(r#"{"id":"x","state":"queued","active":null}"#).unwrap();
        let text = fleet_summary(&doc);
        assert_eq!(text, "study x — queued\n");
    }

    #[test]
    fn marks_margin_stopped_studies() {
        let doc = json::parse(
            r#"{"id":"y","state":"running",
                "active":{"workload":"crc32","total":240,"done":100,
                          "outstanding":0,"margin_adjusted":0.05,
                          "margin_stopped":true}}"#,
        )
        .unwrap();
        let text = fleet_summary(&doc);
        assert!(text.contains("margin-stopped"), "{text}");
    }
}

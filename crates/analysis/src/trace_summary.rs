//! `trace summary` — post-hoc aggregation of a JSON-Lines trace.
//!
//! Parses the stream written by `--trace-out` (hand-rolled parser from
//! `sea-trace`, no serde) and renders the observability views the paper's
//! §V discussion needs: per-component **activation rates** (how often the
//! flipped cell was ever read) and **propagation-latency histograms**
//! (cycles from flip to first corrupt read, and flip to terminal class).

use crate::report::bar;
use sea_trace::json::{self, Json};
use sea_trace::HistSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregates over the `injection.provenance` records of one component.
#[derive(Clone, Debug)]
pub struct ComponentStats {
    /// Probed injections into this component.
    pub injections: u64,
    /// Runs whose corrupted cell was read before the run terminated.
    pub activated: u64,
    /// Runs where the corruption was first touched in kernel (SVC) mode.
    pub kernel_touches: u64,
    /// Flip → first corrupt read, in cycles (activated runs only).
    pub activation_latency: HistSnapshot,
    /// Flip → terminal classification, in cycles (activated runs only).
    pub failure_latency: HistSnapshot,
    /// Terminal class counts (masked / sdc / app-crash / sys-crash).
    pub classes: BTreeMap<String, u64>,
}

impl ComponentStats {
    fn new(component: &str) -> ComponentStats {
        ComponentStats {
            injections: 0,
            activated: 0,
            kernel_touches: 0,
            activation_latency: HistSnapshot::empty(format!("{component} flip→read cycles")),
            failure_latency: HistSnapshot::empty(format!("{component} flip→terminal cycles")),
            classes: BTreeMap::new(),
        }
    }

    /// Fraction of injections whose corrupted cell was read at all.
    pub fn activation_rate(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.activated as f64 / self.injections as f64
        }
    }
}

/// Execution-tier residency, folded from `injection.tier` campaign-end
/// events: which tier each campaign ran on and how much work the warp
/// cursor and µop fast path absorbed.
#[derive(Clone, Debug, Default)]
pub struct TierStats {
    /// Campaigns that ran with the warp cursor armed.
    pub warp_campaigns: u64,
    /// Campaigns that ran detailed-only.
    pub detailed_campaigns: u64,
    /// Machines handed off from a warp cursor clone.
    pub warp_handoffs: u64,
    /// Cursors discarded (key change or target behind the cursor).
    pub warp_cursor_resets: u64,
    /// Detailed prefix cycles the cursor amortized away.
    pub warp_prefix_cycles_saved: u64,
    /// Detailed cycles cursors actually executed.
    pub warp_advance_cycles: u64,
    /// Decoded-µop fast-path hits across all runs.
    pub fastpath_uop_hits: u64,
    /// Decoded-µop fast-path misses across all runs.
    pub fastpath_uop_misses: u64,
}

/// A parsed trace, aggregated for rendering.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total parseable events seen.
    pub events: u64,
    /// Lines that failed JSON parsing (should be zero).
    pub malformed: u64,
    /// Total milliseconds spent in supervisor respawn backoff (summed from
    /// `supervisor.respawn_backoff` events' `ms` fields).
    pub respawn_backoff_ms: u64,
    /// Execution-tier residency from `injection.tier` events.
    pub tier: TierStats,
    /// Event counts per event name.
    pub by_name: BTreeMap<String, u64>,
    /// Span durations (µs) per event name, for every event carrying a
    /// `dur_us` field (i.e. every closed `sea_trace::span`).
    pub spans: BTreeMap<String, HistSnapshot>,
    /// Provenance aggregates keyed by component short name.
    pub components: BTreeMap<String, ComponentStats>,
}

impl TraceSummary {
    /// Aggregate every line of a JSON-Lines trace.
    pub fn from_jsonl(text: &str) -> TraceSummary {
        let mut s = TraceSummary::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match json::parse(line) {
                Ok(ev) => s.record(&ev),
                Err(_) => s.malformed += 1,
            }
        }
        s
    }

    /// Supervisor-health counters derived from event counts: the trace's
    /// view of the series `/metrics` serves live (worker deaths, run
    /// panics, watchdog kills, journal resumes, early stops).
    pub fn health(&self) -> Vec<(&'static str, u64)> {
        let n = |name: &str| self.by_name.get(name).copied().unwrap_or(0);
        vec![
            ("worker deaths", n("supervisor.worker_died")),
            ("run panics", n("supervisor.panic")),
            ("watchdog kills", n("platform.wall_timeout")),
            ("journal resumes", n("supervisor.resume")),
            (
                "early stops",
                n("injection.early_stop") + n("beam.early_stop"),
            ),
            ("respawn backoff ms", self.respawn_backoff_ms),
        ]
    }

    /// Fold one parsed event into the aggregates.
    pub fn record(&mut self, ev: &Json) {
        self.events += 1;
        let name = ev
            .get("ev")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        *self.by_name.entry(name.clone()).or_insert(0) += 1;
        if name == "supervisor.respawn_backoff" {
            self.respawn_backoff_ms += ev.get("ms").and_then(Json::as_u64).unwrap_or(0);
        }
        if name == "injection.tier" {
            let n = |key: &str| ev.get(key).and_then(Json::as_u64).unwrap_or(0);
            let t = &mut self.tier;
            match ev.get("tier").and_then(Json::as_str) {
                Some("warp") => t.warp_campaigns += 1,
                _ => t.detailed_campaigns += 1,
            }
            t.warp_handoffs += n("warp_handoffs");
            t.warp_cursor_resets += n("warp_cursor_resets");
            t.warp_prefix_cycles_saved += n("warp_prefix_cycles_saved");
            t.warp_advance_cycles += n("warp_advance_cycles");
            t.fastpath_uop_hits += n("fastpath_uop_hits");
            t.fastpath_uop_misses += n("fastpath_uop_misses");
        }
        if let Some(dur) = ev.get("dur_us").and_then(Json::as_u64) {
            self.spans
                .entry(name.clone())
                .or_insert_with(|| HistSnapshot::empty(format!("{name} µs")))
                .record(dur);
        }
        if name != "injection.provenance" {
            return;
        }
        let component = ev
            .get("component")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let c = self
            .components
            .entry(component.clone())
            .or_insert_with(|| ComponentStats::new(&component));
        c.injections += 1;
        let activated = ev.get("activated").and_then(Json::as_bool).unwrap_or(false);
        if activated {
            c.activated += 1;
            if let Some(lat) = ev.get("act_cycles").and_then(Json::as_u64) {
                c.activation_latency.record(lat);
            }
            if let Some(total) = ev.get("total_cycles").and_then(Json::as_u64) {
                c.failure_latency.record(total);
            }
        }
        if ev
            .get("kernel_touch")
            .and_then(Json::as_bool)
            .unwrap_or(false)
        {
            c.kernel_touches += 1;
        }
        if let Some(class) = ev.get("class").and_then(Json::as_str) {
            *c.classes.entry(class.to_string()).or_insert(0) += 1;
        }
    }

    /// Render the full summary: event counts, a per-component
    /// activation-rate chart, and the two latency histograms per component.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace summary — {} events, {} malformed line(s)\n\n",
            self.events, self.malformed
        );
        out.push_str("event counts\n");
        let name_w = self.by_name.keys().map(String::len).max().unwrap_or(5);
        for (name, n) in &self.by_name {
            let _ = writeln!(out, "  {name:<name_w$}  {n:>10}");
        }
        if self.by_name.is_empty() {
            out.push_str("  (none)\n");
        }
        let health = self.health();
        if health.iter().any(|&(_, n)| n > 0) {
            out.push_str("\nsupervisor health\n");
            let label_w = health.iter().map(|(l, _)| l.len()).max().unwrap_or(5);
            for (label, n) in &health {
                let _ = writeln!(out, "  {label:<label_w$}  {n:>10}");
            }
        }
        let t = &self.tier;
        if t.warp_campaigns + t.detailed_campaigns > 0 {
            out.push_str("\nexecution tiers\n");
            let rows: [(&str, u64); 8] = [
                ("warp campaigns", t.warp_campaigns),
                ("detailed campaigns", t.detailed_campaigns),
                ("warp handoffs", t.warp_handoffs),
                ("warp cursor resets", t.warp_cursor_resets),
                ("prefix cycles saved", t.warp_prefix_cycles_saved),
                ("cursor cycles run", t.warp_advance_cycles),
                ("fastpath µop hits", t.fastpath_uop_hits),
                ("fastpath µop misses", t.fastpath_uop_misses),
            ];
            let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(5);
            for (label, n) in rows {
                let _ = writeln!(out, "  {label:<label_w$}  {n:>10}");
            }
        }
        if !self.spans.is_empty() {
            out.push_str("\nspan durations (µs, log2-bucket approximations)\n");
            let span_w = self.spans.keys().map(String::len).max().unwrap_or(5);
            let _ = writeln!(
                out,
                "  {:<span_w$}  {:>8} {:>10} {:>10} {:>10}",
                "span", "count", "p50", "p95", "max"
            );
            for (name, h) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<span_w$}  {:>8} {:>10} {:>10} {:>10}",
                    h.count,
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.max,
                );
            }
        }
        if self.components.is_empty() {
            out.push_str("\nno injection.provenance records in trace\n");
            return out;
        }
        out.push_str("\nactivation rate per component (corrupted cell ever read)\n");
        let comp_w = self.components.keys().map(String::len).max().unwrap_or(4);
        for (comp, c) in &self.components {
            let rate = c.activation_rate();
            let _ = writeln!(
                out,
                "  {comp:<comp_w$} |{:<30}| {:5.1}%  ({}/{} runs, {} kernel-first)",
                bar(rate, 1.0, 30),
                100.0 * rate,
                c.activated,
                c.injections,
                c.kernel_touches,
            );
        }
        out.push_str("\npropagation latency (log2 buckets)\n");
        for c in self.components.values() {
            out.push_str(&indent(&c.activation_latency.render(30)));
            out.push_str(&indent(&c.failure_latency.render(30)));
        }
        out
    }
}

fn indent(block: &str) -> String {
    let mut out = String::with_capacity(block.len() + 16);
    for line in block.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(component: &str, activated: bool, act: u64, total: u64, class: &str) -> String {
        format!(
            "{{\"ev\":\"injection.provenance\",\"sub\":\"injection\",\"level\":\"info\",\
             \"cycle\":10,\"component\":\"{component}\",\"bit\":3,\"activated\":{activated},\
             \"act_cycles\":{act},\"kernel_touch\":false,\"class\":\"{class}\",\
             \"total_cycles\":{total}}}"
        )
    }

    #[test]
    fn aggregates_provenance_records_per_component() {
        let text = [
            record("L1D$", true, 40, 900, "sdc"),
            record("L1D$", false, 0, 100, "masked"),
            record("RF", true, 2, 30, "app-crash"),
            "{\"ev\":\"beam.strike\",\"sub\":\"beam\",\"level\":\"info\"}".to_string(),
        ]
        .join("\n");
        let s = TraceSummary::from_jsonl(&text);
        assert_eq!(s.events, 4);
        assert_eq!(s.malformed, 0);
        assert_eq!(s.by_name["injection.provenance"], 3);
        let l1d = &s.components["L1D$"];
        assert_eq!(l1d.injections, 2);
        assert_eq!(l1d.activated, 1);
        assert!((l1d.activation_rate() - 0.5).abs() < 1e-12);
        assert_eq!(l1d.activation_latency.count, 1);
        assert_eq!(l1d.failure_latency.max, 900);
        assert_eq!(l1d.classes["sdc"], 1);
        assert_eq!(s.components["RF"].activated, 1);
    }

    #[test]
    fn render_shows_rates_and_latency_histograms() {
        let text = [
            record("L2$", true, 128, 4096, "sys-crash"),
            record("L2$", false, 0, 50, "masked"),
        ]
        .join("\n");
        let out = TraceSummary::from_jsonl(&text).render();
        assert!(out.contains("activation rate per component"), "{out}");
        assert!(out.contains("50.0%"), "{out}");
        assert!(out.contains("L2$ flip→read cycles"), "{out}");
        assert!(out.contains("L2$ flip→terminal cycles"), "{out}");
        assert!(out.contains('#'), "{out}");
    }

    #[test]
    fn span_durations_aggregate_per_name_with_percentiles() {
        let mut lines: Vec<String> = (1..=100u64)
            .map(|d| {
                format!(
                    "{{\"ev\":\"injection.worker\",\"sub\":\"injection\",\
                     \"level\":\"info\",\"dur_us\":{d}}}"
                )
            })
            .collect();
        // An event without dur_us contributes to counts but not to spans.
        lines.push("{\"ev\":\"beam.strike\",\"sub\":\"beam\",\"level\":\"info\"}".to_string());
        let s = TraceSummary::from_jsonl(&lines.join("\n"));
        let h = &s.spans["injection.worker"];
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 100);
        assert!(h.percentile(95.0) >= 95);
        assert!(!s.spans.contains_key("beam.strike"));
        let out = s.render();
        assert!(out.contains("span durations"), "{out}");
        assert!(out.contains("p95"), "{out}");
    }

    #[test]
    fn health_section_appears_only_when_supervision_fired() {
        let quiet = TraceSummary::from_jsonl(
            "{\"ev\":\"beam.strike\",\"sub\":\"beam\",\"level\":\"info\"}\n",
        );
        assert!(!quiet.render().contains("supervisor health"));
        let text = [
            "{\"ev\":\"supervisor.worker_died\",\"sub\":\"injection\",\"level\":\"warn\"}",
            "{\"ev\":\"platform.wall_timeout\",\"sub\":\"platform\",\"level\":\"warn\"}",
            "{\"ev\":\"platform.wall_timeout\",\"sub\":\"platform\",\"level\":\"warn\"}",
            "{\"ev\":\"injection.early_stop\",\"sub\":\"injection\",\"level\":\"info\"}",
            "{\"ev\":\"supervisor.respawn_backoff\",\"sub\":\"injection\",\"level\":\"warn\",\"ms\":12}",
            "{\"ev\":\"supervisor.respawn_backoff\",\"sub\":\"injection\",\"level\":\"warn\",\"ms\":25}",
        ]
        .join("\n");
        let s = TraceSummary::from_jsonl(&text);
        let health = s.health();
        assert_eq!(health[0], ("worker deaths", 1));
        assert_eq!(health[2], ("watchdog kills", 2));
        assert_eq!(health[4], ("early stops", 1));
        assert_eq!(health[5], ("respawn backoff ms", 37));
        let out = s.render();
        assert!(out.contains("supervisor health"), "{out}");
        assert!(out.contains("watchdog kills"), "{out}");
        assert!(out.contains("respawn backoff ms"), "{out}");
    }

    #[test]
    fn tier_events_aggregate_warp_residency() {
        let quiet = TraceSummary::from_jsonl(
            "{\"ev\":\"beam.strike\",\"sub\":\"beam\",\"level\":\"info\"}\n",
        );
        assert!(!quiet.render().contains("execution tiers"));
        let text = [
            "{\"ev\":\"injection.tier\",\"sub\":\"injection\",\"level\":\"info\",\
             \"workload\":\"crc32\",\"tier\":\"warp\",\"warp_handoffs\":40,\
             \"warp_cursor_resets\":2,\"warp_prefix_cycles_saved\":90000,\
             \"warp_advance_cycles\":4500,\"fastpath_uop_hits\":800,\
             \"fastpath_uop_misses\":20}",
            "{\"ev\":\"injection.tier\",\"sub\":\"injection\",\"level\":\"info\",\
             \"workload\":\"matmul\",\"tier\":\"detailed\",\"warp_handoffs\":0,\
             \"warp_cursor_resets\":0,\"warp_prefix_cycles_saved\":0,\
             \"warp_advance_cycles\":0,\"fastpath_uop_hits\":0,\
             \"fastpath_uop_misses\":0}",
        ]
        .join("\n");
        let s = TraceSummary::from_jsonl(&text);
        assert_eq!(s.tier.warp_campaigns, 1);
        assert_eq!(s.tier.detailed_campaigns, 1);
        assert_eq!(s.tier.warp_handoffs, 40);
        assert_eq!(s.tier.warp_prefix_cycles_saved, 90000);
        assert_eq!(s.tier.fastpath_uop_hits, 800);
        let out = s.render();
        assert!(out.contains("execution tiers"), "{out}");
        assert!(out.contains("warp handoffs"), "{out}");
        assert!(out.contains("prefix cycles saved"), "{out}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let s = TraceSummary::from_jsonl(
            "{\"ev\":\"x\",\"sub\":\"harness\",\"level\":\"info\"}\nnot json\n",
        );
        assert_eq!(s.events, 1);
        assert_eq!(s.malformed, 1);
    }
}

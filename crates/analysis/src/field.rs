//! Field-test planning (paper §II-B).
//!
//! The paper notes that exposing a fleet of devices to natural radiation
//! could be more accurate than beam or injection, "however, a huge amount
//! of devices and long time of exposure is required to gather a
//! statistically significant amount of data, making field tests mostly
//! unpractical". These helpers quantify exactly that trade-off, closing
//! the loop on the three methodologies of Fig 1.

/// A planned field test: `devices` units observed for `years`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FieldTest {
    /// Number of devices in the fleet.
    pub devices: f64,
    /// Observation period in years.
    pub years: f64,
}

impl FieldTest {
    /// Total device-hours of exposure.
    pub fn device_hours(&self) -> f64 {
        self.devices * self.years * 24.0 * 365.25
    }

    /// Expected number of failures for a device with the given FIT rate.
    pub fn expected_failures(&self, fit: f64) -> f64 {
        fit * self.device_hours() / 1e9
    }

    /// Relative half-width of the failure-rate estimate at `z` confidence,
    /// from Poisson counting statistics (`z / sqrt(n)`), or `None` if the
    /// plan expects less than one event.
    pub fn relative_error(&self, fit: f64, z: f64) -> Option<f64> {
        let n = self.expected_failures(fit);
        if n < 1.0 {
            return None;
        }
        Some(z / n.sqrt())
    }
}

/// Devices needed to observe `target_events` failures in `years` for a
/// device with rate `fit`.
pub fn devices_needed(fit: f64, target_events: f64, years: f64) -> f64 {
    let hours = years * 24.0 * 365.25;
    target_events * 1e9 / (fit * hours)
}

/// Years needed for a fixed fleet to observe `target_events` failures.
pub fn years_needed(fit: f64, target_events: f64, devices: f64) -> f64 {
    target_events * 1e9 / (fit * devices * 24.0 * 365.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosetta_scale_numbers() {
        // A 100-FIT device: one failure per ~1,141 device-years. A
        // thousand-device fleet needs about a decade for ~9 events — the
        // paper's "mostly unpractical".
        let plan = FieldTest {
            devices: 1000.0,
            years: 10.0,
        };
        let events = plan.expected_failures(100.0);
        assert!((8.0..10.0).contains(&events), "events {events}");
        let rel = plan.relative_error(100.0, 1.96).unwrap();
        assert!(rel > 0.6, "even then the estimate is ±{:.0}%", rel * 100.0);
    }

    #[test]
    fn inversions_are_consistent() {
        let fit = 33.0;
        let devices = devices_needed(fit, 100.0, 2.0);
        let plan = FieldTest {
            devices,
            years: 2.0,
        };
        assert!((plan.expected_failures(fit) - 100.0).abs() < 1e-6);
        let years = years_needed(fit, 100.0, devices);
        assert!((years - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sub_one_event_plans_report_no_error_bound() {
        let plan = FieldTest {
            devices: 1.0,
            years: 1.0,
        };
        assert_eq!(plan.relative_error(10.0, 1.96), None);
    }
}

//! # sea-analysis — AVF→FIT conversion and beam-vs-injection comparison
//!
//! The quantitative core of the paper's Section VI:
//!
//! * [`fi_fit`] — `FIT = FIT_raw × bits × AVF`, summed over components,
//!   turning a fault-injection campaign into a FIT prediction;
//! * [`beam_fit`] — FIT from beam counts and fluence;
//! * [`fit_ratio`] / [`Comparison`] — the signed larger-over-smaller ratio
//!   of Figs 6–9;
//! * [`Overview`] — the Fig 10 across-benchmark aggregate;
//! * [`report`] — ASCII table/figure rendering for the regeneration
//!   binaries;
//! * [`convergence`] — post-hoc error-margin-vs-sample-count curves for a
//!   finished campaign (the offline view of `--stop-at-margin`);
//! * [`trace_summary`] — activation-rate, propagation-latency,
//!   span-duration and supervisor-health views over a `sea-trace`
//!   JSON-Lines capture;
//! * [`fleet_summary`] — one-screen ASCII rendering of a fleet daemon's
//!   study status document (suite progress, live margins, worker table);
//! * [`profile`] — cycle-hotspot and predicted-vs-measured-AVF rendering
//!   for `sea-profile` attribution data;
//! * [`poisson_ci`] — confidence intervals on beam event counts;
//! * [`field`] — field-test planning (the third methodology of Fig 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
pub mod convergence;
pub mod field;
mod fit;
mod fleet_summary;
pub mod profile;
pub mod report;
pub mod trace_summary;

pub use compare::{fit_ratio, poisson_ci, Comparison, Overview};
pub use convergence::{convergence_curve, render_convergence, ConvergencePoint};
pub use fit::{beam_fit, fi_fit, FitRates};
pub use fleet_summary::fleet_summary;
pub use trace_summary::TraceSummary;

//! ASCII rendering of tables and figures.
//!
//! The regeneration binaries in `sea-bench` print the paper's tables and
//! figures through these helpers: aligned tables for Tables I–IV and
//! labeled horizontal bar charts for the figures.

use std::fmt::Write as _;

/// Renders an aligned table: a header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &width {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    out.push('|');
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, " {:<w$} |", h, w = width[i]);
    }
    out.push('\n');
    line(&mut out);
    for row in rows {
        out.push('|');
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(out, " {:<w$} |", cell, w = width[i]);
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

/// A single horizontal bar scaled to `max` over `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(if value > 0.0 { 1 } else { 0 }, width))
}

/// A log-scale bar for ratio plots (the paper's Figs 6–8 use log axes):
/// the bar length is proportional to `log10(|value|)`, and the sign is
/// rendered by direction markers.
pub fn log_bar(value: f64, max_abs: f64, width: usize) -> String {
    if !value.is_finite() {
        return (if value > 0.0 {
            ">".repeat(width)
        } else {
            "<".repeat(width)
        })
        .to_string();
    }
    let mag = value.abs().max(1.0);
    let max_mag = max_abs.abs().max(10.0);
    let n = ((mag.log10() / max_mag.log10()) * width as f64).round() as usize;
    let n = n.clamp(if mag > 1.0 { 1 } else { 0 }, width);
    if value >= 0.0 {
        "#".repeat(n)
    } else {
        "-".repeat(n)
    }
}

/// Renders a grouped bar chart: one row per item, one bar per series.
pub fn grouped_bars(
    title: &str,
    items: &[(String, Vec<f64>)],
    series: &[&str],
    width: usize,
) -> String {
    let max = items
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let name_w = items.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
    let series_w = series.iter().map(|s| s.len()).max().unwrap_or(4);
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "(bar scale: {max:.3} FIT full width)");
    for (name, vs) in items {
        for (si, v) in vs.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<name_w$} {:<series_w$} |{:<width$}| {:>10.3}",
                if si == 0 { name.as_str() } else { "" },
                series[si],
                bar(*v, max, width),
                v,
            );
        }
    }
    out
}

/// Renders the campaign-supervision summary: one row per workload with
/// the injection-campaign and beam-session supervision counters merged,
/// including the anomaly rate (quarantined panics per completed run).
/// Rows where nothing noteworthy happened still render, so the table
/// doubles as a "the harness saw N runs" audit.
pub fn supervision_table(
    rows: &[(
        String,
        sea_injection::SupervisionStats,
        sea_injection::SupervisionStats,
    )],
) -> String {
    let mut body: Vec<Vec<String>> = Vec::new();
    let mut total = sea_injection::SupervisionStats::default();
    for (name, inj, beam) in rows {
        let merged = sea_injection::SupervisionStats {
            completed: inj.completed + beam.completed,
            resumed: inj.resumed + beam.resumed,
            quarantined: inj.quarantined + beam.quarantined,
            flaky_recovered: inj.flaky_recovered + beam.flaky_recovered,
            worker_respawns: inj.worker_respawns + beam.worker_respawns,
            lost: inj.lost + beam.lost,
        };
        body.push(supervision_row(name, &merged));
        total.completed += merged.completed;
        total.resumed += merged.resumed;
        total.quarantined += merged.quarantined;
        total.flaky_recovered += merged.flaky_recovered;
        total.worker_respawns += merged.worker_respawns;
        total.lost += merged.lost;
    }
    body.push(supervision_row("TOTAL", &total));
    table(
        &[
            "workload",
            "runs",
            "resumed",
            "anomalies",
            "anomaly rate",
            "flaky",
            "respawns",
            "lost",
        ],
        &body,
    )
}

/// Renders the checkpoint-usage summary: one row per workload with the
/// injection-campaign and beam-session [`CheckpointStats`] merged. The
/// "prefix saved" column is the share of simulated work the restores
/// skipped, measured against the cycles every run would have spent
/// re-executing the fault-free prefix from reset
/// (`restores × golden_cycles / 2` on average for uniform injection
/// cycles, so the column regularly approaches 100%).
///
/// [`CheckpointStats`]: sea_platform::CheckpointStats
pub fn checkpoint_table(
    rows: &[(
        String,
        u64,
        Option<sea_platform::CheckpointStats>,
        Option<sea_platform::CheckpointStats>,
    )],
) -> String {
    use sea_platform::CheckpointStats;
    let mut body: Vec<Vec<String>> = Vec::new();
    let mut total = CheckpointStats::default();
    let mut total_golden_weighted = 0u128;
    for (name, golden_cycles, inj, beam) in rows {
        let inj = inj.unwrap_or_default();
        let beam = beam.unwrap_or_default();
        let merged = CheckpointStats {
            epochs: inj.epochs + beam.epochs,
            restores: inj.restores + beam.restores,
            prefix_cycles_saved: inj.prefix_cycles_saved + beam.prefix_cycles_saved,
        };
        body.push(checkpoint_row(name, *golden_cycles, &merged));
        total.epochs += merged.epochs;
        total.restores += merged.restores;
        total.prefix_cycles_saved += merged.prefix_cycles_saved;
        total_golden_weighted += merged.restores as u128 * *golden_cycles as u128;
    }
    let total_golden = if total.restores == 0 {
        0
    } else {
        (total_golden_weighted / total.restores as u128) as u64
    };
    body.push(checkpoint_row("TOTAL", total_golden, &total));
    table(
        &[
            "workload",
            "epochs",
            "restores",
            "cycles saved",
            "prefix saved",
        ],
        &body,
    )
}

/// Renders the journal-durability summary: one row per workload with
/// the injection-campaign and beam-session [`JournalAudit`] counters
/// merged. Non-zero `torn bytes` means a crashed predecessor left a
/// partial record that resume truncated; `poisoned` means a write fault
/// exhausted its retries and the run drained early on a valid prefix.
///
/// [`JournalAudit`]: sea_injection::JournalAudit
pub fn journal_table(
    rows: &[(
        String,
        Option<sea_injection::JournalAudit>,
        Option<sea_injection::JournalAudit>,
    )],
) -> String {
    use sea_injection::JournalAudit;
    let mut body: Vec<Vec<String>> = Vec::new();
    let mut total = JournalAudit::default();
    for (name, inj, beam) in rows {
        let inj = inj.unwrap_or_default();
        let beam = beam.unwrap_or_default();
        let merged = JournalAudit {
            format: inj.format,
            appended: inj.appended + beam.appended,
            resumed: inj.resumed + beam.resumed,
            torn_bytes: inj.torn_bytes + beam.torn_bytes,
            fsyncs: inj.fsyncs + beam.fsyncs,
            retries: inj.retries + beam.retries,
            poisoned: inj.poisoned || beam.poisoned,
        };
        body.push(journal_row(name, &merged));
        total.format = merged.format;
        total.appended += merged.appended;
        total.resumed += merged.resumed;
        total.torn_bytes += merged.torn_bytes;
        total.fsyncs += merged.fsyncs;
        total.retries += merged.retries;
        total.poisoned |= merged.poisoned;
    }
    body.push(journal_row("TOTAL", &total));
    table(
        &[
            "workload",
            "format",
            "appended",
            "resumed",
            "torn bytes",
            "fsyncs",
            "retries",
            "state",
        ],
        &body,
    )
}

fn journal_row(name: &str, a: &sea_injection::JournalAudit) -> Vec<String> {
    vec![
        name.to_string(),
        a.format.to_string(),
        a.appended.to_string(),
        a.resumed.to_string(),
        a.torn_bytes.to_string(),
        a.fsyncs.to_string(),
        a.retries.to_string(),
        if a.poisoned { "POISONED" } else { "ok" }.to_string(),
    ]
}

fn checkpoint_row(
    name: &str,
    golden_cycles: u64,
    s: &sea_platform::CheckpointStats,
) -> Vec<String> {
    // Expected fault-free prefix without checkpoints: injection cycles are
    // uniform over the golden run, so on average half of it per restore.
    let expected = s.restores as f64 * golden_cycles as f64 / 2.0;
    let frac = if expected <= 0.0 {
        0.0
    } else {
        (s.prefix_cycles_saved as f64 / expected).min(1.0)
    };
    vec![
        name.to_string(),
        s.epochs.to_string(),
        s.restores.to_string(),
        s.prefix_cycles_saved.to_string(),
        format!("{:.1}%", 100.0 * frac),
    ]
}

fn supervision_row(name: &str, s: &sea_injection::SupervisionStats) -> Vec<String> {
    let denominator = s.completed + s.quarantined.saturating_sub(s.flaky_recovered);
    let rate = if denominator == 0 {
        0.0
    } else {
        s.quarantined as f64 / denominator as f64
    };
    vec![
        name.to_string(),
        s.completed.to_string(),
        s.resumed.to_string(),
        s.quarantined.to_string(),
        format!("{:.3}%", 100.0 * rate),
        s.flaky_recovered.to_string(),
        s.worker_respawns.to_string(),
        s.lost.to_string(),
    ]
}

/// Formats a signed ratio the way the paper's Fig 6–9 axes read:
/// `12.3x` (beam higher) or `-4.5x` (injection higher), `inf` for
/// one-sided zeros.
pub fn ratio_label(r: f64) -> String {
    if !r.is_finite() {
        if r > 0.0 {
            "+inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{r:+.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| name   | value |"));
        assert!(t.contains("| longer | 22    |"));
        // Every line has equal length.
        let lens: std::collections::BTreeSet<_> = t.lines().map(str::len).collect();
        assert_eq!(lens.len(), 1);
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(5.0, 10.0, 10).len(), 5);
        assert_eq!(bar(100.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10).len(), 0);
        assert!(
            !bar(0.001, 10.0, 10).is_empty(),
            "nonzero values stay visible"
        );
    }

    #[test]
    fn log_bar_direction() {
        assert!(log_bar(100.0, 100.0, 20).starts_with('#'));
        assert!(log_bar(-100.0, 100.0, 20).starts_with('-'));
        assert_eq!(log_bar(f64::INFINITY, 100.0, 5), ">>>>>");
    }

    #[test]
    fn supervision_table_rates_and_totals() {
        use sea_injection::SupervisionStats;
        let rows = vec![
            (
                "CRC32".to_string(),
                SupervisionStats {
                    completed: 99,
                    quarantined: 1,
                    ..SupervisionStats::default()
                },
                SupervisionStats {
                    completed: 100,
                    ..SupervisionStats::default()
                },
            ),
            (
                "Qsort".to_string(),
                SupervisionStats::default(),
                SupervisionStats::default(),
            ),
        ];
        let t = supervision_table(&rows);
        assert!(t.contains("anomaly rate"));
        assert!(t.contains("CRC32"));
        assert!(t.contains("TOTAL"));
        // 1 anomaly over (199 completed + 1 deterministic) = 0.5%.
        assert!(t.contains("0.500%"), "{t}");
    }

    #[test]
    fn checkpoint_table_fractions_and_totals() {
        use sea_platform::CheckpointStats;
        let rows = vec![
            (
                "CRC32".to_string(),
                1000u64,
                Some(CheckpointStats {
                    epochs: 8,
                    restores: 10,
                    prefix_cycles_saved: 4000,
                }),
                None,
            ),
            ("Qsort".to_string(), 1000u64, None, None),
        ];
        let t = checkpoint_table(&rows);
        assert!(t.contains("prefix saved"));
        // 4000 cycles saved of an expected 10 × 1000 / 2 = 5000.
        assert!(t.contains("80.0%"), "{t}");
        assert!(t.contains("TOTAL"));
    }

    #[test]
    fn journal_table_merges_and_flags_poison() {
        use sea_injection::JournalAudit;
        let rows = vec![
            (
                "CRC32".to_string(),
                Some(JournalAudit {
                    appended: 100,
                    resumed: 40,
                    torn_bytes: 17,
                    fsyncs: 3,
                    ..JournalAudit::default()
                }),
                Some(JournalAudit {
                    appended: 50,
                    poisoned: true,
                    ..JournalAudit::default()
                }),
            ),
            ("Qsort".to_string(), None, None),
        ];
        let t = journal_table(&rows);
        assert!(t.contains("torn bytes"));
        assert!(t.contains("150"), "{t}"); // merged appends
        assert!(t.contains("POISONED"), "{t}");
        assert!(t.contains("TOTAL"));
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(ratio_label(2.0), "+2.00x");
        assert_eq!(ratio_label(-3.5), "-3.50x");
        assert_eq!(ratio_label(f64::INFINITY), "+inf");
    }
}

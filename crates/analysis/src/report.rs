//! ASCII rendering of tables and figures.
//!
//! The regeneration binaries in `sea-bench` print the paper's tables and
//! figures through these helpers: aligned tables for Tables I–IV and
//! labeled horizontal bar charts for the figures.

use std::fmt::Write as _;

/// Renders an aligned table: a header row plus data rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &width {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    out.push('|');
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, " {:<w$} |", h, w = width[i]);
    }
    out.push('\n');
    line(&mut out);
    for row in rows {
        out.push('|');
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(out, " {:<w$} |", cell, w = width[i]);
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

/// A single horizontal bar scaled to `max` over `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(if value > 0.0 { 1 } else { 0 }, width))
}

/// A log-scale bar for ratio plots (the paper's Figs 6–8 use log axes):
/// the bar length is proportional to `log10(|value|)`, and the sign is
/// rendered by direction markers.
pub fn log_bar(value: f64, max_abs: f64, width: usize) -> String {
    if !value.is_finite() {
        return (if value > 0.0 {
            ">".repeat(width)
        } else {
            "<".repeat(width)
        })
        .to_string();
    }
    let mag = value.abs().max(1.0);
    let max_mag = max_abs.abs().max(10.0);
    let n = ((mag.log10() / max_mag.log10()) * width as f64).round() as usize;
    let n = n.clamp(if mag > 1.0 { 1 } else { 0 }, width);
    if value >= 0.0 {
        "#".repeat(n)
    } else {
        "-".repeat(n)
    }
}

/// Renders a grouped bar chart: one row per item, one bar per series.
pub fn grouped_bars(
    title: &str,
    items: &[(String, Vec<f64>)],
    series: &[&str],
    width: usize,
) -> String {
    let max = items
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let name_w = items.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
    let series_w = series.iter().map(|s| s.len()).max().unwrap_or(4);
    let mut out = format!("{title}\n");
    let _ = writeln!(out, "(bar scale: {max:.3} FIT full width)");
    for (name, vs) in items {
        for (si, v) in vs.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<name_w$} {:<series_w$} |{:<width$}| {:>10.3}",
                if si == 0 { name.as_str() } else { "" },
                series[si],
                bar(*v, max, width),
                v,
            );
        }
    }
    out
}

/// Formats a signed ratio the way the paper's Fig 6–9 axes read:
/// `12.3x` (beam higher) or `-4.5x` (injection higher), `inf` for
/// one-sided zeros.
pub fn ratio_label(r: f64) -> String {
    if !r.is_finite() {
        if r > 0.0 {
            "+inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{r:+.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| name   | value |"));
        assert!(t.contains("| longer | 22    |"));
        // Every line has equal length.
        let lens: std::collections::BTreeSet<_> = t.lines().map(str::len).collect();
        assert_eq!(lens.len(), 1);
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(5.0, 10.0, 10).len(), 5);
        assert_eq!(bar(100.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10).len(), 0);
        assert!(
            !bar(0.001, 10.0, 10).is_empty(),
            "nonzero values stay visible"
        );
    }

    #[test]
    fn log_bar_direction() {
        assert!(log_bar(100.0, 100.0, 20).starts_with('#'));
        assert!(log_bar(-100.0, 100.0, 20).starts_with('-'));
        assert_eq!(log_bar(f64::INFINITY, 100.0, 5), ">>>>>");
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(ratio_label(2.0), "+2.00x");
        assert_eq!(ratio_label(-3.5), "-3.50x");
        assert_eq!(ratio_label(f64::INFINITY), "+inf");
    }
}

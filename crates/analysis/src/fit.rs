//! AVF → FIT conversion (paper §VI).
//!
//! `FIT_component = FIT_raw(bit) × Size(bits) × AVF_component`
//!
//! The application's FIT per effect class is the sum over all components
//! of the per-class AVF weighted by size and the raw per-bit FIT.

use sea_beam::BeamResult;
use sea_injection::CampaignResult;
use sea_platform::FaultClass;

/// FIT rates per effect class.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FitRates {
    /// Silent data corruption FIT.
    pub sdc: f64,
    /// Application-crash FIT.
    pub app_crash: f64,
    /// System-crash FIT.
    pub sys_crash: f64,
}

impl FitRates {
    /// FIT of one class.
    ///
    /// # Panics
    ///
    /// Panics on [`FaultClass::Masked`] (masked faults have no FIT).
    pub fn class(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::Sdc => self.sdc,
            FaultClass::AppCrash => self.app_crash,
            FaultClass::SysCrash => self.sys_crash,
            FaultClass::Masked => panic!("masked faults have no FIT rate"),
        }
    }

    /// SDC + Application-Crash FIT (the paper's Fig 9 quantity).
    pub fn sdc_app(&self) -> f64 {
        self.sdc + self.app_crash
    }

    /// Total FIT (Fig 10's rightmost bars).
    pub fn total(&self) -> f64 {
        self.sdc + self.app_crash + self.sys_crash
    }
}

/// Converts a fault-injection campaign into predicted FIT rates using the
/// per-bit raw FIT (the paper uses its beam-measured 2.76×10⁻⁵).
pub fn fi_fit(campaign: &CampaignResult, fit_raw_per_bit: f64) -> FitRates {
    let mut r = FitRates::default();
    for c in &campaign.per_component {
        let scale = fit_raw_per_bit * c.bits as f64;
        r.sdc += scale * c.counts.rate(FaultClass::Sdc);
        r.app_crash += scale * c.counts.rate(FaultClass::AppCrash);
        r.sys_crash += scale * c.counts.rate(FaultClass::SysCrash);
    }
    r
}

/// Extracts measured FIT rates from a beam session.
pub fn beam_fit(beam: &BeamResult) -> FitRates {
    FitRates {
        sdc: beam.fit(FaultClass::Sdc),
        app_crash: beam.fit(FaultClass::AppCrash),
        sys_crash: beam.fit(FaultClass::SysCrash),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_injection::{ClassCounts, ComponentResult};
    use sea_microarch::Component;

    fn fake_component(
        c: Component,
        bits: u64,
        sdc: u64,
        app: u64,
        sys: u64,
        masked: u64,
    ) -> ComponentResult {
        ComponentResult {
            component: c,
            bits,
            counts: ClassCounts {
                masked,
                sdc,
                app_crash: app,
                sys_crash: sys,
            },
            tag_counts: ClassCounts::default(),
            outcomes: vec![],
        }
    }

    #[test]
    fn fi_fit_matches_hand_computation() {
        let campaign = CampaignResult {
            workload: "x".into(),
            golden_cycles: 1,
            per_component: vec![
                fake_component(Component::L1D, 1000, 10, 5, 5, 80),
                fake_component(Component::L2, 4000, 0, 0, 50, 50),
            ],
            anomalies: vec![],
            supervision: Default::default(),
            checkpoints: None,
            journal: None,
        };
        let raw = 1e-5;
        let r = fi_fit(&campaign, raw);
        // L1D: 1000 bits × 1e-5 × 10% SDC = 1e-3.
        assert!((r.sdc - 1e-3).abs() < 1e-12);
        // SysCrash: 1000×1e-5×5% + 4000×1e-5×50% = 5e-4 + 2e-2.
        assert!((r.sys_crash - (5e-4 + 2e-2)).abs() < 1e-12);
        assert!((r.total() - (r.sdc + r.app_crash + r.sys_crash)).abs() < 1e-15);
    }
}

//! Attribution-profile rendering: cycle hotspots and predicted-vs-measured
//! AVF.
//!
//! Takes the [`ProfileData`] a profiled golden run produces (residency/
//! liveness tracking plus the per-PC cycle sampler) and renders the two
//! views the paper's methodology discussion motivates:
//!
//! * **hot PCs** — where the workload's cycles went, with an indicative
//!   stall attribution per PC (which miss counter advanced most there);
//! * **predicted vs measured AVF** — the ACE-style liveness prediction per
//!   structure next to the injection campaign's measured AVF and its 99%
//!   error margin, quantifying how conservative the lifetime analysis is
//!   (ACE analysis never under-estimates; the interesting number is by
//!   *how much* it over-estimates, per structure).

use crate::report::bar;
use sea_injection::CampaignResult;
use sea_microarch::Component;
use sea_profile::ProfileData;
use std::fmt::Write as _;

/// Render the top-`n` cycle hotspots of a profiled run.
///
/// One row per sampled PC: attributed cycles, share of total, attributed
/// instructions, and the dominant stall bucket.
pub fn render_hotspots(profile: &ProfileData, n: usize) -> String {
    let mut out = String::new();
    let top = profile.pc.top(n);
    let _ = writeln!(
        out,
        "hot PCs (top {} of {} sampled, {} cycles)",
        top.len(),
        profile.pc.entries.len(),
        profile.total_cycles
    );
    if top.is_empty() {
        out.push_str("  (no samples)\n");
        return out;
    }
    let total = profile.total_cycles.max(1) as f64;
    let _ = writeln!(
        out,
        "  {:<10} {:>12} {:>7} {:>12}  {:<6}",
        "pc", "cycles", "share", "instr", "stall"
    );
    for (pc, st) in top {
        let _ = writeln!(
            out,
            "  {:#010x} {:>12} {:>6.1}% {:>12}  {:<6}",
            pc,
            st.counters.cycles,
            100.0 * st.counters.cycles as f64 / total,
            st.counters.instructions,
            st.stall_bucket(),
        );
    }
    out
}

/// Render the predicted-vs-measured AVF table.
///
/// One row per structure in the paper's reporting order: occupancy,
/// ACE-predicted AVF, and — when a campaign result is supplied — the
/// injection-measured AVF with its 99%-confidence margin and the
/// prediction/measurement ratio.
pub fn render_avf_table(profile: &ProfileData, measured: Option<&CampaignResult>) -> String {
    let mut out = String::new();
    out.push_str("predicted vs measured AVF per structure\n");
    let _ = writeln!(
        out,
        "  {:<5} {:<12} {:>9} {:>9} {:>12} {:>9}",
        "", "occupancy", "predicted", "measured", "±99% margin", "pred/meas"
    );
    let mut rows = 0;
    for c in Component::ALL {
        let name = c.short_name();
        let Some(s) = profile.structure(name) else {
            continue;
        };
        rows += 1;
        let pred = s.predicted_avf();
        let meas = measured
            .and_then(|m| m.per_component.iter().find(|r| r.component == c))
            .filter(|r| r.counts.total() > 0);
        let (meas_s, margin_s, ratio_s) = match meas {
            Some(r) => {
                let mv = r.counts.avf();
                let ratio = if mv > 0.0 { pred / mv } else { f64::INFINITY };
                (
                    format!("{:>8.2}%", 100.0 * mv),
                    format!("{:>11.2}%", 100.0 * r.error_margin()),
                    if ratio.is_finite() {
                        format!("{ratio:>8.2}x")
                    } else {
                        format!("{:>9}", "inf")
                    },
                )
            }
            None => (
                format!("{:>9}", "-"),
                format!("{:>12}", "-"),
                format!("{:>9}", "-"),
            ),
        };
        let _ = writeln!(
            out,
            "  {:<5} |{:<10}| {:>8.2}% {meas_s} {margin_s} {ratio_s}",
            name,
            bar(s.occupancy(), 1.0, 10),
            100.0 * pred,
        );
    }
    if rows == 0 {
        out.push_str("  (no structure reports in profile)\n");
    }
    out
}

/// Render the full profiling report for one workload: run header, cycle
/// hotspots, the AVF table, and per-structure traffic counters.
pub fn render_profile(
    workload: &str,
    profile: &ProfileData,
    measured: Option<&CampaignResult>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile — {workload} ({} cycles, {} instructions, IPC {:.3})",
        profile.total_cycles,
        profile.instructions,
        if profile.total_cycles > 0 {
            profile.instructions as f64 / profile.total_cycles as f64
        } else {
            0.0
        }
    );
    out.push('\n');
    out.push_str(&render_hotspots(profile, 10));
    out.push('\n');
    out.push_str(&render_avf_table(profile, measured));
    out.push_str("\nstructure traffic (fills / touches over the golden run)\n");
    for s in &profile.structures {
        let _ = writeln!(
            out,
            "  {:<5} {:>6} slots  {:>10} fills  {:>12} touches",
            s.name, s.slots, s.fills, s.touches
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_profile::{PcProfile, PcStats, SampleCounters, StructureReport};

    fn profile() -> ProfileData {
        let entries = vec![
            (
                0x1_0000,
                PcStats {
                    counters: SampleCounters {
                        cycles: 600,
                        instructions: 100,
                        l2_miss: 5,
                        ..Default::default()
                    },
                    samples: 100,
                },
            ),
            (
                0x1_0004,
                PcStats {
                    counters: SampleCounters {
                        cycles: 400,
                        instructions: 300,
                        ..Default::default()
                    },
                    samples: 300,
                },
            ),
        ];
        let pc = PcProfile {
            entries,
            ..Default::default()
        };
        ProfileData {
            total_cycles: 1000,
            instructions: 400,
            pc,
            structures: vec![StructureReport {
                name: "RF".into(),
                slots: 48,
                bits_ace: 32,
                bits_aux: 0,
                bits_dead: 0,
                ace_cycles: 4800,
                resident_cycles: 9600,
                fills: 7,
                touches: 20,
                total_cycles: 1000,
            }],
        }
    }

    #[test]
    fn hotspots_rank_by_cycles_with_share_and_stall() {
        let out = render_hotspots(&profile(), 10);
        assert!(out.contains("0x00010000"), "{out}");
        assert!(out.contains("60.0%"), "{out}");
        assert!(out.contains("l2"), "{out}");
        let a = out.find("0x00010000").unwrap();
        let b = out.find("0x00010004").unwrap();
        assert!(a < b, "hotter PC must render first:\n{out}");
    }

    #[test]
    fn avf_table_renders_predicted_without_measurement() {
        let out = render_avf_table(&profile(), None);
        assert!(out.contains("RF"), "{out}");
        // ace_cycles 4800 of 48 slots × 32 bits × 1000 cycles, all-ACE bits
        // → 4800/48000 = 10%.
        assert!(out.contains("10.00%"), "{out}");
        assert!(out.contains('-'), "{out}");
    }

    #[test]
    fn full_report_has_all_sections() {
        let out = render_profile("crc32", &profile(), None);
        assert!(out.contains("profile — crc32"), "{out}");
        assert!(out.contains("hot PCs"), "{out}");
        assert!(out.contains("predicted vs measured AVF"), "{out}");
        assert!(out.contains("structure traffic"), "{out}");
    }
}

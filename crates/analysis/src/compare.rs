//! Beam-vs-injection comparison metrics (paper Figs 6–10).

use crate::fit::FitRates;
use sea_platform::FaultClass;

/// The paper's ratio convention (Fig 6): divide the larger FIT by the
/// smaller; the sign is positive when the beam rate is higher, negative
/// when fault injection predicts higher.
///
/// Degenerate cases: both zero → `1.0` (agreement); one zero → ±∞ with
/// the usual sign.
pub fn fit_ratio(beam: f64, fi: f64) -> f64 {
    match (beam == 0.0, fi == 0.0) {
        (true, true) => 1.0,
        (false, true) => f64::INFINITY,
        (true, false) => f64::NEG_INFINITY,
        (false, false) => {
            if beam >= fi {
                beam / fi
            } else {
                -(fi / beam)
            }
        }
    }
}

/// Full comparison for one workload.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Workload display name.
    pub workload: String,
    /// Fault-injection-predicted FIT rates.
    pub fi: FitRates,
    /// Beam-measured FIT rates.
    pub beam: FitRates,
}

impl Comparison {
    /// Signed ratio for one class (Figs 6–8).
    pub fn ratio(&self, class: FaultClass) -> f64 {
        fit_ratio(self.beam.class(class), self.fi.class(class))
    }

    /// Signed ratio of SDC+AppCrash (Fig 9).
    pub fn ratio_sdc_app(&self) -> f64 {
        fit_ratio(self.beam.sdc_app(), self.fi.sdc_app())
    }

    /// Signed ratio of total FIT.
    pub fn ratio_total(&self) -> f64 {
        fit_ratio(self.beam.total(), self.fi.total())
    }
}

/// The Fig 10 aggregate: across-benchmark average FIT at the three
/// accumulation levels, for both methodologies.
#[derive(Clone, Copy, Debug, Default)]
pub struct Overview {
    /// Average beam SDC FIT.
    pub beam_sdc: f64,
    /// Average beam SDC+AppCrash FIT.
    pub beam_sdc_app: f64,
    /// Average beam total FIT.
    pub beam_total: f64,
    /// Average injection SDC FIT.
    pub fi_sdc: f64,
    /// Average injection SDC+AppCrash FIT.
    pub fi_sdc_app: f64,
    /// Average injection total FIT.
    pub fi_total: f64,
}

impl Overview {
    /// Aggregates a set of per-workload comparisons.
    pub fn from_comparisons(cs: &[Comparison]) -> Overview {
        let n = cs.len().max(1) as f64;
        let mut o = Overview::default();
        for c in cs {
            o.beam_sdc += c.beam.sdc / n;
            o.beam_sdc_app += c.beam.sdc_app() / n;
            o.beam_total += c.beam.total() / n;
            o.fi_sdc += c.fi.sdc / n;
            o.fi_sdc_app += c.fi.sdc_app() / n;
            o.fi_total += c.fi.total() / n;
        }
        o
    }

    /// Beam/FI ratio when AppCrashes are added to SDCs (the paper reports
    /// 4.3×).
    pub fn sdc_app_ratio(&self) -> f64 {
        self.beam_sdc_app / self.fi_sdc_app
    }

    /// Beam/FI ratio of total FIT (the paper reports 10.9×).
    pub fn total_ratio(&self) -> f64 {
        self.beam_total / self.fi_total
    }

    /// Beam/FI ratio of SDC FIT alone (paper: very close to 1).
    pub fn sdc_ratio(&self) -> f64 {
        self.beam_sdc / self.fi_sdc
    }
}

/// Poisson confidence interval for an event count, using the normal
/// approximation with continuity (adequate for the counts beam sessions
/// produce): `n + z²/2 ± z·√(n + z²/4)`.
pub fn poisson_ci(count: u64, z: f64) -> (f64, f64) {
    let n = count as f64;
    let center = n + z * z / 2.0;
    let half = z * (n + z * z / 4.0).sqrt();
    ((center - half).max(0.0), center + half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_sign_convention() {
        assert_eq!(fit_ratio(10.0, 5.0), 2.0);
        assert_eq!(fit_ratio(5.0, 10.0), -2.0);
        assert_eq!(fit_ratio(0.0, 0.0), 1.0);
        assert_eq!(fit_ratio(1.0, 0.0), f64::INFINITY);
        assert_eq!(fit_ratio(0.0, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn overview_averages() {
        let cs = vec![
            Comparison {
                workload: "a".into(),
                fi: FitRates {
                    sdc: 1.0,
                    app_crash: 1.0,
                    sys_crash: 1.0,
                },
                beam: FitRates {
                    sdc: 2.0,
                    app_crash: 2.0,
                    sys_crash: 20.0,
                },
            },
            Comparison {
                workload: "b".into(),
                fi: FitRates {
                    sdc: 3.0,
                    app_crash: 1.0,
                    sys_crash: 1.0,
                },
                beam: FitRates {
                    sdc: 2.0,
                    app_crash: 4.0,
                    sys_crash: 40.0,
                },
            },
        ];
        let o = Overview::from_comparisons(&cs);
        assert!((o.fi_sdc - 2.0).abs() < 1e-12);
        assert!((o.beam_total - 35.0).abs() < 1e-12);
        assert!(o.total_ratio() > o.sdc_ratio());
    }

    #[test]
    fn poisson_ci_contains_count_and_tightens() {
        let (lo, hi) = poisson_ci(100, 1.96);
        assert!(lo < 100.0 && hi > 100.0);
        let (lo2, hi2) = poisson_ci(10_000, 1.96);
        assert!((hi2 - lo2) / 10_000.0 < (hi - lo) / 100.0);
        let (lo0, _) = poisson_ci(0, 1.96);
        assert_eq!(lo0, 0.0);
    }
}

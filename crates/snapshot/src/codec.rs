//! The snapshot byte codec: a little-endian, length-checked stream with
//! per-struct boundary tags.
//!
//! The format is deliberately dumb — no schema, no field names — because
//! the machine model's save/load pairs live next to each other in the same
//! crate and are exercised by round-trip property tests. The tags exist to
//! turn "writer and reader disagree about layout" into an immediate
//! [`SnapError::Tag`] instead of a silently corrupt machine.

use crate::SnapError;

/// Serializes machine state into a byte stream.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// A fresh, empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Finish and take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Mark a struct boundary with a four-byte tag (e.g. `*b"CPU "`).
    pub fn tag(&mut self, tag: [u8; 4]) {
        self.buf.extend_from_slice(&tag);
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 by bit pattern (exact round-trip, NaN-safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Write raw bytes with no length prefix (fixed-size fields).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Deserializes machine state from a byte stream produced by [`SnapWriter`].
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole stream has been consumed — loaders should check
    /// this at the end to catch trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume a struct boundary tag, failing on mismatch.
    pub fn tag(&mut self, expected: [u8; 4]) -> Result<(), SnapError> {
        let found: [u8; 4] = self.take(4)?.try_into().unwrap();
        if found != expected {
            return Err(SnapError::Tag { expected, found });
        }
        Ok(())
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte out of range")),
        }
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64 by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read exactly `n` raw bytes (fixed-size fields).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }
}

/// The save/load contract every checkpointable component implements.
///
/// `load` constructs a fresh value rather than patching an existing one:
/// restore must not depend on whatever state the target happened to hold,
/// and a from-scratch constructor makes "forgot to restore a field"
/// impossible by design.
pub trait Snapshot: Sized {
    /// Append this component's complete state to the stream.
    fn save(&self, w: &mut SnapWriter);

    /// Reconstruct the component from the stream.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

impl Snapshot for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snapshot for u32 {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snapshot for u64 {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snapshot for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.len() as u32);
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.u32()? as usize;
        // Guard the pre-allocation: a corrupt length must not OOM before
        // the per-element reads hit `Truncated`.
        let mut v = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            v.push(T::load(r)?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new();
        w.tag(*b"TST ");
        w.u8(0xAB);
        w.bool(true);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.5);
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = SnapReader::new(&buf);
        r.tag(*b"TST ").unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn tag_mismatch_is_loud() {
        let mut w = SnapWriter::new();
        w.tag(*b"AAAA");
        let buf = w.into_bytes();
        let mut r = SnapReader::new(&buf);
        assert_eq!(
            r.tag(*b"BBBB"),
            Err(SnapError::Tag {
                expected: *b"BBBB",
                found: *b"AAAA"
            })
        );
    }

    #[test]
    fn truncation_reports_shortfall() {
        let mut r = SnapReader::new(&[1, 2]);
        assert_eq!(
            r.u32(),
            Err(SnapError::Truncated {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn vec_round_trip_and_bad_bool() {
        let v: Vec<u64> = vec![3, 1, 4, 1, 5];
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let buf = w.into_bytes();
        assert_eq!(Vec::<u64>::load(&mut SnapReader::new(&buf)).unwrap(), v);

        let mut r = SnapReader::new(&[7]);
        assert_eq!(
            r.bool(),
            Err(SnapError::Malformed("bool byte out of range"))
        );
    }

    #[test]
    fn corrupt_vec_length_does_not_overallocate() {
        let mut w = SnapWriter::new();
        w.u32(u32::MAX); // claimed length far beyond the stream
        let buf = w.into_bytes();
        assert!(matches!(
            Vec::<u64>::load(&mut SnapReader::new(&buf)),
            Err(SnapError::Truncated { .. })
        ));
    }
}

//! Physical memory as copy-on-write 4 KiB pages.
//!
//! The simulator's DDR is by far the largest piece of checkpointed state
//! (64 MiB under the default configuration, dwarfing the ~100 KiB of
//! caches/TLBs/registers). Campaigns restore the same golden image
//! thousands of times, so the store keeps each page behind an `Arc`:
//!
//! * **Clone is cheap** — `PageStore::clone` bumps one refcount per page;
//!   no data moves. N restored machines share one copy of the image.
//! * **Writes privatize lazily** — the first write to a shared page clones
//!   that page only (`Arc::make_mut`); untouched pages stay shared for the
//!   run's whole lifetime. Two diverging restored machines can never alias
//!   each other's writes.
//! * **Zero pages are free** — a fresh store points every page at one
//!   shared zero page, so the serialized form stores only pages that ever
//!   held data.

use crate::{SnapError, SnapReader, SnapWriter, Snapshot};
use std::sync::Arc;

/// Copy-on-write granularity, in bytes.
pub const PAGE_BYTES: usize = 4096;

/// One page of physical memory. Kept as a concrete sized type so
/// `Arc::make_mut` can clone it on first write.
#[derive(Clone)]
struct Page([u8; PAGE_BYTES]);

/// A copy-on-write paged byte store with a flat `u32` address space.
///
/// Out-of-range accesses panic, matching the contract of the flat byte
/// array it replaces: physical ranges are validated by the MMU before
/// reaching memory, so an OOB address here is a simulator bug.
#[derive(Clone)]
pub struct PageStore {
    pages: Vec<Arc<Page>>,
    /// The canonical all-zero page; pages still pointing here are omitted
    /// from the serialized form.
    zero: Arc<Page>,
    size: u32,
}

impl PageStore {
    /// Allocates `size` addressable bytes, all zero. Only the shared zero
    /// page is materialized regardless of `size`.
    pub fn new(size: u32) -> PageStore {
        let zero = Arc::new(Page([0; PAGE_BYTES]));
        let n = (size as usize).div_ceil(PAGE_BYTES);
        PageStore {
            pages: vec![Arc::clone(&zero); n],
            zero,
            size,
        }
    }

    /// Addressable bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    #[inline]
    fn check(&self, addr: u32, len: usize) {
        assert!(
            (addr as usize) + len <= self.size as usize,
            "physical access out of range: {addr:#010x}+{len} > {:#010x}",
            self.size
        );
    }

    /// Copy `out.len()` bytes starting at `addr` into `out`.
    #[inline]
    pub fn read_bytes(&self, addr: u32, out: &mut [u8]) {
        self.check(addr, out.len());
        let mut off = addr as usize;
        let mut done = 0;
        while done < out.len() {
            let page = off / PAGE_BYTES;
            let in_page = off % PAGE_BYTES;
            let n = (PAGE_BYTES - in_page).min(out.len() - done);
            out[done..done + n].copy_from_slice(&self.pages[page].0[in_page..in_page + n]);
            off += n;
            done += n;
        }
    }

    /// Copy `data` into the store starting at `addr`, privatizing each
    /// touched page.
    #[inline]
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.check(addr, data.len());
        let mut off = addr as usize;
        let mut done = 0;
        while done < data.len() {
            let page = off / PAGE_BYTES;
            let in_page = off % PAGE_BYTES;
            let n = (PAGE_BYTES - in_page).min(data.len() - done);
            Arc::make_mut(&mut self.pages[page]).0[in_page..in_page + n]
                .copy_from_slice(&data[done..done + n]);
            off += n;
            done += n;
        }
    }

    /// Number of pages physically shared (same allocation) with `other`.
    /// Diagnostic for COW-isolation tests and the checkpoint metrics.
    pub fn shared_pages_with(&self, other: &PageStore) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of pages backed by a private (non-zero-page) allocation —
    /// the store's resident footprint beyond the shared zero page.
    pub fn populated_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| !Arc::ptr_eq(p, &self.zero))
            .count()
    }

    /// Total page slots.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

impl Snapshot for PageStore {
    /// Sparse form: only pages that ever diverged from the zero page are
    /// stored, as `(index, bytes)` pairs in ascending index order.
    fn save(&self, w: &mut SnapWriter) {
        w.tag(*b"PAGE");
        w.u32(self.size);
        let populated: Vec<u32> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| !Arc::ptr_eq(p, &self.zero))
            .map(|(i, _)| i as u32)
            .collect();
        w.u32(populated.len() as u32);
        for i in populated {
            w.u32(i);
            w.raw(&self.pages[i as usize].0);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<PageStore, SnapError> {
        r.tag(*b"PAGE")?;
        let size = r.u32()?;
        let mut store = PageStore::new(size);
        let n = r.u32()?;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let idx = r.u32()?;
            if idx as usize >= store.pages.len() {
                return Err(SnapError::Malformed("page index past store size"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(SnapError::Malformed("page indices not ascending"));
            }
            prev = Some(idx);
            let bytes: [u8; PAGE_BYTES] = r
                .raw(PAGE_BYTES)?
                .try_into()
                .expect("raw() returned the requested length");
            store.pages[idx as usize] = Arc::new(Page(bytes));
        }
        Ok(store)
    }
}

impl PartialEq for PageStore {
    fn eq(&self, other: &PageStore) -> bool {
        if self.size != other.size {
            return false;
        }
        self.pages
            .iter()
            .zip(&other.pages)
            .all(|(a, b)| Arc::ptr_eq(a, b) || a.0 == b.0)
    }
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("size", &self.size)
            .field("pages", &self.pages.len())
            .field("populated", &self.populated_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapReader;

    #[test]
    fn fresh_store_is_zero_and_unmaterialized() {
        let s = PageStore::new(64 * 1024);
        assert_eq!(s.size(), 64 * 1024);
        assert_eq!(s.page_count(), 16);
        assert_eq!(s.populated_pages(), 0);
        let mut buf = [0xFFu8; 8];
        s.read_bytes(60 * 1024, &mut buf);
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    fn rw_across_page_boundary() {
        let mut s = PageStore::new(3 * PAGE_BYTES as u32);
        let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        let addr = PAGE_BYTES as u32 - 100; // straddles pages 0 and 1
        s.write_bytes(addr, &data);
        let mut back = vec![0u8; data.len()];
        s.read_bytes(addr, &mut back);
        assert_eq!(back, data);
        assert_eq!(s.populated_pages(), 2);
    }

    #[test]
    fn clone_shares_until_write() {
        let mut a = PageStore::new(4 * PAGE_BYTES as u32);
        a.write_bytes(0, &[1, 2, 3]);
        let mut b = a.clone();
        assert_eq!(b.shared_pages_with(&a), 4);
        b.write_bytes(0, &[9]);
        // b privatized page 0; a is untouched.
        assert_eq!(b.shared_pages_with(&a), 3);
        let mut av = [0u8; 3];
        let mut bv = [0u8; 3];
        a.read_bytes(0, &mut av);
        b.read_bytes(0, &mut bv);
        assert_eq!(av, [1, 2, 3]);
        assert_eq!(bv, [9, 2, 3]);
    }

    #[test]
    fn divergent_clones_never_alias() {
        let base = PageStore::new(2 * PAGE_BYTES as u32);
        let mut x = base.clone();
        let mut y = base.clone();
        x.write_bytes(100, b"xx");
        y.write_bytes(100, b"yy");
        let mut xv = [0u8; 2];
        let mut yv = [0u8; 2];
        let mut bv = [0u8; 2];
        x.read_bytes(100, &mut xv);
        y.read_bytes(100, &mut yv);
        base.read_bytes(100, &mut bv);
        assert_eq!(&xv, b"xx");
        assert_eq!(&yv, b"yy");
        assert_eq!(bv, [0u8; 2]);
    }

    #[test]
    fn sparse_snapshot_round_trip() {
        let mut s = PageStore::new(8 * PAGE_BYTES as u32);
        s.write_bytes(3 * PAGE_BYTES as u32 + 7, b"deep");
        s.write_bytes(0, b"front");
        let mut w = SnapWriter::new();
        s.save(&mut w);
        let buf = w.into_bytes();
        // Only two pages stored: far less than the full 32 KiB.
        assert!(buf.len() < 3 * PAGE_BYTES);
        let t = PageStore::load(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(t.size(), s.size());
        assert_eq!(t.populated_pages(), 2);
        let mut v = [0u8; 4];
        t.read_bytes(3 * PAGE_BYTES as u32 + 7, &mut v);
        assert_eq!(&v, b"deep");
    }

    #[test]
    fn bad_page_index_rejected() {
        let mut w = SnapWriter::new();
        w.tag(*b"PAGE");
        w.u32(PAGE_BYTES as u32); // one page
        w.u32(1);
        w.u32(5); // index out of range
        w.raw(&[0; PAGE_BYTES]);
        let buf = w.into_bytes();
        assert_eq!(
            PageStore::load(&mut SnapReader::new(&buf)),
            Err(SnapError::Malformed("page index past store size"))
        );
    }

    #[test]
    #[should_panic(expected = "physical access out of range")]
    fn oob_access_panics() {
        let s = PageStore::new(16);
        let mut buf = [0u8; 4];
        s.read_bytes(14, &mut buf);
    }
}

//! # sea-snapshot — deterministic checkpoint/restore for the SEA stack
//!
//! The statistical fault-injection methodology of the paper needs thousands
//! of runs per workload, and every run used to re-execute the fault-free
//! prefix from reset up to the injection cycle. gem5 — the paper's
//! simulation vehicle — amortizes exactly this cost with boot/region
//! checkpoints; this crate is the SEA equivalent: a small, dependency-free
//! foundation the simulator crates build their checkpointing on.
//!
//! Three pieces, deliberately decoupled from the machine model so the
//! format stays stable while the simulator evolves:
//!
//! * **[`Snapshot`]** — the save/load contract. [`SnapWriter`] /
//!   [`SnapReader`] form a byte-exact little-endian codec with per-struct
//!   tags, so a field added to one component fails loudly at the tag
//!   boundary instead of silently misaligning the rest of the stream.
//! * **[`PageStore`]** — physical memory as copy-on-write 4 KiB pages.
//!   Cloning a store is O(pages) reference bumps; N restored machines share
//!   the golden image and pay for a page only when they first write it.
//! * **checkpoint container** — [`encode_checkpoint`] / [`decode_checkpoint`]
//!   wrap a payload in a magic + format-version + provenance header with an
//!   FNV-1a content hash, so a stale or foreign checkpoint file is rejected
//!   before a single byte of machine state is trusted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod container;
mod pages;

pub use codec::{SnapReader, SnapWriter, Snapshot};
pub use container::{
    decode_checkpoint, encode_checkpoint, CheckpointMeta, SNAP_MAGIC, SNAP_VERSION,
};
pub use pages::{PageStore, PAGE_BYTES};

use std::fmt;

/// Why a snapshot stream or checkpoint container was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before the expected data.
    Truncated {
        /// Bytes requested by the reader.
        needed: usize,
        /// Bytes left in the stream.
        remaining: usize,
    },
    /// The container does not start with [`SNAP_MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    Version {
        /// Version found in the container.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The payload hash does not match the header — corruption or a
    /// torn write.
    HashMismatch {
        /// Hash recorded in the header.
        recorded: u64,
        /// Hash of the payload actually present.
        actual: u64,
    },
    /// The metadata section fails its CRC32 — a bit flip in the header
    /// would otherwise decode silently into wrong provenance or cycle.
    MetaCorrupt {
        /// CRC recorded in the container.
        recorded: u32,
        /// CRC of the metadata actually present.
        actual: u32,
    },
    /// A struct boundary tag did not match — layout skew between writer
    /// and reader.
    Tag {
        /// Tag the reader expected.
        expected: [u8; 4],
        /// Tag found in the stream.
        found: [u8; 4],
    },
    /// A decoded value is structurally impossible (e.g. a page index past
    /// the store size).
    Malformed(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {remaining} left"
                )
            }
            SnapError::BadMagic => write!(f, "not a sea-snapshot container (bad magic)"),
            SnapError::Version { found, expected } => {
                write!(
                    f,
                    "checkpoint format v{found}, this build reads v{expected}"
                )
            }
            SnapError::HashMismatch { recorded, actual } => write!(
                f,
                "payload hash mismatch: header {recorded:#018x}, content {actual:#018x}"
            ),
            SnapError::MetaCorrupt { recorded, actual } => write!(
                f,
                "metadata section CRC mismatch: header {recorded:#010x}, content {actual:#010x}"
            ),
            SnapError::Tag { expected, found } => write!(
                f,
                "section tag mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            SnapError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit over a byte slice — the stack's standard content hash
/// (the campaign journal uses the same function for config/golden hashes).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

//! The on-disk checkpoint container: magic, format version, provenance,
//! and a content hash around an opaque machine-state payload.
//!
//! Restoring foreign state into a campaign is the one way checkpointing
//! can silently invalidate results, so the container front-loads every
//! rejection: wrong file type ([`SnapError::BadMagic`]), wrong format
//! generation ([`SnapError::Version`]), a bit flip in the metadata section
//! ([`SnapError::MetaCorrupt`] — v2 adds a CRC32 over cycle/provenance so
//! a flipped header byte can no longer decode silently into wrong
//! metadata), bit rot or a torn write in the payload
//! ([`SnapError::HashMismatch`]) — all before the payload is parsed. The
//! *semantic* check (does this checkpoint belong to this campaign?) is the
//! caller's, via the [`CheckpointMeta`] provenance fields.

use crate::{fnv1a, SnapError, SnapReader, SnapWriter};
use sea_durable::crc32;

/// Container magic: "SEACKPT" plus a format-generation byte.
pub const SNAP_MAGIC: [u8; 8] = *b"SEACKPT\x01";

/// Current container format version. Bump on any layout change to the
/// machine-state payload; old files are then rejected, never reinterpreted.
/// v2: the metadata section (cycle, hashes) is covered by its own CRC32.
pub const SNAP_VERSION: u32 = 2;

/// Identifying metadata carried in a checkpoint container header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Simulated cycle at which the machine state was captured.
    pub cycle: u64,
    /// Campaign configuration hash (physics-shaping knobs only), as
    /// computed by the injection supervisor.
    pub config_hash: u64,
    /// Golden-run hash binding the checkpoint to one workload image.
    pub golden_hash: u64,
}

impl CheckpointMeta {
    /// The provenance hash recorded in campaign journal headers: a single
    /// value derived from everything that must match for a checkpoint to
    /// be usable. Deliberately independent of whether checkpointing is
    /// enabled or how often epochs are taken, so a checkpointed and a
    /// from-reset campaign write byte-identical journals.
    pub fn provenance(config_hash: u64, golden_hash: u64) -> u64 {
        let mut bytes = Vec::with_capacity(20);
        bytes.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        bytes.extend_from_slice(&config_hash.to_le_bytes());
        bytes.extend_from_slice(&golden_hash.to_le_bytes());
        fnv1a(&bytes)
    }
}

/// The metadata section bytes the v2 CRC covers: cycle, provenance
/// hashes, and the payload hash — everything decode trusts before the
/// payload's own FNV check runs.
fn meta_section(meta: CheckpointMeta, payload_hash: u64) -> [u8; 32] {
    let mut bytes = [0u8; 32];
    bytes[0..8].copy_from_slice(&meta.cycle.to_le_bytes());
    bytes[8..16].copy_from_slice(&meta.config_hash.to_le_bytes());
    bytes[16..24].copy_from_slice(&meta.golden_hash.to_le_bytes());
    bytes[24..32].copy_from_slice(&payload_hash.to_le_bytes());
    bytes
}

/// Wrap `payload` in a validated container.
pub fn encode_checkpoint(meta: CheckpointMeta, payload: &[u8]) -> Vec<u8> {
    let payload_hash = fnv1a(payload);
    let mut w = SnapWriter::new();
    w.raw(&SNAP_MAGIC);
    w.u32(SNAP_VERSION);
    w.u64(meta.cycle);
    w.u64(meta.config_hash);
    w.u64(meta.golden_hash);
    w.u64(payload_hash);
    w.u32(crc32(&meta_section(meta, payload_hash)));
    w.bytes(payload);
    w.into_bytes()
}

/// Unwrap and validate a container, returning its metadata and payload.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(CheckpointMeta, &[u8]), SnapError> {
    let mut r = SnapReader::new(bytes);
    if r.raw(8)? != SNAP_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != SNAP_VERSION {
        return Err(SnapError::Version {
            found: version,
            expected: SNAP_VERSION,
        });
    }
    let meta = CheckpointMeta {
        cycle: r.u64()?,
        config_hash: r.u64()?,
        golden_hash: r.u64()?,
    };
    let recorded = r.u64()?;
    let meta_crc = r.u32()?;
    let actual_crc = crc32(&meta_section(meta, recorded));
    if actual_crc != meta_crc {
        return Err(SnapError::MetaCorrupt {
            recorded: meta_crc,
            actual: actual_crc,
        });
    }
    let payload = r.bytes()?;
    if !r.is_exhausted() {
        return Err(SnapError::Malformed("trailing bytes after payload"));
    }
    let actual = fnv1a(payload);
    if actual != recorded {
        return Err(SnapError::HashMismatch { recorded, actual });
    }
    Ok((meta, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: CheckpointMeta = CheckpointMeta {
        cycle: 123_456,
        config_hash: 0xAAAA,
        golden_hash: 0xBBBB,
    };

    #[test]
    fn container_round_trip() {
        let enc = encode_checkpoint(META, b"machine state");
        let (meta, payload) = decode_checkpoint(&enc).unwrap();
        assert_eq!(meta, META);
        assert_eq!(payload, b"machine state");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut enc = encode_checkpoint(META, b"x");
        enc[0] ^= 0xFF;
        assert_eq!(decode_checkpoint(&enc), Err(SnapError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut enc = encode_checkpoint(META, b"x");
        enc[8] = 0xFE; // little-endian low byte of the version field
        assert_eq!(
            decode_checkpoint(&enc),
            Err(SnapError::Version {
                found: 0xFE,
                expected: SNAP_VERSION
            })
        );
    }

    #[test]
    fn meta_corruption_rejected_not_misread() {
        // A flipped byte anywhere in the 32-byte metadata section (bytes
        // 12..44: cycle, config_hash, golden_hash, payload hash) must be
        // caught by the section CRC, never decoded into wrong metadata.
        for at in 12..44 {
            let mut enc = encode_checkpoint(META, b"machine state");
            enc[at] ^= 0x10;
            assert!(
                matches!(decode_checkpoint(&enc), Err(SnapError::MetaCorrupt { .. })),
                "flip at byte {at} slipped past the meta CRC"
            );
        }
    }

    #[test]
    fn payload_corruption_rejected() {
        let mut enc = encode_checkpoint(META, b"golden image");
        let n = enc.len();
        enc[n - 3] ^= 0x01; // flip one payload bit
        assert!(matches!(
            decode_checkpoint(&enc),
            Err(SnapError::HashMismatch { .. })
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let enc = encode_checkpoint(META, b"golden image");
        assert!(matches!(
            decode_checkpoint(&enc[..enc.len() - 4]),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn provenance_depends_on_both_hashes() {
        let p = CheckpointMeta::provenance(1, 2);
        assert_ne!(p, CheckpointMeta::provenance(2, 1));
        assert_ne!(p, CheckpointMeta::provenance(1, 3));
        assert_eq!(p, CheckpointMeta::provenance(1, 2));
    }
}
